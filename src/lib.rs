//! Umbrella crate for the SINR node-coloring reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests (in
//! `tests/`) and the runnable examples (in `examples/`). The actual library
//! code lives in the member crates:
//!
//! * [`sinr_geometry`] — points, spatial grid, placements, unit-disk graphs.
//! * [`sinr_model`] — the SINR physical model and baseline interference models.
//! * [`sinr_radiosim`] — the slot-synchronous radio network simulator.
//! * [`sinr_coloring`] — the MW coloring algorithm tuned for SINR (the paper's
//!   main contribution).
//! * [`sinr_mac`] — TDMA MAC scheduling and single-round simulation built on
//!   top of a coloring.

pub use sinr_coloring as coloring;
pub use sinr_geometry as geometry;
pub use sinr_mac as mac;
pub use sinr_model as model;
pub use sinr_radiosim as radiosim;
