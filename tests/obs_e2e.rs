//! End-to-end observability: recorded MW runs satisfy the paper's
//! invariants (probes quiet), produce schema-valid artifacts, and — the
//! load-bearing property — recording does not perturb the run.

use sinr_coloring::mw::{run_mw, run_mw_recorded, MwConfig, MwOutcome, MwProbeConfig};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, GraphModel, InterferenceModel, SinrConfig, SinrModel};
use sinr_obs::json::{parse_flat_object, parse_value};
use sinr_obs::{
    diff_documents, keys, DiffPolicy, FullRecorder, NoopRecorder, Recorder, SeriesConfig,
};
use sinr_radiosim::WakeupSchedule;

fn small_graph(n: usize, side: f64, seed: u64) -> (SinrConfig, UnitDiskGraph) {
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(placement::uniform(n, side, side, seed), cfg.r_t());
    (cfg, graph)
}

fn recorded_run<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    params: MwParams,
    seed: u64,
    schedule: WakeupSchedule,
    rec: &mut dyn Recorder,
) -> MwOutcome {
    run_mw_recorded(
        graph,
        model,
        &MwConfig::new(params).with_seed(seed),
        schedule,
        MwProbeConfig::default(), // thm1 stride 1: check independence every slot
        rec,
    )
}

#[test]
fn small_run_with_stride_one_probes_is_violation_free() {
    let (cfg, graph) = small_graph(30, 3.0, 7);
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mut rec = FullRecorder::new();
    let out = recorded_run(
        &graph,
        FastSinrModel::new(cfg),
        params,
        3,
        WakeupSchedule::Synchronous,
        &mut rec,
    );
    assert!(out.all_done, "run finished within the cap");

    let reg = rec.registry();
    for key in [
        keys::PROBE_THM1_VIOLATIONS,
        keys::PROBE_LEMMA4_VIOLATIONS,
        keys::PROBE_LEMMA6_VIOLATIONS,
        keys::PROBE_LEMMA7_VIOLATIONS,
    ] {
        assert_eq!(reg.counter(key).unwrap_or(0), 0, "probe {key} is quiet");
    }
    assert!(
        reg.counter(keys::PROBE_THM1_CHECKS).unwrap_or(0) > 0,
        "the theorem-1 sweep actually ran"
    );

    // Aggregate metrics agree with the outcome the driver reports.
    assert_eq!(reg.counter(keys::SIM_SLOTS), Some(out.slots));
    assert_eq!(
        reg.counter(keys::SIM_TRANSMISSIONS),
        Some(out.transmissions)
    );
    assert_eq!(reg.counter(keys::SIM_RECEPTIONS), Some(out.receptions));
    assert_eq!(reg.counter(keys::SIM_DONE_NODES), Some(graph.len() as u64));
    let load = reg.histogram(keys::SIM_CHANNEL_LOAD).expect("channel load");
    assert_eq!(load.count(), out.slots, "one channel-load sample per slot");
    assert_eq!(load.sum(), out.transmissions);
    // The fast model exports its resolver counters too.
    assert!(reg.counter(keys::RESOLVER_FAST_PATH_HITS).is_some());

    // Phase transitions were observed and nodes accumulated colored time.
    assert!(reg.counter(keys::MW_PHASE_TRANSITIONS).unwrap_or(0) > 0);
    assert!(
        reg.counter(keys::MW_RESIDENCY_COLORED).unwrap_or(0) > 0,
        "slots were spent in colored states"
    );

    // The event stream is non-trivial and every JSONL line parses.
    assert!(rec.events_recorded() > 0);
    let jsonl = rec.jsonl_string();
    assert_eq!(jsonl.lines().count(), rec.events_len());
    for line in jsonl.lines() {
        let fields =
            parse_flat_object(line).unwrap_or_else(|| panic!("JSONL line must parse: {line}"));
        assert_eq!(fields[0].0, "slot", "slot leads every event line");
        assert_eq!(fields[1].0, "type");
    }
}

#[test]
fn thm1_probe_is_quiet_across_models_seeds_and_schedules() {
    let (cfg, graph) = small_graph(24, 2.5, 11);
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let schedules = [
        WakeupSchedule::Synchronous,
        WakeupSchedule::UniformRandom { window: 100 },
    ];
    for schedule in schedules {
        for seed in [0u64, 5] {
            let mut runs: Vec<(&str, MwOutcome, FullRecorder)> = Vec::new();
            let mut rec = FullRecorder::new();
            let out = recorded_run(
                &graph,
                SinrModel::new(cfg),
                params,
                seed,
                schedule,
                &mut rec,
            );
            runs.push(("sinr", out, rec));
            let mut rec = FullRecorder::new();
            let out = recorded_run(&graph, GraphModel::new(), params, seed, schedule, &mut rec);
            runs.push(("graph", out, rec));

            for (model, out, rec) in &runs {
                assert!(out.all_done, "{model} seed {seed}");
                assert_eq!(
                    rec.registry().counter(keys::PROBE_THM1_VIOLATIONS),
                    None,
                    "{model} seed {seed}: no color-class dependence ever recorded"
                );
                assert_eq!(
                    rec.registry().counter(keys::PROBE_LEMMA4_VIOLATIONS),
                    None,
                    "{model} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn recording_does_not_perturb_the_run() {
    let (cfg, graph) = small_graph(25, 3.0, 3);
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let config = MwConfig::new(params).with_seed(9);

    let plain = run_mw(
        &graph,
        FastSinrModel::new(cfg),
        &config,
        WakeupSchedule::Synchronous,
    );
    let mut noop = NoopRecorder;
    let with_noop = recorded_run(
        &graph,
        FastSinrModel::new(cfg),
        params,
        9,
        WakeupSchedule::Synchronous,
        &mut noop,
    );
    let mut full = FullRecorder::new();
    let with_full = recorded_run(
        &graph,
        FastSinrModel::new(cfg),
        params,
        9,
        WakeupSchedule::Synchronous,
        &mut full,
    );

    assert_eq!(plain, with_noop, "disabled recorder changes nothing");
    assert_eq!(plain, with_full, "full recording changes nothing");
}

#[test]
fn identical_seeds_produce_identical_dumps_and_different_seeds_differ() {
    let (cfg, graph) = small_graph(20, 2.5, 13);
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let dump = |seed: u64| {
        let mut rec = FullRecorder::new();
        rec.enable_series(SeriesConfig::new(1));
        let out = recorded_run(
            &graph,
            SinrModel::new(cfg),
            params,
            seed,
            WakeupSchedule::Synchronous,
            &mut rec,
        );
        assert!(out.all_done);
        (
            rec.metrics_json(),
            rec.jsonl_string(),
            rec.trace_json(),
            rec.timeseries_json().expect("series was enabled"),
        )
    };

    let (metrics_a, jsonl_a, trace_a, series_a) = dump(4);
    let (metrics_b, jsonl_b, trace_b, series_b) = dump(4);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics dump is a function of the seed"
    );
    assert_eq!(jsonl_a, jsonl_b, "event stream is a function of the seed");
    assert_eq!(trace_a, trace_b, "span trace is a function of the seed");
    assert_eq!(series_a, series_b, "time series is a function of the seed");

    let (metrics_c, _, trace_c, _) = dump(5);
    assert_ne!(
        metrics_a, metrics_c,
        "different seeds leave different traces"
    );
    assert_ne!(trace_a, trace_c, "span timelines differ across seeds");
}

#[test]
fn diffing_a_run_against_itself_finds_nothing() {
    let (cfg, graph) = small_graph(25, 3.0, 17);
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mut rec = FullRecorder::new();
    let out = recorded_run(
        &graph,
        FastSinrModel::new(cfg),
        params,
        2,
        WakeupSchedule::Synchronous,
        &mut rec,
    );
    assert!(out.all_done);

    let doc = parse_value(&rec.metrics_json()).expect("metrics dump parses");
    let findings = diff_documents(&doc, &doc, &DiffPolicy::empty());
    assert!(
        findings.is_empty(),
        "self-diff must be clean, got {findings:?}"
    );
}
