//! Differential churn tests for the incremental resolver.
//!
//! `FastSinrModel` keeps a persistent transmitter index across slots and
//! updates it from [`TxDelta`]s (or by internal diffing when driven
//! through plain `resolve`). These tests hammer that statefulness with
//! random start/stop churn — including adversarially *wrong* deltas and
//! forced epoch rebuilds every couple of slots — and require every
//! reception table to stay bit-identical to the stateless naive
//! resolver, at thread counts 1, 2, and 4.

use proptest::prelude::*;
use sinr_geometry::{NodeId, Point, UnitDiskGraph};
use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig, SinrModel, TxDelta};
use sinr_pool::Pool;

/// A placement plus a sequence of per-slot transmitter sets. Consecutive
/// sets are drawn independently, so the churn between them is maximal —
/// far harsher than the engine's real slot-to-slot evolution.
fn arb_churn_sequence(
    max_n: usize,
    max_slots: usize,
) -> impl Strategy<Value = (Vec<Point>, Vec<Vec<NodeId>>)> {
    (2.0..7.0f64)
        .prop_flat_map(move |extent| {
            prop::collection::vec(
                (0.0..extent, 0.0..extent).prop_map(|(x, y)| Point::new(x, y)),
                1..max_n,
            )
        })
        .prop_flat_map(move |pts| {
            let n = pts.len();
            let sets = prop::collection::vec(
                prop::collection::btree_set(0..n, 0..=n).prop_map(|s| s.into_iter().collect()),
                1..max_slots,
            );
            (Just(pts), sets)
        })
}

/// The true start/stop delta between consecutive transmitter sets (both
/// sorted ascending, as the engine produces them).
fn true_delta(prev: &[NodeId], cur: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    let started = cur.iter().copied().filter(|t| !prev.contains(t)).collect();
    let stopped = prev.iter().copied().filter(|t| !cur.contains(t)).collect();
    (started, stopped)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Delta-driven and plain-resolve-driven stateful resolution both
    /// match the naive resolver on every slot of a high-churn sequence,
    /// with epoch rebuilds forced every other slot so sequences cross
    /// rebuild boundaries mid-run.
    #[test]
    fn churned_sequences_match_naive_bit_for_bit(
        (pts, sets) in arb_churn_sequence(60, 12),
    ) {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let naive = SinrModel::new(cfg);
        let mut by_delta = FastSinrModel::new(cfg);
        by_delta.set_epoch_interval(2);
        let by_resolve = FastSinrModel::new(cfg);

        let mut prev: Vec<NodeId> = Vec::new();
        for (slot, tx) in sets.iter().enumerate() {
            let expect = naive.resolve(&g, tx);
            let (started, stopped) = true_delta(&prev, tx);
            let got = by_delta.resolve_delta(
                &g,
                tx,
                TxDelta { started: &started, stopped: &stopped },
            );
            prop_assert_eq!(&got, &expect, "delta-driven diverges at slot {}", slot);
            // The internal-diff path (no delta supplied) must agree too.
            let got = by_resolve.resolve(&g, tx);
            prop_assert_eq!(&got, &expect, "resolve-driven diverges at slot {}", slot);
            prev = tx.clone();
        }
    }

    /// A wrong delta may cost the resolver a rebuild, never correctness:
    /// feeding arbitrary garbage start/stop lists still yields tables
    /// bit-identical to the naive resolver.
    #[test]
    fn wrong_deltas_never_change_tables(
        (pts, sets) in arb_churn_sequence(40, 10),
        noise in prop::collection::vec((0usize..40, 0usize..40), 0..10),
    ) {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let naive = SinrModel::new(cfg);
        let mut fast = FastSinrModel::new(cfg);
        fast.set_epoch_interval(3);

        for (slot, tx) in sets.iter().enumerate() {
            let (started, stopped): (Vec<NodeId>, Vec<NodeId>) = noise
                .iter()
                .map(|&(a, b)| (a % g.len(), b % g.len()))
                .unzip();
            let got = fast.resolve_delta(
                &g,
                tx,
                TxDelta { started: &started, stopped: &stopped },
            );
            prop_assert_eq!(&got, &naive.resolve(&g, tx), "slot {}", slot);
        }
    }

    /// The same churned sequence resolved by pools of 1, 2, and 4 threads
    /// produces identical tables slot for slot. Dense placements push
    /// candidate counts past the parallel cutoff, so the threaded merge
    /// path is genuinely exercised, not just the sequential fallback.
    #[test]
    fn churned_sequences_bit_identical_across_thread_counts(
        (pts, sets) in arb_churn_sequence(90, 8),
    ) {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let mut models: Vec<FastSinrModel> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                let mut m = FastSinrModel::with_pool(cfg, Pool::new(t));
                m.set_epoch_interval(2);
                m
            })
            .collect();

        let mut prev: Vec<NodeId> = Vec::new();
        for (slot, tx) in sets.iter().enumerate() {
            let (started, stopped) = true_delta(&prev, tx);
            let delta = TxDelta { started: &started, stopped: &stopped };
            let baseline = models[0].resolve_delta(&g, tx, delta);
            for (i, m) in models.iter_mut().enumerate().skip(1) {
                let got = m.resolve_delta(&g, tx, delta);
                prop_assert_eq!(
                    &got,
                    &baseline,
                    "threads={} diverges at slot {}",
                    [1, 2, 4][i],
                    slot
                );
            }
            prev = tx.clone();
        }
    }
}
