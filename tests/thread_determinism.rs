//! Differential tests for the parallel slot engine: every artifact a run
//! can produce — the outcome struct, the metrics dump, the event stream,
//! the span trace, the time series — is byte-identical whether it was
//! computed on 1, 2, or 4 worker threads, for both the naive and the
//! grid-tiled resolver.
//!
//! This is the contract `sinr_pool` exists to uphold (static
//! partitioning, thread-ordered merges, per-node RNG streams; see
//! docs/PERFORMANCE.md). The instance sizes straddle the parallel
//! cutoffs on purpose: n = 300 exceeds both `PAR_NODE_CUTOFF` (engine
//! node phases go parallel) and, on busy slots, `PAR_CANDIDATE_CUTOFF`
//! (resolver goes parallel), while n = 40 stays on the sequential paths
//! so the gating itself is exercised too.

use sinr_coloring::mw::{
    run_mw, run_mw_profiled, run_mw_recorded, MwConfig, MwOutcome, MwProbeConfig,
};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig, SinrModel};
use sinr_obs::alloc::{self, CountingAlloc};
use sinr_obs::{FullRecorder, SeriesConfig};
use sinr_radiosim::WakeupSchedule;

// Counting is active for this whole test binary, so the profiling case
// below exercises the real configuration: live allocator hooks while
// the determinism contracts are being asserted.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const THREADS: [usize; 3] = [1, 2, 4];

fn instance(n: usize, side: f64, seed: u64) -> (SinrConfig, UnitDiskGraph, MwParams) {
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(placement::uniform(n, side, side, seed), cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    (cfg, graph, params)
}

/// Runs every model under `threads` workers and returns the outcomes in
/// a fixed (model, outcome) order.
fn outcomes(
    graph: &UnitDiskGraph,
    cfg: SinrConfig,
    params: MwParams,
    seed: u64,
    schedule: WakeupSchedule,
    threads: usize,
) -> Vec<(&'static str, MwOutcome)> {
    // A few hundred slots exercise every parallel path (the caps are per
    // slot, not per run); running colorings to completion here would only
    // repeat the same code paths for minutes.
    let mw = MwConfig::new(params)
        .with_seed(seed)
        .with_threads(threads)
        .with_max_slots(250);
    vec![
        ("sinr", run_mw(graph, SinrModel::new(cfg), &mw, schedule)),
        (
            "sinr-fast",
            run_mw(graph, FastSinrModel::new(cfg), &mw, schedule),
        ),
        (
            "sinr-auto",
            run_mw(graph, FastSinrModel::auto(cfg, graph), &mw, schedule),
        ),
    ]
}

#[test]
fn outcomes_are_identical_across_thread_counts() {
    for (n, side) in [(40usize, 3.5), (300, 8.0)] {
        let (cfg, graph, params) = instance(n, side, 77);
        let base = outcomes(&graph, cfg, params, 5, WakeupSchedule::Synchronous, 1);
        for threads in [2usize, 4] {
            let run = outcomes(&graph, cfg, params, 5, WakeupSchedule::Synchronous, threads);
            for ((model, a), (_, b)) in base.iter().zip(&run) {
                assert_eq!(a, b, "n={n} model={model} threads={threads}");
            }
        }
    }
}

#[test]
fn async_wakeup_is_identical_across_thread_counts() {
    let (cfg, graph, params) = instance(300, 8.0, 19);
    let schedule = WakeupSchedule::UniformRandom { window: 200 };
    let base = outcomes(&graph, cfg, params, 11, schedule, 1);
    for threads in [2usize, 4] {
        let run = outcomes(&graph, cfg, params, 11, schedule, threads);
        for ((model, a), (_, b)) in base.iter().zip(&run) {
            assert_eq!(a, b, "model={model} threads={threads}");
        }
    }
}

/// Runs a fully observed coloring and returns every serialized artifact:
/// the outcome, the metrics-registry dump, the JSONL event stream, the
/// Chrome trace-event timeline, and the per-slot time series.
fn observed_dump<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    params: MwParams,
    seed: u64,
    threads: usize,
) -> (MwOutcome, String, String, String, String) {
    let mw = MwConfig::new(params)
        .with_seed(seed)
        .with_threads(threads)
        .with_max_slots(250);
    let mut rec = FullRecorder::with_ring_capacity(1 << 18);
    rec.enable_series(SeriesConfig::new(1));
    let out = run_mw_recorded(
        graph,
        model,
        &mw,
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        &mut rec,
    );
    let series = rec.timeseries_json().expect("series was enabled");
    (
        out,
        rec.metrics_json(),
        rec.jsonl_string(),
        rec.trace_json(),
        series,
    )
}

#[test]
fn observed_artifacts_are_byte_identical_across_thread_counts() {
    let (cfg, graph, params) = instance(300, 8.0, 23);

    let naive = |t: usize| observed_dump(&graph, SinrModel::new(cfg), params, 7, t);
    let fast = |t: usize| observed_dump(&graph, FastSinrModel::new(cfg), params, 7, t);

    let base_n = naive(1);
    let base_f = fast(1);
    assert!(base_n.0.slots > 0 && base_f.0.slots > 0);
    assert!(
        base_n.3.contains("\"traceEvents\":["),
        "trace is non-trivial"
    );
    assert!(base_f.4.contains("\"kind\":\"timeseries\""));

    for threads in THREADS {
        for (label, base, run) in [
            ("naive", &base_n, naive(threads)),
            ("fast", &base_f, fast(threads)),
        ] {
            assert_eq!(run.0, base.0, "{label} outcome, threads={threads}");
            assert_eq!(run.1, base.1, "{label} metrics dump, threads={threads}");
            assert_eq!(run.2, base.2, "{label} event stream, threads={threads}");
            assert_eq!(run.3, base.3, "{label} trace, threads={threads}");
            assert_eq!(run.4, base.4, "{label} time series, threads={threads}");
        }
    }
}

/// Allocation profiling must be a pure observer: `run_mw_profiled`
/// returns the byte-for-byte same outcome as `run_mw` at every thread
/// count, with the counting allocator live. The profile itself is a
/// build property, not a seed property — it rides *next to* the outcome
/// precisely so this equality can hold.
#[test]
fn profiling_does_not_perturb_outcomes_at_any_thread_count() {
    assert!(alloc::is_counting(), "counting allocator is installed");
    let (cfg, graph, params) = instance(300, 8.0, 23);
    for threads in THREADS {
        let mw = MwConfig::new(params)
            .with_seed(7)
            .with_threads(threads)
            .with_max_slots(250);
        let plain = run_mw(
            &graph,
            FastSinrModel::new(cfg),
            &mw,
            WakeupSchedule::Synchronous,
        );
        let (profiled, prof) = run_mw_profiled(
            &graph,
            FastSinrModel::new(cfg),
            &mw,
            WakeupSchedule::Synchronous,
        );
        assert_eq!(
            plain, profiled,
            "profiling changed the run, threads={threads}"
        );
        assert!(
            prof.setup.allocs > 0,
            "profile saw the setup traffic, threads={threads}"
        );
    }
}

/// Batched seed fan-out: `Pool::par_seeds` must return, at every thread
/// count, exactly what a sequential `for seed in range` loop produces —
/// same outcomes, same order. This is the contract the bench harness and
/// `sinrcolor color --seeds A..B` both lean on to amortize instance
/// setup while keeping outputs byte-identical.
#[test]
fn batched_seed_fanout_matches_sequential_loop() {
    let (cfg, graph, params) = instance(120, 5.0, 41);
    let run_one = |seed: u64| {
        let mw = MwConfig::new(params).with_seed(seed).with_max_slots(250);
        run_mw(
            &graph,
            FastSinrModel::auto(cfg, &graph),
            &mw,
            WakeupSchedule::Synchronous,
        )
    };
    let sequential: Vec<MwOutcome> = (3..9u64).map(run_one).collect();
    for threads in THREADS {
        let pool = sinr_pool::Pool::new(threads);
        let batched = pool.par_seeds(3..9, run_one);
        assert_eq!(batched.len(), sequential.len());
        for (i, (a, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(a, b, "seed {} differs at threads={threads}", 3 + i as u64);
        }
    }
}

#[test]
fn auto_model_matches_naive_on_both_sides_of_the_grid_threshold() {
    // n = 40 disables the grid, n = 300 still disables it (< 512), so
    // force the always-grid model in as the third column to pin all
    // three resolvers to one coloring at a size where grids disagree
    // about being worthwhile but must not disagree about tables.
    for (n, side, seed) in [(40usize, 3.5, 3u64), (300, 8.0, 9)] {
        let (cfg, graph, params) = instance(n, side, seed);
        let mw = MwConfig::new(params)
            .with_seed(1)
            .with_threads(2)
            .with_max_slots(250);
        let naive = run_mw(
            &graph,
            SinrModel::new(cfg),
            &mw,
            WakeupSchedule::Synchronous,
        );
        let auto = run_mw(
            &graph,
            FastSinrModel::auto(cfg, &graph),
            &mw,
            WakeupSchedule::Synchronous,
        );
        assert_eq!(naive.coloring, auto.coloring, "n={n}");
        assert_eq!(naive.slots, auto.slots, "n={n}");
        assert_eq!(naive.transmissions, auto.transmissions, "n={n}");
    }
}
