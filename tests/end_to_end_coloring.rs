//! End-to-end integration: placements → UDG → MW coloring under three
//! interference models → verification.

use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_coloring::verify::distance_violations;
use sinr_geometry::packing::is_independent;
use sinr_geometry::{placement, Point, UnitDiskGraph};
use sinr_model::{GraphModel, IdealModel, SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn cfg() -> SinrConfig {
    SinrConfig::default_unit()
}

fn run_and_verify(points: Vec<Point>, seed: u64, schedule: WakeupSchedule) {
    let c = cfg();
    let graph = UnitDiskGraph::new(points, c.r_t());
    let params = MwParams::practical(&c, graph.len().max(2), graph.max_degree());
    let out = run_mw(
        &graph,
        SinrModel::new(c),
        &MwConfig::new(params).with_seed(seed),
        schedule,
    );
    assert!(out.all_done, "hit slot cap after {} slots", out.slots);
    let coloring = out.coloring.expect("all nodes decided");
    // (1, V)-coloring: neighbors differ.
    assert!(distance_violations(graph.positions(), coloring.as_slice(), graph.radius()).is_empty());
    // Theorem-2 palette bound.
    assert!(out.palette <= params.palette_bound());
    // Leaders (color 0) form an independent set.
    let leaders: Vec<usize> = (0..graph.len())
        .filter(|&v| coloring.color(v) == 0)
        .collect();
    assert!(is_independent(&graph, &leaders));
    // Every node is a leader or has a leader neighbor (clustering covers).
    for v in 0..graph.len() {
        let covered =
            coloring.color(v) == 0 || graph.neighbors(v).iter().any(|&u| coloring.color(u) == 0);
        assert!(covered, "node {v} has no leader in range");
    }
}

#[test]
fn uniform_placement_sinr() {
    run_and_verify(
        placement::uniform(50, 4.0, 4.0, 21),
        3,
        WakeupSchedule::Synchronous,
    );
}

#[test]
fn clustered_placement_sinr() {
    run_and_verify(
        placement::clustered(5, 8, 6.0, 6.0, 0.6, 8),
        1,
        WakeupSchedule::Synchronous,
    );
}

#[test]
fn line_placement_sinr() {
    run_and_verify(
        placement::line(30, 0.7, 0.1, 4),
        2,
        WakeupSchedule::Synchronous,
    );
}

#[test]
fn grid_placement_sinr() {
    run_and_verify(
        placement::jittered_grid(6, 6, 0.8, 0.1, 5),
        6,
        WakeupSchedule::Synchronous,
    );
}

#[test]
fn async_wakeup_sinr() {
    run_and_verify(
        placement::uniform(40, 3.5, 3.5, 33),
        9,
        WakeupSchedule::UniformRandom { window: 500 },
    );
}

#[test]
fn staggered_wakeup_sinr() {
    run_and_verify(
        placement::uniform(40, 3.5, 3.5, 34),
        11,
        WakeupSchedule::Staggered { step: 13 },
    );
}

#[test]
fn graph_and_ideal_models_also_color_properly() {
    let c = cfg();
    let graph = UnitDiskGraph::new(placement::uniform(45, 4.0, 4.0, 50), c.r_t());
    let params = MwParams::practical(&c, graph.len(), graph.max_degree());
    for (name, out) in [
        (
            "graph",
            run_mw(
                &graph,
                GraphModel::new(),
                &MwConfig::new(params).with_seed(2),
                WakeupSchedule::Synchronous,
            ),
        ),
        (
            "ideal",
            run_mw(
                &graph,
                IdealModel::new(),
                &MwConfig::new(params).with_seed(2),
                WakeupSchedule::Synchronous,
            ),
        ),
    ] {
        assert!(out.all_done, "{name}");
        let coloring = out.coloring.expect("decided");
        assert!(coloring.is_proper(&graph), "{name}");
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    // The sinr-suite umbrella exposes every member crate.
    let _cfg: sinr_suite::model::SinrConfig = sinr_suite::model::SinrConfig::default_unit();
    let pts = sinr_suite::geometry::placement::uniform(10, 2.0, 2.0, 0);
    assert_eq!(pts.len(), 10);
}
