//! Struct-size ratchets for the per-node hot-path types.
//!
//! Memory traffic on the hot path is proportional to the bytes the
//! per-slot loops touch, and those bytes are dominated by a handful of
//! structs with one instance (or one message) per node. A field added to
//! `MwNode` costs `n × alignment` bytes of cache footprint at every
//! slot; this ratchet makes that cost a visible, deliberate decision
//! instead of an accident.
//!
//! To grow a budget: justify the new field in the PR description, update
//! the constant here, and refresh the measured table in
//! `docs/PERFORMANCE.md` (§ Memory traffic).

use std::mem::size_of;

use sinr_coloring::mw::{MwMessage, MwNode, MwPhase};
use sinr_model::ReceptionTable;
use sinr_radiosim::StepView;

/// Committed budget for the per-node protocol state. Measured 344 bytes
/// (x86-64) after the chi scratch buffer moved into the node so that
/// steady-state slots stopped allocating — 24 bytes of `Vec` header
/// bought zero allocator calls per slot.
const MW_NODE_BUDGET: usize = 344;

/// Committed budget for the wire message — one per reception per slot.
const MW_MESSAGE_BUDGET: usize = 24;

#[test]
fn mw_node_stays_within_its_size_budget() {
    let size = size_of::<MwNode>();
    assert!(
        size <= MW_NODE_BUDGET,
        "MwNode grew to {size} bytes (budget {MW_NODE_BUDGET}); every node \
         carries one, so justify the field and update the ratchet + \
         docs/PERFORMANCE.md"
    );
}

#[test]
fn mw_message_stays_within_its_size_budget() {
    let size = size_of::<MwMessage>();
    assert!(
        size <= MW_MESSAGE_BUDGET,
        "MwMessage grew to {size} bytes (budget {MW_MESSAGE_BUDGET}); \
         messages are copied into every receiver's inbox each slot"
    );
}

#[test]
fn hot_path_views_stay_word_scale() {
    // The borrowed step view and the recycled reception table are copied
    // or passed by value on every slot; they must stay a few words each.
    assert!(size_of::<StepView<'_>>() <= 64);
    assert!(size_of::<ReceptionTable>() <= 32);
    assert!(size_of::<MwPhase>() <= 24);
}
