//! Struct-size ratchets for the per-node hot-path types.
//!
//! Memory traffic on the hot path is proportional to the bytes the
//! per-slot loops touch, and those bytes are dominated by a handful of
//! structs with one instance (or one message) per node. A field added to
//! `MwNode` costs `n × alignment` bytes of cache footprint at every
//! slot; this ratchet makes that cost a visible, deliberate decision
//! instead of an accident.
//!
//! To grow a budget: justify the new field in the PR description, update
//! the constant here, and refresh the measured table in
//! `docs/PERFORMANCE.md` (§ Memory traffic / § Data layout).

use std::mem::size_of;

use sinr_coloring::mw::{MwCold, MwMessage, MwNode, MwPhase, MwPhaseKind};
use sinr_model::ReceptionTable;
use sinr_radiosim::{NodeFlags, StepView};

/// Committed budget for the per-node protocol state. Measured 176 bytes
/// (x86-64) after the hot/cold split boxed the leader bookkeeping and
/// the diagnostics counters behind `MwCold` — down from 344 when the
/// struct carried everything inline. The fused slot passes stream one
/// `MwNode` per node per slot, so this is the dominant per-slot
/// memory-traffic term.
const MW_NODE_BUDGET: usize = 192;

/// Committed budget for the boxed cold half: leader queue/grant ledger,
/// χ scratch, diagnostics. Touched only on phase transitions and by the
/// (rare) leader serve loop, so its size is off the hot path — the
/// budget exists to keep "cold" honest rather than a dumping ground.
const MW_COLD_BUDGET: usize = 192;

/// Committed budget for the wire message — one per reception per slot.
const MW_MESSAGE_BUDGET: usize = 24;

#[test]
fn mw_node_stays_within_its_size_budget() {
    let size = size_of::<MwNode>();
    assert!(
        size <= MW_NODE_BUDGET,
        "MwNode grew to {size} bytes (budget {MW_NODE_BUDGET}); every node \
         carries one, so justify the field and update the ratchet + \
         docs/PERFORMANCE.md"
    );
}

#[test]
fn mw_cold_state_stays_within_its_size_budget() {
    let size = size_of::<MwCold>();
    assert!(
        size <= MW_COLD_BUDGET,
        "MwCold grew to {size} bytes (budget {MW_COLD_BUDGET}); it is one \
         boxed allocation per node — cheap, but not free"
    );
}

#[test]
fn mw_message_stays_within_its_size_budget() {
    let size = size_of::<MwMessage>();
    assert!(
        size <= MW_MESSAGE_BUDGET,
        "MwMessage grew to {size} bytes (budget {MW_MESSAGE_BUDGET}); \
         messages are copied into every receiver's inbox each slot"
    );
}

#[test]
fn hot_path_views_stay_word_scale() {
    // The borrowed step view and the recycled reception table are copied
    // or passed by value on every slot; they must stay a few words each.
    assert!(size_of::<StepView<'_>>() <= 64);
    assert!(size_of::<ReceptionTable>() <= 32);
    assert!(size_of::<MwPhase>() <= 24);
}

#[test]
fn soa_columns_and_hot_enums_stay_one_byte() {
    // The engine's per-node status column is one byte per node; growing
    // it multiplies the fused passes' footprint directly.
    assert_eq!(size_of::<NodeFlags>(), 1, "NodeFlags must stay one byte");
    // Hot phase-kind enums must keep a niche so `Option<_>` wrappers are
    // free: a `None`-able phase kind in a dense column costs the same
    // byte as the bare enum.
    assert_eq!(size_of::<MwPhaseKind>(), 1);
    assert_eq!(
        size_of::<Option<MwPhaseKind>>(),
        1,
        "Option<MwPhaseKind> lost its niche"
    );
}
