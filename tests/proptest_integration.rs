//! Cross-crate property tests: for arbitrary small placements, the whole
//! pipeline maintains the paper's invariants.
//!
//! Two kinds of properties are distinguished:
//!
//! * **Deterministic invariants** (termination, palette bound, cluster
//!   structure, coverage) hold on *every* run — tested with proptest's
//!   default random exploration.
//! * **W.h.p. properties** (properness, leader independence) have a
//!   genuine failure tail by Theorem 1 — the probability is small but
//!   positive, and unrestricted proptest minimization is an adversarial
//!   search that will eventually exhibit it (e.g. an isolated pair where
//!   the loser misses every beacon in its trailing window). Those are
//!   tested under a *fixed* proptest RNG seed: an exact, reproducible set
//!   of 24 cases known to exercise the property. The statistical failure
//!   *rate* is what experiment E4 measures.

use proptest::prelude::*;
use proptest::test_runner::RngSeed;
use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::palette::reduce_palette;
use sinr_coloring::params::MwParams;
use sinr_coloring::verify::distance_violations;
use sinr_geometry::packing::is_independent;
use sinr_geometry::{Point, UnitDiskGraph};
use sinr_model::{SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..3.0f64, 0.0..3.0f64).prop_map(|(x, y)| Point::new(x, y)),
        2..18,
    )
}

fn run(pts: Vec<Point>, seed: u64) -> (UnitDiskGraph, MwParams, sinr_coloring::MwOutcome) {
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len().max(2), graph.max_degree());
    let out = run_mw(
        &graph,
        SinrModel::new(cfg),
        &MwConfig::new(params).with_seed(seed),
        WakeupSchedule::Synchronous,
    );
    (graph, params, out)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Deterministic invariants: hold on every execution, worst case.
    #[test]
    fn mw_always_terminates_with_structural_invariants(
        pts in arb_points(),
        seed in 0u64..1000,
    ) {
        let (graph, params, out) = run(pts, seed);
        prop_assert!(out.all_done, "slot cap hit");
        // Theorem-2 palette bound (deterministic: colors are state indices).
        prop_assert!(out.palette <= params.palette_bound());
        // At least one leader exists.
        prop_assert!(out.leaders > 0);
        // Every node is a leader or joined a *neighboring* leader
        // (messages only decode within R_T, so L(v) must be adjacent).
        let coloring = out.coloring.as_ref().expect("decided");
        for (v, r) in out.node_reports.iter().enumerate() {
            if coloring.color(v) == 0 {
                prop_assert!(r.leader.is_none());
            } else {
                let l = r.leader.expect("non-leader joined a cluster");
                prop_assert!(graph.are_adjacent(v, l), "L({v}) = {l} not adjacent");
                prop_assert_eq!(coloring.color(l), 0, "L(v) is not a leader");
                // Final color sits in the granted tc block (Lemma 4).
                let tc = r.cluster_color.expect("granted");
                let base = tc * params.spread;
                let c = coloring.color(v);
                prop_assert!(
                    c >= base && c < base + params.spread,
                    "color {c} outside tc-block [{base}, {})",
                    base + params.spread
                );
            }
        }
    }
}

proptest! {
    // Fixed RNG seed: a reproducible case set for the w.h.p. properties
    // (see module docs). Failure here means a *regression*, not bad luck.
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: RngSeed::Fixed(0x51AE_C010_4E57_0001),
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn mw_coloring_proper_on_fixed_case_set(pts in arb_points(), seed in 0u64..1000) {
        let (graph, _, out) = run(pts, seed);
        prop_assert!(out.all_done);
        let coloring = out.coloring.as_ref().expect("decided");
        prop_assert!(
            distance_violations(graph.positions(), coloring.as_slice(), graph.radius())
                .is_empty()
        );
        let leaders: Vec<usize> = (0..graph.len())
            .filter(|&v| coloring.color(v) == 0)
            .collect();
        prop_assert!(is_independent(&graph, &leaders));
    }

    #[test]
    fn palette_reduction_preserves_properness_on_fixed_case_set(
        pts in arb_points(),
        seed in 0u64..1000,
    ) {
        let (graph, _, out) = run(pts, seed);
        prop_assert!(out.all_done);
        let coloring = out.coloring.expect("decided");
        prop_assume!(coloring.is_proper(&graph)); // w.h.p. property, see above
        let reduced = reduce_palette(&graph, &coloring);
        prop_assert!(reduced.is_proper(&graph));
        prop_assert!(reduced.palette_size() <= graph.max_degree() + 1);
    }
}
