//! The dynamic zero-allocation gate: steady-state slots of the fused
//! sequential engine driving the incremental grid resolver must perform
//! **zero** heap allocations.
//!
//! Static guards already exist — lint L8 bans allocating constructs in
//! `// lint:hot` items — but a lint cannot see an allocation hidden
//! behind a helper call or a `Vec` that grows past its reservation. This
//! test measures the real thing: the workspace's counting allocator
//! attributes every heap event to the slot it happened in, and after the
//! warmup prefix (buffers growing to the instance's working size) the
//! per-slot ledger must read zero.
//!
//! The instance is the bench workload's shape (uniform placement,
//! expected degree 12) at n = 2048 — large enough that the grid path,
//! the delta-resolution path, and the epoch rebuilds all run.

use sinr_coloring::mw::{run_mw_profiled, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, SinrConfig};
use sinr_obs::alloc::{self, CountingAlloc};
use sinr_radiosim::WakeupSchedule;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_slots_of_the_fused_engine_do_not_allocate() {
    assert!(
        alloc::is_counting(),
        "counting allocator is installed in this test binary"
    );

    let cfg = SinrConfig::default_unit();
    let pts = placement::uniform_with_expected_degree(2048, cfg.r_t(), 12.0, 42);
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mw = MwConfig::new(params).with_seed(42);

    let (out, prof) = run_mw_profiled(
        &graph,
        FastSinrModel::new(cfg),
        &mw,
        WakeupSchedule::Synchronous,
    );
    assert!(out.all_done, "coloring completed");

    // The action and delivery phases are allocation-free for the *entire*
    // run, not just its tail: node-owned buffers are reserved to their
    // degree bounds up front.
    assert_eq!(prof.engine.actions.allocs, 0, "action phase allocated");
    assert_eq!(prof.engine.delivery.allocs, 0, "delivery phase allocated");

    // Resolver scratch reaches its working size within the warmup prefix;
    // every later slot must be allocation-free. `steady_allocs` sums the
    // final 25% of per-slot samples — the gated window.
    let sampled = prof.engine.per_slot.len() as u64;
    let warmup = prof.engine.warmup_slots();
    assert!(
        warmup * 2 < sampled,
        "warmup {warmup} of {sampled} slots: buffer growth extends past half the run"
    );
    assert_eq!(
        prof.engine.steady_allocs(),
        0,
        "steady-state slots allocated (zero-alloc hot path regressed); \
         warmup {warmup} of {sampled} slots"
    );
}
