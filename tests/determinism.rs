//! Integration: reproducibility guarantees across the whole stack.
//!
//! Every stochastic component is a pure function of its `u64` seed; these
//! tests pin that property across crate boundaries (a regression here
//! breaks the reproducibility of every experiment in EXPERIMENTS.md).

use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn outcome(seed: u64, wake: WakeupSchedule) -> sinr_coloring::MwOutcome {
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(placement::uniform(35, 3.5, 3.5, 77), cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    run_mw(
        &graph,
        SinrModel::new(cfg),
        &MwConfig::new(params).with_seed(seed),
        wake,
    )
}

#[test]
fn identical_seeds_identical_runs() {
    let a = outcome(4, WakeupSchedule::Synchronous);
    let b = outcome(4, WakeupSchedule::Synchronous);
    assert_eq!(a, b);
}

#[test]
fn identical_seeds_identical_runs_async() {
    let a = outcome(5, WakeupSchedule::UniformRandom { window: 300 });
    let b = outcome(5, WakeupSchedule::UniformRandom { window: 300 });
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let a = outcome(1, WakeupSchedule::Synchronous);
    let b = outcome(2, WakeupSchedule::Synchronous);
    assert_ne!(
        (a.transmissions, a.slots),
        (b.transmissions, b.slots),
        "two seeds produced byte-identical dynamics"
    );
}

#[test]
fn placement_generators_are_seed_pure() {
    for seed in [0u64, 9, 1234567] {
        assert_eq!(
            placement::uniform(64, 5.0, 5.0, seed),
            placement::uniform(64, 5.0, 5.0, seed)
        );
        assert_eq!(
            placement::clustered(4, 6, 5.0, 5.0, 0.5, seed),
            placement::clustered(4, 6, 5.0, 5.0, 0.5, seed)
        );
        assert_eq!(
            placement::jittered_grid(5, 5, 1.0, 0.3, seed),
            placement::jittered_grid(5, 5, 1.0, 0.3, seed)
        );
    }
}

#[test]
fn wake_schedules_are_seed_pure() {
    let s = WakeupSchedule::UniformRandom { window: 100 };
    assert_eq!(s.wake_slots(50, 3), s.wake_slots(50, 3));
    assert_ne!(s.wake_slots(50, 3), s.wake_slots(50, 4));
}
