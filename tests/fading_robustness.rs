//! Integration: the tuned parameter profile compensates for fading, as
//! `docs/PARAMETERS.md` prescribes (widen γ/μ by 1/p_recv).

use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_coloring::verify::distance_violations;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FadingSinrModel, SinrConfig};
use sinr_radiosim::WakeupSchedule;

fn setup() -> (SinrConfig, UnitDiskGraph) {
    let cfg = SinrConfig::default_unit();
    let pts = placement::uniform_with_expected_degree(60, cfg.r_t(), 10.0, 4242);
    (cfg, UnitDiskGraph::new(pts, cfg.r_t()))
}

#[test]
fn tuned_profile_survives_full_rayleigh_fading() {
    let (cfg, graph) = setup();
    // Full Rayleigh fading degrades edge-of-range links well below half;
    // tune for quarter delivery and a 0.3% per-race miss target (the
    // 1%/0.35 setting still fails a few percent of runs — measured while
    // writing this test).
    let params = MwParams::tuned(&cfg, graph.len(), graph.max_degree(), 0.003, 0.25);
    for seed in 0..3 {
        let out = run_mw(
            &graph,
            FadingSinrModel::new(cfg, 1000 + seed, 1.0),
            &MwConfig::new(params).with_seed(seed),
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done, "seed {seed}: hit slot cap at {}", out.slots);
        let coloring = out.coloring.expect("decided");
        assert!(
            distance_violations(graph.positions(), coloring.as_slice(), graph.radius()).is_empty(),
            "seed {seed}: fading broke the tuned profile"
        );
    }
}

#[test]
fn tuned_profile_matches_default_on_clear_channels() {
    let (cfg, graph) = setup();
    let tuned = MwParams::tuned(&cfg, graph.len(), graph.max_degree(), 0.01, 0.65);
    let out = run_mw(
        &graph,
        FadingSinrModel::new(cfg, 7, 0.0), // severity 0 == deterministic
        &MwConfig::new(tuned).with_seed(2),
        WakeupSchedule::Synchronous,
    );
    assert!(out.all_done);
    assert!(out.coloring.unwrap().is_proper(&graph));
}
