//! Integration: the full §V pipeline — distance-(d+1) coloring via power
//! scaling, TDMA scheduling, Theorem-3 audit, palette reduction, and
//! message-passing simulation (Corollary 1).

use sinr_coloring::distance_d::color_at_distance;
use sinr_coloring::palette::reduce_palette;
use sinr_coloring::verify::is_distance_coloring;
use sinr_geometry::greedy::Coloring;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::EchoDegrees;
use sinr_mac::mp::{run_uniform_ideal, BfsLayers, Flooding, MaxIdElection};
use sinr_mac::srs::{simulate_general_bundled, simulate_uniform};
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_model::SinrConfig;
use sinr_radiosim::WakeupSchedule;

fn cfg() -> SinrConfig {
    SinrConfig::default_unit()
}

struct Pipeline {
    graph: UnitDiskGraph,
    schedule: TdmaSchedule,
    colors: Vec<usize>,
}

fn build_pipeline(n: usize, seed: u64) -> Pipeline {
    let c = cfg();
    let pts = placement::uniform_with_expected_degree(n, c.r_t(), 9.0, seed);
    let graph = UnitDiskGraph::new(pts.clone(), c.r_t());
    let factor = theorem3_distance_factor(&c);
    let result = color_at_distance(&pts, &c, factor, seed, WakeupSchedule::Synchronous);
    let colors = result.colors().expect("coloring completed").to_vec();
    assert!(is_distance_coloring(&pts, &colors, factor * c.r_t()));
    let schedule = TdmaSchedule::from_colors(&colors);
    Pipeline {
        graph,
        schedule,
        colors,
    }
}

#[test]
fn theorem3_schedule_is_interference_free() {
    let p = build_pipeline(40, 17);
    let audit = broadcast_audit(&p.graph, &cfg(), &p.schedule);
    assert!(audit.is_interference_free(), "{audit:?}");
    assert_eq!(audit.full_broadcasts, audit.broadcasters);
}

#[test]
fn palette_reduction_composes_with_guard_coloring() {
    let p = build_pipeline(40, 18);
    let coloring = Coloring::from_vec(p.colors.clone());
    assert!(coloring.is_proper(&p.graph));
    let reduced = reduce_palette(&p.graph, &coloring);
    assert!(reduced.is_proper(&p.graph));
    assert!(reduced.palette_size() <= p.graph.max_degree() + 1);
}

#[test]
fn srs_flooding_matches_ideal_execution() {
    let p = build_pipeline(36, 19);
    if !p.graph.is_connected() {
        return; // flooding comparison needs connectivity
    }
    let n = p.graph.len();
    let mut ideal: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
    let ideal_run = run_uniform_ideal(&p.graph, &mut ideal, 10 * n);

    let mut sinr: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
    let run = simulate_uniform(&p.graph, &cfg(), &p.schedule, &mut sinr, 10 * n);
    assert!(run.all_done && run.is_faithful());
    assert_eq!(run.rounds, ideal_run.rounds);
    for v in 0..n {
        assert_eq!(sinr[v].informed(), ideal[v].informed(), "node {v}");
    }
}

#[test]
fn srs_bfs_and_election_agree_with_graph_truth() {
    let p = build_pipeline(30, 300);
    let n = p.graph.len();
    if !p.graph.is_connected() {
        return;
    }
    let mut bfs: Vec<BfsLayers> = (0..n).map(|v| BfsLayers::new(v == 0)).collect();
    let run = simulate_uniform(&p.graph, &cfg(), &p.schedule, &mut bfs, 10 * n);
    assert!(run.is_faithful());
    let truth = p.graph.bfs_distances(0);
    for v in 0..n {
        assert_eq!(bfs[v].distance(), truth[v]);
    }

    let diam = p.graph.diameter().expect("connected");
    let mut elect: Vec<MaxIdElection> = (0..n).map(|v| MaxIdElection::new(v, diam + 1)).collect();
    let run = simulate_uniform(&p.graph, &cfg(), &p.schedule, &mut elect, diam + 2);
    assert!(run.all_done);
    assert!(elect.iter().all(|e| e.leader() == n - 1));
}

#[test]
fn srs_general_model_delivers_addressed_payloads() {
    let p = build_pipeline(24, 21);
    let n = p.graph.len();
    let mut nodes: Vec<EchoDegrees> = (0..n)
        .map(|v| EchoDegrees::new(v, p.graph.neighbors(v).to_vec()))
        .collect();
    let run = simulate_general_bundled(&p.graph, &cfg(), &p.schedule, &mut nodes, 10);
    assert!(run.all_done && run.is_faithful(), "{run:?}");
    for (v, node) in nodes.iter().enumerate() {
        let expect: Vec<(usize, usize)> = p
            .graph
            .neighbors(v)
            .iter()
            .map(|&u| (u, p.graph.degree(u)))
            .collect();
        assert_eq!(node.received, expect);
    }
}

#[test]
fn slot_budget_matches_corollary_one_accounting() {
    let p = build_pipeline(36, 19);
    let n = p.graph.len();
    if !p.graph.is_connected() {
        return;
    }
    let mut nodes: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
    let run = simulate_uniform(&p.graph, &cfg(), &p.schedule, &mut nodes, 10 * n);
    // Exactly V slots per simulated round.
    assert_eq!(run.slots, run.rounds as u64 * p.schedule.frame_len() as u64);
}
