//! Integration: the fast grid-tiled SINR resolver is observationally
//! identical to the naive one across a whole MW coloring run.
//!
//! `FastSinrModel` promises bit-identical `ReceptionTable`s (see the
//! differential proptests in `crates/sinr/tests/proptests.rs`); here we pin
//! the end-to-end consequence — same message deliveries every slot means
//! the same protocol trajectory, slot count, and final coloring.

use sinr_coloring::mw::{run_mw, MwConfig, MwOutcome};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn run_with<M: InterferenceModel>(model: M, graph: &UnitDiskGraph, seed: u64) -> MwOutcome {
    let cfg = SinrConfig::default_unit();
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    run_mw(
        graph,
        model,
        &MwConfig::new(params).with_seed(seed),
        WakeupSchedule::Synchronous,
    )
}

#[test]
fn fast_and_naive_resolvers_produce_identical_runs() {
    let cfg = SinrConfig::default_unit();
    // Dense enough that many slots exceed the fast path's small-slot
    // cutoff, so both the grid path and the exact fallback are exercised.
    let graph = UnitDiskGraph::new(placement::uniform(120, 5.0, 5.0, 99), cfg.r_t());
    for seed in [0u64, 7] {
        let naive = run_with(SinrModel::new(cfg), &graph, seed);
        let fast = run_with(FastSinrModel::new(cfg), &graph, seed);

        assert_eq!(fast.all_done, naive.all_done, "seed {seed}");
        assert_eq!(fast.slots, naive.slots, "seed {seed}: slot counts");
        assert_eq!(fast.coloring, naive.coloring, "seed {seed}: colorings");
        assert_eq!(fast.transmissions, naive.transmissions, "seed {seed}");
        assert_eq!(fast.receptions, naive.receptions, "seed {seed}");
        assert_eq!(fast.node_reports, naive.node_reports, "seed {seed}");

        // The resolver counters live beside the stats (only the fast
        // model tracks them), so the per-node statistics agree exactly.
        assert!(fast.resolver.is_some(), "fast model reports stats");
        assert!(naive.resolver.is_none());
        assert_eq!(fast.stats, naive.stats, "seed {seed}: per-node stats");
    }
}

#[test]
fn fast_resolver_reports_a_nonzero_hit_rate_on_dense_runs() {
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(placement::uniform(120, 5.0, 5.0, 99), cfg.r_t());
    let out = run_with(FastSinrModel::new(cfg), &graph, 1);
    let stats = out.resolver.expect("fast model tracks stats");
    assert!(stats.fast_path_hits + stats.exact_fallbacks > 0);
    assert!(out.resolver_hit_rate().is_some());
}
