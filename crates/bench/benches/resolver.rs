//! Perf baseline for the SINR resolvers: naive `SinrModel` vs the
//! grid-tiled `FastSinrModel`, on transmit sets captured from real MW runs.
//!
//! Emits a machine-readable `BENCH_resolver.json` (schema documented in
//! `docs/PERFORMANCE.md`) so every PR has a tracked perf trajectory:
//!
//! ```text
//! cargo bench -p sinr-bench --bench resolver            # full (n ≤ 65536)
//! cargo bench -p sinr-bench --bench resolver -- --quick # CI smoke (n ≤ 16384)
//! BENCH_RESOLVER_JSON=/tmp/out.json cargo bench -p sinr-bench --bench resolver
//! ```
//!
//! Rows with `n >= 4096` are slot-capped (the cap is recorded per row as
//! `slot_cap`): they measure steady-state per-slot cost over the first
//! few thousand slots — which include the dense compete/request phases —
//! not a complete coloring.
//!
//! The replay phase also re-checks bit-identity: both resolvers must
//! produce equal `ReceptionTable`s on every captured slot.

use std::time::Instant;

use sinr_bench::workload::Instance;
use sinr_coloring::mw::{
    run_mw, run_mw_observed, run_mw_profiled, run_mw_recorded, MwConfig, MwProbeConfig,
};
use sinr_model::{FastSinrModel, InterferenceModel, SinrModel};
use sinr_obs::alloc::CountingAlloc;
use sinr_obs::{FullRecorder, NoopRecorder, Recorder};
use sinr_pool::Pool;
use sinr_radiosim::WakeupSchedule;

// Bench targets are binaries, so the counting allocator is sanctioned
// here (lint L10): every row's `alloc` block is measured in-process, and
// the library crates under test stay allocator-agnostic.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Quick-mode slot cap (CI smoke); full mode replays the complete run so
/// the dense contention phases — where resolution cost concentrates — are
/// represented, not just the quiet initial listen phase.
const QUICK_SLOTS: u64 = 400;
/// Sizes at or above this are "large-n" rows: slot-capped even in full
/// mode (a complete n=65536 coloring is minutes per repetition), with the
/// cap recorded in the emitted row so the numbers are honest about what
/// they cover.
const LARGE_N: usize = 4096;
/// Full-mode slot cap for large-n rows. The initial listen phase lasts
/// `⌈Δ ln n⌉` silent slots (~300 at n=65536), so the cap must extend well
/// past it to capture the dense compete/request contention the resolver
/// actually pays for.
const LARGE_SLOTS: u64 = 3000;
/// Quick-mode slot cap for large-n rows. `QUICK_SLOTS` would end inside
/// the silent listen phase and measure empty transmit sets.
const QUICK_LARGE_SLOTS: u64 = 1200;
/// Replay repetitions; the fastest repetition is reported.
const REPS: usize = 3;

struct ModelNumbers {
    resolve_ns_per_slot: f64,
    slots_per_sec: f64,
}

/// Heap traffic of one fixed-seed profiled run (schema v5): the memory
/// side of the perf trajectory. Steady-state allocations are the gated
/// figure — complete runs of the fused sequential engine must reach zero.
struct AllocNumbers {
    setup_allocs: u64,
    setup_bytes: u64,
    warmup_slots: u64,
    steady_allocs: u64,
    heap_peak: u64,
}

struct SizeResult {
    n: usize,
    max_degree: usize,
    slots_captured: usize,
    mean_tx_per_slot: f64,
    /// Hot-struct bytes a full fused pass streams per slot (schema v6):
    /// `size_of::<MwNode>() × n`. The cache-footprint side of the
    /// trajectory — the MwNode diet moves this number, and a field added
    /// to the hot struct raises it at every tracked size.
    bytes_per_slot: usize,
    naive: ModelNumbers,
    fast: ModelNumbers,
    /// The shipped configuration (`FastSinrModel::auto`): grid only where
    /// it pays. This is what `speedup_end_to_end` is computed from.
    auto: ModelNumbers,
    auto_grid_enabled: bool,
    fast_path_hit_rate: Option<f64>,
    /// Slot cap applied to this row (`None` = complete run). Large-n rows
    /// are always capped; see [`LARGE_SLOTS`].
    slot_cap: Option<u64>,
    alloc: AllocNumbers,
}

/// One thread-count measurement at the largest size (schema v3).
struct ThreadRow {
    threads: usize,
    resolve_ns_per_slot: f64,
    slots_per_sec: f64,
    /// Reception tables on every captured slot equal the threads=1 run.
    bit_identical: bool,
}

struct ThreadScaling {
    n: usize,
    /// Replay cost of a threads=1 pool relative to the plain sequential
    /// resolver (must stay ~1.0: the pool spawns no workers at 1 thread).
    pool_overhead_threads1: f64,
    rows: Vec<ThreadRow>,
}

/// PR 2's single-threaded fast baseline at n=2048 (BENCH_resolver.json,
/// schema v2) — the reference point for pool overhead and scaling claims.
const PRE_POOL_FAST_SLOTS_PER_SEC_N2048: f64 = 4700.8;

/// The slot cap for a row of size `n`, if any.
fn slot_cap(n: usize, quick: bool) -> Option<u64> {
    match (quick, n >= LARGE_N) {
        (true, true) => Some(QUICK_LARGE_SLOTS),
        (true, false) => Some(QUICK_SLOTS),
        (false, true) => Some(LARGE_SLOTS),
        (false, false) => None,
    }
}

fn config(inst: &Instance, seed: u64, quick: bool) -> MwConfig {
    let config = MwConfig::new(inst.params).with_seed(seed);
    match slot_cap(inst.graph.len(), quick) {
        Some(cap) => config.with_max_slots(cap),
        None => config,
    }
}

/// Captures the per-slot transmitter sets of a fixed-seed MW run.
fn capture_slots(inst: &Instance, config: &MwConfig) -> Vec<Vec<usize>> {
    let mut slots = Vec::new();
    run_mw_observed(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        config,
        WakeupSchedule::Synchronous,
        |_, view| slots.push(view.transmitters.to_vec()),
    );
    slots
}

/// Times `model.resolve` over every captured slot; returns the fastest
/// repetition's ns/slot and a reception checksum guarding dead-code elim.
fn time_replay<M: InterferenceModel>(
    model: &M,
    inst: &Instance,
    slots: &[Vec<usize>],
    reps: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..reps {
        checksum = 0;
        let start = Instant::now();
        for tx in slots {
            checksum += model.resolve(&inst.graph, tx).len() as u64;
        }
        let ns = start.elapsed().as_nanos() as f64 / slots.len().max(1) as f64;
        best = best.min(ns);
    }
    (best, checksum)
}

/// Times full fixed-seed MW runs under models built by `make_model`;
/// returns the fastest repetition's slots/sec.
fn time_end_to_end<M: InterferenceModel>(
    make_model: impl Fn() -> M,
    inst: &Instance,
    config: &MwConfig,
    reps: usize,
) -> f64 {
    let mut best = 0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = run_mw(
            &inst.graph,
            make_model(),
            config,
            WakeupSchedule::Synchronous,
        );
        best = best.max(out.slots as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn bench_size(n: usize, quick: bool) -> SizeResult {
    let degree = 12.0;
    let seed = 1000 + n as u64;
    let inst = Instance::uniform(n, degree, seed);
    let cfg = config(&inst, seed, quick);
    let reps = if quick { 2 } else { REPS };

    let slots = capture_slots(&inst, &cfg);
    let total_tx: usize = slots.iter().map(Vec::len).sum();

    let naive_model = SinrModel::new(inst.cfg);
    let fast_model = FastSinrModel::new(inst.cfg);
    let auto_model = FastSinrModel::auto(inst.cfg, &inst.graph);

    // Bit-identity audit over every captured slot (outside the timed loop).
    for (i, tx) in slots.iter().enumerate() {
        let a = naive_model.resolve(&inst.graph, tx);
        let b = fast_model.resolve(&inst.graph, tx);
        let c = auto_model.resolve(&inst.graph, tx);
        assert_eq!(a, b, "n={n}: reception tables diverge at captured slot {i}");
        assert_eq!(a, c, "n={n}: auto tables diverge at captured slot {i}");
    }
    fast_model.reset_stats();
    auto_model.reset_stats();

    let (naive_ns, naive_sum) = time_replay(&naive_model, &inst, &slots, reps);
    let (fast_ns, fast_sum) = time_replay(&fast_model, &inst, &slots, reps);
    let (auto_ns, auto_sum) = time_replay(&auto_model, &inst, &slots, reps);
    assert_eq!(naive_sum, fast_sum, "n={n}: reception checksums diverge");
    assert_eq!(naive_sum, auto_sum, "n={n}: auto checksums diverge");
    let hit_rate = fast_model.stats().hit_rate();

    // End-to-end reps are interleaved across the three models (and scaled
    // up at small n, where a run is cheap) so clock drift and background
    // load hit all of them equally; the speedup_end_to_end gate divides
    // two of these figures, and a block-per-model measurement would
    // report scheduler noise as a model regression.
    // Quick mode caps runs at 400 slots, so a single end-to-end sample is
    // a few milliseconds — one scheduler hiccup skews it 30%. Many cheap
    // reps keep the best-of estimate stable there. Large-n rows are the
    // opposite regime: a single capped run is seconds, so keep reps low.
    let e2e_reps = if n >= LARGE_N {
        2
    } else if quick {
        reps.max(10)
    } else {
        reps.max(2048 / n.max(1))
    };
    let mut naive_sps = 0f64;
    let mut fast_sps = 0f64;
    let mut auto_sps = 0f64;
    for _ in 0..e2e_reps {
        naive_sps = naive_sps.max(time_end_to_end(|| SinrModel::new(inst.cfg), &inst, &cfg, 1));
        fast_sps = fast_sps.max(time_end_to_end(
            || FastSinrModel::new(inst.cfg),
            &inst,
            &cfg,
            1,
        ));
        auto_sps = auto_sps.max(time_end_to_end(
            || FastSinrModel::auto(inst.cfg, &inst.graph),
            &inst,
            &cfg,
            1,
        ));
    }

    // Heap traffic of the same fixed-seed run under the shipped model —
    // `auto`, matching what `speedup_end_to_end` and the steady-alloc
    // gate claim to cover (v5 profiled the always-grid model here, which
    // made the n=256 row report the grid's late buffer-growth straggler
    // even though the shipped configuration never builds that grid).
    // Profiling reads thread-local cells only, so the outcome is the one
    // `capture_slots` saw; the counters ride along for free.
    let (_, prof) = run_mw_profiled(
        &inst.graph,
        FastSinrModel::auto(inst.cfg, &inst.graph),
        &cfg,
        WakeupSchedule::Synchronous,
    );
    let alloc = AllocNumbers {
        setup_allocs: prof.setup.allocs,
        setup_bytes: prof.setup.bytes_allocated,
        warmup_slots: prof.engine.warmup_slots(),
        steady_allocs: prof.engine.steady_allocs(),
        heap_peak: prof.heap_peak,
    };

    SizeResult {
        n,
        max_degree: inst.graph.max_degree(),
        slots_captured: slots.len(),
        mean_tx_per_slot: total_tx as f64 / slots.len().max(1) as f64,
        bytes_per_slot: std::mem::size_of::<sinr_coloring::mw::MwNode>() * n,
        naive: ModelNumbers {
            resolve_ns_per_slot: naive_ns,
            slots_per_sec: naive_sps,
        },
        fast: ModelNumbers {
            resolve_ns_per_slot: fast_ns,
            slots_per_sec: fast_sps,
        },
        auto: ModelNumbers {
            resolve_ns_per_slot: auto_ns,
            slots_per_sec: auto_sps,
        },
        auto_grid_enabled: auto_model.grid_enabled(),
        fast_path_hit_rate: hit_rate,
        slot_cap: slot_cap(n, quick),
        alloc,
    }
}

/// Thread-scaling measurements at size `n`: replay + end-to-end for each
/// thread count, bit-identity against threads=1, and the threads=1 pool
/// tax against the plain sequential resolver.
fn bench_threads(n: usize, quick: bool) -> ThreadScaling {
    let seed = 1000 + n as u64;
    let inst = Instance::uniform(n, 12.0, seed);
    let cfg = config(&inst, seed, quick);
    let reps = if quick { 2 } else { REPS };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    let slots = capture_slots(&inst, &cfg);
    // Pool overhead at threads=1: plain construction vs the pool-carrying
    // one. The repetitions are interleaved (plain, pooled, plain, …) so
    // clock drift and background load hit both sides equally — the two
    // paths are a few branches apart, and a sequential A-block/B-block
    // measurement would report scheduler noise as overhead.
    let plain = FastSinrModel::new(inst.cfg);
    let pooled1 = FastSinrModel::with_pool(inst.cfg, Pool::new(1));
    let mut plain_ns = f64::INFINITY;
    let mut pooled1_ns = f64::INFINITY;
    let mut plain_sum = 0u64;
    for _ in 0..reps.max(5) {
        let (ns, sum) = time_replay(&plain, &inst, &slots, 1);
        plain_ns = plain_ns.min(ns);
        plain_sum = sum;
        let (ns, sum) = time_replay(&pooled1, &inst, &slots, 1);
        pooled1_ns = pooled1_ns.min(ns);
        assert_eq!(plain_sum, sum, "n={n}: threads=1 checksum diverges");
    }

    let baseline: Vec<_> = slots
        .iter()
        .map(|tx| plain.resolve(&inst.graph, tx))
        .collect();
    let mut rows = Vec::new();
    for &t in thread_counts {
        let model = FastSinrModel::with_pool(inst.cfg, Pool::new(t));
        let bit_identical = slots
            .iter()
            .zip(&baseline)
            .all(|(tx, expect)| &model.resolve(&inst.graph, tx) == expect);
        let (ns, sum) = time_replay(&model, &inst, &slots, reps);
        assert_eq!(sum, plain_sum, "n={n} threads={t}: checksum diverges");
        let cfg_t = cfg.with_threads(t);
        let sps = time_end_to_end(|| FastSinrModel::new(inst.cfg), &inst, &cfg_t, reps);
        rows.push(ThreadRow {
            threads: t,
            resolve_ns_per_slot: ns,
            slots_per_sec: sps,
            bit_identical,
        });
    }

    ThreadScaling {
        n,
        pool_overhead_threads1: pooled1_ns / plain_ns.max(1e-9),
        rows,
    }
}

/// Recorder overhead on the largest instance: end-to-end slots/sec with
/// the disabled [`NoopRecorder`] (one virtual `enabled()` call per slot)
/// vs a [`FullRecorder`] with all probes at stride 1. The no-op figure
/// must track `fast.slots_per_sec` closely — that gap is the cost of the
/// observability seams themselves.
struct RecorderOverhead {
    n: usize,
    noop_slots_per_sec: f64,
    full_slots_per_sec: f64,
}

fn time_recorded(inst: &Instance, cfg: &MwConfig, rec: &mut dyn Recorder) -> f64 {
    let start = Instant::now();
    let out = run_mw_recorded(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        cfg,
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        rec,
    );
    out.slots as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn bench_recorder_overhead(n: usize, quick: bool) -> RecorderOverhead {
    let seed = 1000 + n as u64;
    let inst = Instance::uniform(n, 12.0, seed);
    let cfg = config(&inst, seed, quick);
    let reps = if quick { 1 } else { 2 };
    let mut noop = 0f64;
    let mut full = 0f64;
    for _ in 0..reps {
        noop = noop.max(time_recorded(&inst, &cfg, &mut NoopRecorder));
        full = full.max(time_recorded(&inst, &cfg, &mut FullRecorder::new()));
    }
    RecorderOverhead {
        n,
        noop_slots_per_sec: noop,
        full_slots_per_sec: full,
    }
}

/// End-to-end speedup of the shipped configuration over the naive
/// resolver — the number the small-n regression gate asserts on.
fn speedup_e2e(r: &SizeResult) -> f64 {
    r.auto.slots_per_sec / r.naive.slots_per_sec.max(1e-9)
}

fn render_json(
    results: &[SizeResult],
    scaling: &ThreadScaling,
    overhead: &RecorderOverhead,
    quick: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"resolver\",\n");
    s.push_str("  \"schema_version\": 6,\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"workload\": \"MW coloring, uniform placement, expected degree 12, synchronous wakeup, seed 1000+n\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup_resolve = r.naive.resolve_ns_per_slot / r.fast.resolve_ns_per_slot.max(1e-9);
        s.push_str("    {\n");
        s.push_str(&format!("      \"n\": {},\n", r.n));
        s.push_str(&format!("      \"max_degree\": {},\n", r.max_degree));
        s.push_str(&format!(
            "      \"slots_captured\": {},\n",
            r.slots_captured
        ));
        s.push_str(&format!(
            "      \"slot_cap\": {},\n",
            r.slot_cap
                .map_or_else(|| "null".to_string(), |c| c.to_string())
        ));
        s.push_str(&format!(
            "      \"mean_tx_per_slot\": {:.2},\n",
            r.mean_tx_per_slot
        ));
        s.push_str(&format!(
            "      \"bytes_per_slot\": {},\n",
            r.bytes_per_slot
        ));
        s.push_str(&format!(
            "      \"naive\": {{ \"resolve_ns_per_slot\": {:.1}, \"slots_per_sec\": {:.1} }},\n",
            r.naive.resolve_ns_per_slot, r.naive.slots_per_sec
        ));
        s.push_str(&format!(
            "      \"fast\": {{ \"resolve_ns_per_slot\": {:.1}, \"slots_per_sec\": {:.1} }},\n",
            r.fast.resolve_ns_per_slot, r.fast.slots_per_sec
        ));
        s.push_str(&format!(
            "      \"auto\": {{ \"resolve_ns_per_slot\": {:.1}, \"slots_per_sec\": {:.1}, \
             \"grid_enabled\": {} }},\n",
            r.auto.resolve_ns_per_slot, r.auto.slots_per_sec, r.auto_grid_enabled
        ));
        s.push_str(&format!(
            "      \"fast_path_hit_rate\": {},\n",
            r.fast_path_hit_rate
                .map_or_else(|| "null".to_string(), |h| format!("{h:.4}"))
        ));
        s.push_str(&format!(
            "      \"speedup_resolve\": {speedup_resolve:.2},\n"
        ));
        s.push_str(&format!(
            "      \"speedup_end_to_end\": {:.2},\n",
            speedup_e2e(r)
        ));
        s.push_str(&format!(
            "      \"alloc\": {{ \"setup_allocs\": {}, \"setup_bytes\": {}, \
             \"warmup_slots\": {}, \"steady_allocs\": {}, \"heap_peak\": {} }}\n",
            r.alloc.setup_allocs,
            r.alloc.setup_bytes,
            r.alloc.warmup_slots,
            r.alloc.steady_allocs,
            r.alloc.heap_peak
        ));
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"threads\": {{\n    \"n\": {},\n    \"pool_overhead_threads1\": {:.3},\n    \
         \"pre_pool_fast_slots_per_sec_n2048\": {PRE_POOL_FAST_SLOTS_PER_SEC_N2048},\n    \
         \"rows\": [\n",
        scaling.n, scaling.pool_overhead_threads1
    ));
    for (i, row) in scaling.rows.iter().enumerate() {
        s.push_str(&format!(
            "      {{ \"threads\": {}, \"resolve_ns_per_slot\": {:.1}, \
             \"slots_per_sec\": {:.1}, \"bit_identical\": {} }}{}\n",
            row.threads,
            row.resolve_ns_per_slot,
            row.slots_per_sec,
            row.bit_identical,
            if i + 1 == scaling.rows.len() { "" } else { "," }
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(&format!(
        "  \"recorder_overhead\": {{ \"n\": {}, \"noop_slots_per_sec\": {:.1}, \
         \"full_slots_per_sec\": {:.1}, \"full_over_noop\": {:.3} }}\n",
        overhead.n,
        overhead.noop_slots_per_sec,
        overhead.full_slots_per_sec,
        overhead.noop_slots_per_sec / overhead.full_slots_per_sec.max(1e-9)
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[256, 1024, 16384]
    } else {
        &[256, 1024, 2048, 16384, 65536]
    };

    let mut results = Vec::new();
    for &n in sizes {
        eprintln!("resolver bench: n = {n} ...");
        let r = bench_size(n, quick);
        eprintln!(
            "  naive {:>10.1} ns/slot   fast {:>10.1} ns/slot   auto {:>10.1} ns/slot \
             (grid {})   resolve speedup {:.2}x   e2e speedup {:.2}x   hit rate {}",
            r.naive.resolve_ns_per_slot,
            r.fast.resolve_ns_per_slot,
            r.auto.resolve_ns_per_slot,
            if r.auto_grid_enabled { "on" } else { "off" },
            r.naive.resolve_ns_per_slot / r.fast.resolve_ns_per_slot.max(1e-9),
            speedup_e2e(&r),
            r.fast_path_hit_rate
                .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", 100.0 * h)),
        );
        eprintln!(
            "  alloc: warmup {} slots   steady {} allocs   heap peak {} bytes",
            r.alloc.warmup_slots, r.alloc.steady_allocs, r.alloc.heap_peak
        );
        results.push(r);
    }

    // Thread scaling and recorder overhead stay pinned to the largest
    // *uncapped* size: the committed pre-pool baseline and the recorder
    // comparisons are n=2048 complete runs, and moving them to a capped
    // large-n row would silently change what the trend lines measure.
    let largest = *sizes
        .iter()
        .rfind(|&&n| n < LARGE_N)
        .expect("at least one small size");
    eprintln!("thread scaling: n = {largest} ...");
    let scaling = bench_threads(largest, quick);
    eprintln!(
        "  pool overhead at threads=1: {:.3}x",
        scaling.pool_overhead_threads1
    );
    for row in &scaling.rows {
        eprintln!(
            "  threads {:>2}: resolve {:>10.1} ns/slot   e2e {:>8.1} slots/sec   bit-identical {}",
            row.threads, row.resolve_ns_per_slot, row.slots_per_sec, row.bit_identical
        );
    }

    eprintln!("recorder overhead: n = {largest} ...");
    let overhead = bench_recorder_overhead(largest, quick);
    eprintln!(
        "  noop {:>10.1} slots/sec   full {:>10.1} slots/sec   slowdown {:.3}x",
        overhead.noop_slots_per_sec,
        overhead.full_slots_per_sec,
        overhead.noop_slots_per_sec / overhead.full_slots_per_sec.max(1e-9)
    );

    // Regression gates. Every thread count must replay the exact baseline
    // tables, and the shipped auto model must never lose to the naive
    // resolver end-to-end at any tracked size (the n=256 regression this
    // mode was introduced for). Quick mode keeps a small noise margin so
    // the CI bench-smoke stays green on shared runners.
    for row in &scaling.rows {
        assert!(
            row.bit_identical,
            "threads={} produced different reception tables",
            row.threads
        );
    }
    for r in &results {
        // Large-n rows gate at 1.0 even in quick mode: a capped n=16384
        // run is seconds long (measured quick speedup ~1.36 vs ~1.0 at
        // n=1024) and the e2e reps interleave the models, so runner noise
        // cannot produce a false failure the way it can on
        // millisecond-long small-n quick runs.
        let e2e_floor = if quick && r.n < LARGE_N { 0.9 } else { 1.0 };
        let s = speedup_e2e(r);
        assert!(
            s >= e2e_floor,
            "end-to-end speedup {s:.3} < {e2e_floor} at n={} (auto model regressed)",
            r.n
        );
        // Dynamic zero-alloc gate: on a complete run the steady window
        // (final 25% of slots) sits long past the last buffer-growth
        // record, so any allocation there is a hot-path regression. Capped
        // rows end inside the dense contention phase where growth records
        // are still legitimately occurring, so only uncapped rows gate.
        if r.slot_cap.is_none() {
            assert_eq!(
                r.alloc.steady_allocs, 0,
                "n={}: steady-state slots allocated (zero-alloc hot path regressed)",
                r.n
            );
        }
    }

    let json = render_json(&results, &scaling, &overhead, quick);
    let path = std::env::var("BENCH_RESOLVER_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_resolver.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &json).expect("write BENCH_resolver.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
