//! Perf baseline for the SINR resolvers: naive `SinrModel` vs the
//! grid-tiled `FastSinrModel`, on transmit sets captured from real MW runs.
//!
//! Emits a machine-readable `BENCH_resolver.json` (schema documented in
//! `docs/PERFORMANCE.md`) so every PR has a tracked perf trajectory:
//!
//! ```text
//! cargo bench -p sinr-bench --bench resolver            # full (n ≤ 2048)
//! cargo bench -p sinr-bench --bench resolver -- --quick # CI smoke
//! BENCH_RESOLVER_JSON=/tmp/out.json cargo bench -p sinr-bench --bench resolver
//! ```
//!
//! The replay phase also re-checks bit-identity: both resolvers must
//! produce equal `ReceptionTable`s on every captured slot.

use std::time::Instant;

use sinr_bench::workload::Instance;
use sinr_coloring::mw::{run_mw, run_mw_observed, run_mw_recorded, MwConfig, MwProbeConfig};
use sinr_model::{FastSinrModel, InterferenceModel, SinrModel};
use sinr_obs::{FullRecorder, NoopRecorder, Recorder};
use sinr_radiosim::WakeupSchedule;

/// Quick-mode slot cap (CI smoke); full mode replays the complete run so
/// the dense contention phases — where resolution cost concentrates — are
/// represented, not just the quiet initial listen phase.
const QUICK_SLOTS: u64 = 400;
/// Replay repetitions; the fastest repetition is reported.
const REPS: usize = 3;

struct ModelNumbers {
    resolve_ns_per_slot: f64,
    slots_per_sec: f64,
}

struct SizeResult {
    n: usize,
    max_degree: usize,
    slots_captured: usize,
    mean_tx_per_slot: f64,
    naive: ModelNumbers,
    fast: ModelNumbers,
    fast_path_hit_rate: Option<f64>,
}

fn config(inst: &Instance, seed: u64, quick: bool) -> MwConfig {
    let config = MwConfig::new(inst.params).with_seed(seed);
    if quick {
        config.with_max_slots(QUICK_SLOTS)
    } else {
        config
    }
}

/// Captures the per-slot transmitter sets of a fixed-seed MW run.
fn capture_slots(inst: &Instance, config: &MwConfig) -> Vec<Vec<usize>> {
    let mut slots = Vec::new();
    run_mw_observed(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        config,
        WakeupSchedule::Synchronous,
        |_, view| slots.push(view.transmitters.clone()),
    );
    slots
}

/// Times `model.resolve` over every captured slot; returns the fastest
/// repetition's ns/slot and a reception checksum guarding dead-code elim.
fn time_replay<M: InterferenceModel>(
    model: &M,
    inst: &Instance,
    slots: &[Vec<usize>],
    reps: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..reps {
        checksum = 0;
        let start = Instant::now();
        for tx in slots {
            checksum += model.resolve(&inst.graph, tx).len() as u64;
        }
        let ns = start.elapsed().as_nanos() as f64 / slots.len().max(1) as f64;
        best = best.min(ns);
    }
    (best, checksum)
}

/// Times a full fixed-seed MW run under `model`; returns slots/sec.
fn time_end_to_end<M: InterferenceModel>(model: M, inst: &Instance, config: &MwConfig) -> f64 {
    let start = Instant::now();
    let out = run_mw(&inst.graph, model, config, WakeupSchedule::Synchronous);
    out.slots as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn bench_size(n: usize, quick: bool) -> SizeResult {
    let degree = 12.0;
    let seed = 1000 + n as u64;
    let inst = Instance::uniform(n, degree, seed);
    let cfg = config(&inst, seed, quick);
    let reps = if quick { 2 } else { REPS };

    let slots = capture_slots(&inst, &cfg);
    let total_tx: usize = slots.iter().map(Vec::len).sum();

    let naive_model = SinrModel::new(inst.cfg);
    let fast_model = FastSinrModel::new(inst.cfg);

    // Bit-identity audit over every captured slot (outside the timed loop).
    for (i, tx) in slots.iter().enumerate() {
        let a = naive_model.resolve(&inst.graph, tx);
        let b = fast_model.resolve(&inst.graph, tx);
        assert_eq!(a, b, "n={n}: reception tables diverge at captured slot {i}");
    }
    fast_model.reset_stats();

    let (naive_ns, naive_sum) = time_replay(&naive_model, &inst, &slots, reps);
    let (fast_ns, fast_sum) = time_replay(&fast_model, &inst, &slots, reps);
    assert_eq!(naive_sum, fast_sum, "n={n}: reception checksums diverge");
    let hit_rate = fast_model.stats().hit_rate();

    let naive_sps = time_end_to_end(SinrModel::new(inst.cfg), &inst, &cfg);
    let fast_sps = time_end_to_end(FastSinrModel::new(inst.cfg), &inst, &cfg);

    SizeResult {
        n,
        max_degree: inst.graph.max_degree(),
        slots_captured: slots.len(),
        mean_tx_per_slot: total_tx as f64 / slots.len().max(1) as f64,
        naive: ModelNumbers {
            resolve_ns_per_slot: naive_ns,
            slots_per_sec: naive_sps,
        },
        fast: ModelNumbers {
            resolve_ns_per_slot: fast_ns,
            slots_per_sec: fast_sps,
        },
        fast_path_hit_rate: hit_rate,
    }
}

/// Recorder overhead on the largest instance: end-to-end slots/sec with
/// the disabled [`NoopRecorder`] (one virtual `enabled()` call per slot)
/// vs a [`FullRecorder`] with all probes at stride 1. The no-op figure
/// must track `fast.slots_per_sec` closely — that gap is the cost of the
/// observability seams themselves.
struct RecorderOverhead {
    n: usize,
    noop_slots_per_sec: f64,
    full_slots_per_sec: f64,
}

fn time_recorded(inst: &Instance, cfg: &MwConfig, rec: &mut dyn Recorder) -> f64 {
    let start = Instant::now();
    let out = run_mw_recorded(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        cfg,
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        rec,
    );
    out.slots as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn bench_recorder_overhead(n: usize, quick: bool) -> RecorderOverhead {
    let seed = 1000 + n as u64;
    let inst = Instance::uniform(n, 12.0, seed);
    let cfg = config(&inst, seed, quick);
    let reps = if quick { 1 } else { 2 };
    let mut noop = 0f64;
    let mut full = 0f64;
    for _ in 0..reps {
        noop = noop.max(time_recorded(&inst, &cfg, &mut NoopRecorder));
        full = full.max(time_recorded(&inst, &cfg, &mut FullRecorder::new()));
    }
    RecorderOverhead {
        n,
        noop_slots_per_sec: noop,
        full_slots_per_sec: full,
    }
}

fn render_json(results: &[SizeResult], overhead: &RecorderOverhead, quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"resolver\",\n");
    s.push_str("  \"schema_version\": 2,\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"workload\": \"MW coloring, uniform placement, expected degree 12, synchronous wakeup, seed 1000+n\",\n");
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup_resolve = r.naive.resolve_ns_per_slot / r.fast.resolve_ns_per_slot.max(1e-9);
        let speedup_e2e = r.fast.slots_per_sec / r.naive.slots_per_sec.max(1e-9);
        s.push_str("    {\n");
        s.push_str(&format!("      \"n\": {},\n", r.n));
        s.push_str(&format!("      \"max_degree\": {},\n", r.max_degree));
        s.push_str(&format!(
            "      \"slots_captured\": {},\n",
            r.slots_captured
        ));
        s.push_str(&format!(
            "      \"mean_tx_per_slot\": {:.2},\n",
            r.mean_tx_per_slot
        ));
        s.push_str(&format!(
            "      \"naive\": {{ \"resolve_ns_per_slot\": {:.1}, \"slots_per_sec\": {:.1} }},\n",
            r.naive.resolve_ns_per_slot, r.naive.slots_per_sec
        ));
        s.push_str(&format!(
            "      \"fast\": {{ \"resolve_ns_per_slot\": {:.1}, \"slots_per_sec\": {:.1} }},\n",
            r.fast.resolve_ns_per_slot, r.fast.slots_per_sec
        ));
        s.push_str(&format!(
            "      \"fast_path_hit_rate\": {},\n",
            r.fast_path_hit_rate
                .map_or_else(|| "null".to_string(), |h| format!("{h:.4}"))
        ));
        s.push_str(&format!(
            "      \"speedup_resolve\": {speedup_resolve:.2},\n"
        ));
        s.push_str(&format!("      \"speedup_end_to_end\": {speedup_e2e:.2}\n"));
        s.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"recorder_overhead\": {{ \"n\": {}, \"noop_slots_per_sec\": {:.1}, \
         \"full_slots_per_sec\": {:.1}, \"full_over_noop\": {:.3} }}\n",
        overhead.n,
        overhead.noop_slots_per_sec,
        overhead.full_slots_per_sec,
        overhead.noop_slots_per_sec / overhead.full_slots_per_sec.max(1e-9)
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 2048]
    };

    let mut results = Vec::new();
    for &n in sizes {
        eprintln!("resolver bench: n = {n} ...");
        let r = bench_size(n, quick);
        eprintln!(
            "  naive {:>10.1} ns/slot   fast {:>10.1} ns/slot   speedup {:.2}x   hit rate {}",
            r.naive.resolve_ns_per_slot,
            r.fast.resolve_ns_per_slot,
            r.naive.resolve_ns_per_slot / r.fast.resolve_ns_per_slot.max(1e-9),
            r.fast_path_hit_rate
                .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", 100.0 * h)),
        );
        results.push(r);
    }

    let largest = *sizes.last().expect("at least one size");
    eprintln!("recorder overhead: n = {largest} ...");
    let overhead = bench_recorder_overhead(largest, quick);
    eprintln!(
        "  noop {:>10.1} slots/sec   full {:>10.1} slots/sec   slowdown {:.3}x",
        overhead.noop_slots_per_sec,
        overhead.full_slots_per_sec,
        overhead.noop_slots_per_sec / overhead.full_slots_per_sec.max(1e-9)
    );

    let json = render_json(&results, &overhead, quick);
    let path = std::env::var("BENCH_RESOLVER_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_resolver.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &json).expect("write BENCH_resolver.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
