//! Criterion benches for the geometric substrate (S1): UDG construction,
//! spatial-grid range queries, packing, and greedy coloring.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_geometry::greedy::greedy_coloring;
use sinr_geometry::packing::greedy_mis;
use sinr_geometry::{placement, Point, SpatialGrid, UnitDiskGraph};

fn bench_udg_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("udg_construction");
    for &n in &[256usize, 1024, 4096] {
        let pts = placement::uniform_with_expected_degree(n, 1.0, 12.0, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| UnitDiskGraph::new(black_box(pts.clone()), 1.0));
        });
    }
    group.finish();
}

fn bench_grid_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_range_query");
    let pts = placement::uniform_with_expected_degree(4096, 1.0, 12.0, 2);
    let grid = SpatialGrid::build(&pts, 1.0);
    for &r in &[1.0f64, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let mut count = 0usize;
                grid.for_each_within(&pts, black_box(Point::new(10.0, 10.0)), r, |_| count += 1);
                count
            });
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let pts = placement::uniform_with_expected_degree(1024, 1.0, 12.0, 3);
    let g = UnitDiskGraph::new(pts, 1.0);
    c.bench_function("greedy_coloring_1024", |b| {
        b.iter(|| greedy_coloring(black_box(&g)))
    });
    c.bench_function("greedy_mis_1024", |b| b.iter(|| greedy_mis(black_box(&g))));
}

criterion_group!(
    benches,
    bench_udg_construction,
    bench_grid_queries,
    bench_greedy
);
criterion_main!(benches);
