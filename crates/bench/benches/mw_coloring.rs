//! Criterion benches for full MW coloring runs (S4) — the wall-time cost
//! behind experiments E1/E2/E5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workload::Instance;
use sinr_model::{GraphModel, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn bench_mw_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("mw_full_run");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let inst = Instance::uniform(n, 10.0, 77);
        group.bench_with_input(BenchmarkId::new("sinr", n), &inst, |b, inst| {
            b.iter(|| inst.run_with(SinrModel::new(inst.cfg), 1, WakeupSchedule::Synchronous));
        });
        group.bench_with_input(BenchmarkId::new("graph", n), &inst, |b, inst| {
            b.iter(|| inst.run_with(GraphModel::new(), 1, WakeupSchedule::Synchronous));
        });
    }
    group.finish();
}

fn bench_mw_slots_per_second(c: &mut Criterion) {
    // Throughput of the simulator loop itself: slots per wall-second on a
    // mid-size instance (bounded run).
    let inst = Instance::uniform(256, 15.0, 78);
    let mut group = c.benchmark_group("mw_bounded_2000_slots");
    group.sample_size(10);
    group.bench_function("n256", |b| {
        b.iter(|| {
            let cfg = sinr_coloring::MwConfig::new(inst.params)
                .with_seed(3)
                .with_max_slots(2000);
            sinr_coloring::mw::run_mw(
                &inst.graph,
                SinrModel::new(inst.cfg),
                &cfg,
                WakeupSchedule::Synchronous,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mw_run, bench_mw_slots_per_second);
criterion_main!(benches);
