//! Criterion wrapper running each paper experiment (E1–E12) in quick mode,
//! so `cargo bench` regenerates every validated claim end to end.
//!
//! The slot-count tables themselves are printed by the `experiments`
//! binary; this bench tracks the wall-time of regenerating them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::experiments::{run_by_id, ALL};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);
    for id in ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| run_by_id(id, true).expect("known experiment id"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
