//! Criterion benches for per-slot reception resolution (S2): SINR vs
//! graph-based vs ideal model, across transmitter counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{GraphModel, IdealModel, InterferenceModel, SinrConfig, SinrModel};

fn setup(n: usize) -> UnitDiskGraph {
    let pts = placement::uniform_with_expected_degree(n, 1.0, 15.0, 7);
    UnitDiskGraph::new(pts, 1.0)
}

fn transmitters(n: usize, k: usize) -> Vec<usize> {
    // Deterministic spread-out subset.
    (0..k).map(|i| i * n / k).collect()
}

fn bench_resolve(c: &mut Criterion) {
    let g = setup(1024);
    let cfg = SinrConfig::default_unit();
    let mut group = c.benchmark_group("resolve_slot_n1024");
    for &k in &[4usize, 16, 64] {
        let tx = transmitters(1024, k);
        group.bench_with_input(BenchmarkId::new("sinr", k), &tx, |b, tx| {
            let model = SinrModel::new(cfg);
            b.iter(|| model.resolve(black_box(&g), black_box(tx)));
        });
        group.bench_with_input(BenchmarkId::new("graph", k), &tx, |b, tx| {
            let model = GraphModel::new();
            b.iter(|| model.resolve(black_box(&g), black_box(tx)));
        });
        group.bench_with_input(BenchmarkId::new("ideal", k), &tx, |b, tx| {
            let model = IdealModel::new();
            b.iter(|| model.resolve(black_box(&g), black_box(tx)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resolve);
criterion_main!(benches);
