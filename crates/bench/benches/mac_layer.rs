//! Criterion benches for the MAC layer (S5): TDMA broadcast audits and
//! SRS rounds — the machinery behind experiments E6/E7.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::Flooding;
use sinr_mac::srs::simulate_uniform;
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_model::SinrConfig;
use sinr_radiosim::WakeupSchedule;

struct MacFixture {
    graph: UnitDiskGraph,
    cfg: SinrConfig,
    schedule: TdmaSchedule,
}

fn fixture(n: usize) -> MacFixture {
    let cfg = SinrConfig::default_unit();
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 55);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    let factor = theorem3_distance_factor(&cfg);
    let colored = color_at_distance(&pts, &cfg, factor, 5, WakeupSchedule::Synchronous);
    let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
    MacFixture {
        graph,
        cfg,
        schedule,
    }
}

fn bench_broadcast_audit(c: &mut Criterion) {
    let fx = fixture(96);
    c.bench_function("tdma_broadcast_audit_n96", |b| {
        b.iter(|| broadcast_audit(black_box(&fx.graph), &fx.cfg, &fx.schedule));
    });
}

fn bench_srs_flooding(c: &mut Criterion) {
    let fx = fixture(96);
    let mut group = c.benchmark_group("srs_flooding_n96");
    group.sample_size(20);
    group.bench_function("full", |b| {
        b.iter(|| {
            let mut nodes: Vec<Flooding> =
                (0..fx.graph.len()).map(|v| Flooding::new(v == 0)).collect();
            simulate_uniform(&fx.graph, &fx.cfg, &fx.schedule, &mut nodes, 200)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast_audit, bench_srs_flooding);
criterion_main!(benches);
