//! E3 — number of colors is `O(Δ)` within the `(φ(2R_T)+1)Δ` bound
//! (Theorem 2), compared against the centralized greedy `Δ+1` floor.

use crate::report::{f2, mean, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_geometry::greedy::greedy_coloring;
use sinr_radiosim::WakeupSchedule;

/// Runs E3.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 128 } else { 256 };
    let seeds = if quick { 2 } else { 5 };
    let degrees: &[f64] = if quick {
        &[6.0, 12.0, 20.0]
    } else {
        &[6.0, 10.0, 14.0, 20.0, 26.0]
    };

    let mut report = ExpReport::new(
        "E3",
        "colors used vs Delta",
        "Theorem 2: the algorithm produces a (1, (φ(2R_T)+1)Δ)-coloring — \
         O(Δ) colors; a centralized greedy needs ≤ Δ+1",
    )
    .headers([
        "Delta",
        "MW colors",
        "MW palette",
        "bound (Δ+1)·spread",
        "greedy",
        "Δ+1",
        "colors/Δ",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 2000 + deg as u64);
        let delta = inst.graph.max_degree();
        let greedy = greedy_coloring(&inst.graph).palette_size();
        let outs = par_seeds(seeds, |s| inst.run_sinr(s, WakeupSchedule::Synchronous));
        let colors: Vec<f64> = outs
            .iter()
            .filter(|o| o.all_done)
            .map(|o| o.colors_used as f64)
            .collect();
        let palettes: Vec<f64> = outs
            .iter()
            .filter(|o| o.all_done)
            .map(|o| o.palette as f64)
            .collect();
        // Every realized palette must respect the theorem bound.
        let bound = inst.params.palette_bound();
        for p in &palettes {
            assert!(
                *p <= bound as f64,
                "palette {p} exceeds Theorem-2 bound {bound}"
            );
        }
        report.push_row([
            delta.to_string(),
            f2(mean(&colors)),
            f2(mean(&palettes)),
            bound.to_string(),
            greedy.to_string(),
            (delta + 1).to_string(),
            f2(mean(&colors) / delta as f64),
        ]);
    }
    report.note(
        "Distinct colors grow linearly in Δ (constant colors/Δ), far below \
         the worst-case palette bound; E9 reduces them to Δ+1.",
    );
    report
}
