//! E10 — ablation: the send probability `q_s ∝ 1/(φΔ)` is the right
//! functional form.
//!
//! Sweeps a multiplier on `q_s`. Too low ⇒ slow (messages rarely sent);
//! too high ⇒ interference violates the Lemma-3 budget and correctness
//! erodes. The paper's choice sits at the knee.

use crate::report::{f2, mean, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::verify::distance_violations;
use sinr_radiosim::WakeupSchedule;

/// Runs E10.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 4 } else { 10 };
    let multipliers = [0.25, 0.5, 1.0, 2.0, 4.0];

    let base = Instance::uniform(n, 12.0, 10_000);

    let mut report = ExpReport::new(
        "E10",
        "ablation: send probability q_s",
        "§II: q_s = 1/(φ(R_I+R_T)Δ) keeps the per-disk probability mass \
         (Eq. 1) bounded — the knee between speed and correctness",
    )
    .headers([
        "q_s multiplier",
        "mean latency",
        "violation rate",
        "incomplete",
    ]);

    for &m in &multipliers {
        let mut inst = base.clone();
        inst.params.q_small = (base.params.q_small * m).min(1.0);
        let results = par_seeds(seeds, |s| {
            let out = inst.run_sinr(s, WakeupSchedule::Synchronous);
            let violated = out
                .coloring
                .as_ref()
                .map(|c| {
                    !distance_violations(inst.graph.positions(), c.as_slice(), inst.graph.radius())
                        .is_empty()
                })
                .unwrap_or(false);
            (out.all_done, out.max_latency, violated)
        });
        let incomplete = results.iter().filter(|r| !r.0).count();
        let lat: Vec<f64> = results
            .iter()
            .filter_map(|r| r.1)
            .map(|l| l as f64)
            .collect();
        let violations = results.iter().filter(|r| r.2).count();
        report.push_row([
            format!("{m}x"),
            f2(mean(&lat)),
            pct(violations as f64 / seeds as f64),
            incomplete.to_string(),
        ]);
    }
    report.note(
        "Both directions fail: at 0.25x nodes exchange too few M_A/M_C \
         messages to break ties within the windows (violations), while \
         large multipliers raise interference and erode the Lemma-3 \
         budget. The paper's 1/(φΔ) form sits in the safe band.",
    );
    report
}
