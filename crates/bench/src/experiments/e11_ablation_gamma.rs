//! E11 — ablation: the reset window `γζ_i ln n` (and the `σ > 2γ` gap).
//!
//! Shrinking `γ` shortens both the counter-reset window and the trailing
//! race's announcement window; Theorem 1's independence argument needs the
//! window long enough for the winner's `M_C` to arrive w.h.p. Violations
//! should climb as `γ` shrinks.

use crate::report::{f2, mean, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::verify::distance_violations;
use sinr_radiosim::WakeupSchedule;

/// Runs E11.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 4 } else { 10 };
    let gammas = [24.0, 12.0, 6.0, 3.0, 1.5];

    let base = Instance::uniform(n, 12.0, 11_000);

    let mut report = ExpReport::new(
        "E11",
        "ablation: reset window gamma",
        "§II / Theorem 1: the window γζ_i ln n must be long enough for the \
         winner's announcement to arrive; σ > 2γ keeps the counter race \
         sound",
    )
    .headers([
        "gamma",
        "sigma/gamma",
        "mean latency",
        "violation rate",
        "incomplete",
    ]);

    for &g in &gammas {
        let mut inst = base.clone();
        inst.params.gamma = g;
        // Keep σ fixed: the σ > 2γ invariant stays satisfied throughout
        // the sweep (24 ⇒ ratio 2.04; 1.5 ⇒ ratio 32.7).
        let results = par_seeds(seeds, |s| {
            let out = inst.run_sinr(s, WakeupSchedule::Synchronous);
            let violated = out
                .coloring
                .as_ref()
                .map(|c| {
                    !distance_violations(inst.graph.positions(), c.as_slice(), inst.graph.radius())
                        .is_empty()
                })
                .unwrap_or(false);
            (out.all_done, out.max_latency, violated)
        });
        let incomplete = results.iter().filter(|r| !r.0).count();
        let lat: Vec<f64> = results
            .iter()
            .filter_map(|r| r.1)
            .map(|l| l as f64)
            .collect();
        let violations = results.iter().filter(|r| r.2).count();
        report.push_row([
            format!("{g}"),
            f2(inst.params.sigma / g),
            f2(mean(&lat)),
            pct(violations as f64 / seeds as f64),
            incomplete.to_string(),
        ]);
    }
    report.note(
        "Runs get slightly faster as γ shrinks (fewer/shorter resets) but \
         correctness decays — the trailing loser no longer hears the \
         winner in time. This is the tradeoff the paper's constants pin.",
    );
    report
}
