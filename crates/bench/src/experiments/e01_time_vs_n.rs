//! E1 — running time scales as `O(Δ log n)` in `n` (Theorem 2).
//!
//! Fixed expected degree, growing `n`: the paper predicts the per-node
//! time `max_v T_v` grows like `Δ ln n`, so the normalized column
//! `slots / (Δ ln n)` should be flat.

use crate::report::{f2, mean, pct, ExpReport};
use crate::stats::proportional_fit;
use crate::workload::{par_seeds, resolver_hit_rate, Instance};
use sinr_radiosim::WakeupSchedule;

/// Runs E1.
pub fn run(quick: bool) -> ExpReport {
    let sizes: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let seeds = if quick { 2 } else { 5 };
    let degree = 12.0;

    let mut report = ExpReport::new(
        "E1",
        "coloring time vs n (fixed density)",
        "Theorem 2: the algorithm decides all colors within O(Δ log n) slots \
         w.h.p.; at fixed Δ, time grows logarithmically in n",
    )
    .headers([
        "n",
        "Delta",
        "ln n",
        "max latency",
        "mean latency",
        "lat/(Delta ln n)",
        "done",
    ]);

    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    let mut last_hit_rate = None;
    let mut last_inst = None;
    for &n in sizes {
        let inst = Instance::uniform(n, degree, 1000 + n as u64);
        let delta = inst.graph.max_degree() as f64;
        let outs = par_seeds(seeds, |s| inst.run_sinr(s, WakeupSchedule::Synchronous));
        last_hit_rate = resolver_hit_rate(&outs).or(last_hit_rate);
        let done = outs.iter().filter(|o| o.all_done).count();
        let max_lat: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.max_latency)
            .map(|l| l as f64)
            .collect();
        let mean_lat: Vec<f64> = outs.iter().filter_map(|o| o.mean_latency).collect();
        let ln_n = (n as f64).ln();
        for &l in &max_lat {
            fit_points.push((delta * ln_n, l));
        }
        report.push_row([
            n.to_string(),
            format!("{delta}"),
            f2(ln_n),
            f2(mean(&max_lat)),
            f2(mean(&mean_lat)),
            f2(mean(&max_lat) / (delta * ln_n)),
            format!("{done}/{seeds}"),
        ]);
        last_inst = Some(inst);
    }
    if let Some(fit) = proportional_fit(&fit_points) {
        report.note(format!(
            "Least-squares fit latency ≈ c·(Δ ln n): c = {:.1}, R² = {:.3} — \
             the O(Δ log n) model explains the data.",
            fit.slope, fit.r_squared
        ));
    }
    report.note(
        "The normalized column is flat (constant factor), confirming the \
         O(Δ log n) shape in n.",
    );
    if let Some(rate) = last_hit_rate {
        report.note(format!(
            "Fast SINR resolver certified {} of candidate decodes without the \
             exact fallback (largest instance).",
            pct(rate)
        ));
    }
    // One fully observed run of the largest instance: the machine-readable
    // obs section carries the probe verdicts and the metrics registry.
    if let Some(inst) = &last_inst {
        report.obs = Some(crate::obs::recorded_instance_report(inst, 0));
    }
    report
}
