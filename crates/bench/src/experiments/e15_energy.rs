//! E15 — energy/duty-cycle profile of the coloring protocol.
//!
//! The paper's send probabilities are tiny by design (`q_s ∝ 1/Δ`,
//! Lemma 3's budget); the flip side is an extremely low transmit duty
//! cycle — relevant for the sensor networks that motivate the paper (§I).

use crate::report::{f2, f3, pct, ExpReport};
use crate::workload::Instance;
use sinr_radiosim::energy::{tx_duty_cycle, EnergyModel};
use sinr_radiosim::WakeupSchedule;

/// Runs E15.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let degrees: &[f64] = if quick {
        &[12.0]
    } else {
        &[8.0, 12.0, 18.0, 26.0]
    };
    let model = EnergyModel::low_power_radio();

    let mut report = ExpReport::new(
        "E15",
        "energy and duty cycle of the coloring protocol",
        "§I (motivation) + §II: q_s ∝ 1/Δ keeps transmit activity — and \
         hence energy — low; leaders pay the most",
    )
    .headers([
        "Delta",
        "mean tx duty",
        "max tx duty",
        "leader duty",
        "mean energy/slot",
        "tx share of energy",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 15_000 + deg as u64);
        let out = inst.run_sinr(2, WakeupSchedule::Synchronous);
        assert!(out.all_done);
        let stats = &out.stats;
        let coloring = out.coloring.as_ref().expect("decided");
        let duties: Vec<f64> = (0..n).map(|v| tx_duty_cycle(stats, v)).collect();
        let leader_duties: Vec<f64> = (0..n)
            .filter(|&v| coloring.color(v) == 0)
            .map(|v| tx_duty_cycle(stats, v))
            .collect();
        let total_energy = model.total_energy(stats);
        let tx_energy: f64 = stats
            .tx_slots
            .iter()
            .map(|&t| t as f64 * model.tx_cost)
            .sum();
        report.push_row([
            inst.graph.max_degree().to_string(),
            f3(duties.iter().sum::<f64>() / n as f64),
            f3(duties.iter().cloned().fold(0.0, f64::max)),
            f3(leader_duties.iter().sum::<f64>() / leader_duties.len().max(1) as f64),
            f2(total_energy / (n as f64 * out.slots as f64)),
            pct(tx_energy / total_energy),
        ]);
    }
    report.note(
        "Transmit duty cycles sit around q_ℓ for leaders and well below \
         q_s·(time in A/R states)/(total) for everyone else; idle listening \
         dominates the energy budget, matching the low-power-radio regime \
         the MAC literature assumes.",
    );
    report
}
