//! E13 — baseline comparison: coloring-based TDMA vs slotted ALOHA for
//! the "every node broadcasts to all neighbors" job (§I motivation).
//!
//! Theorem 3's TDMA finishes one guaranteed full local broadcast per node
//! every `V` slots, deterministically. Slotted ALOHA at its best fixed
//! probability needs far longer for the *last* node to succeed once, and
//! gives no guarantee.

use crate::report::{f2, mean, ExpReport};
use crate::workload::{default_cfg, par_seeds};
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::aloha::aloha_until_broadcast;
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_radiosim::WakeupSchedule;

/// Runs E13.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let n = if quick { 60 } else { 100 };
    let seeds = if quick { 3 } else { 6 };
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 1300);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    let delta = graph.max_degree();

    // TDMA reference: one full broadcast per node per frame, guaranteed.
    let colored = color_at_distance(
        &pts,
        &cfg,
        theorem3_distance_factor(&cfg),
        13,
        WakeupSchedule::Synchronous,
    );
    let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
    let audit = broadcast_audit(&graph, &cfg, &schedule);
    assert!(audit.is_interference_free());

    let mut report = ExpReport::new(
        "E13",
        "TDMA (Theorem 3) vs slotted ALOHA",
        "§I: coloring-based schedules give deterministic interference-free \
         MAC access; contention (ALOHA) does not",
    )
    .headers([
        "MAC",
        "parameter",
        "slots to all-broadcast",
        "tx spent",
        "guaranteed",
    ]);

    report.push_row([
        "TDMA".to_string(),
        format!("V = {}", schedule.frame_len()),
        schedule.frame_len().to_string(),
        n.to_string(),
        "yes".to_string(),
    ]);

    for &p_mult in &[0.5f64, 1.0, 2.0] {
        let p = p_mult / (2.0 * delta as f64);
        let runs = par_seeds(seeds, |s| {
            aloha_until_broadcast(&graph, &cfg, p, 3_000_000, 1_000 + s)
        });
        let makespans: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.makespan())
            .map(|m| m as f64)
            .collect();
        let tx: Vec<f64> = runs.iter().map(|r| r.transmissions as f64).collect();
        let completed_all = runs.iter().filter(|r| r.all_completed()).count();
        report.push_row([
            "ALOHA".to_string(),
            format!("p = {p_mult}/(2Δ)"),
            if makespans.len() == runs.len() {
                f2(mean(&makespans))
            } else {
                format!("incomplete ({completed_all}/{seeds})")
            },
            f2(mean(&tx)),
            "no".to_string(),
        ]);
    }
    report.note(format!(
        "Δ = {delta}; TDMA completes the job in one frame (V = {} slots) \
         every time with exactly n transmissions, while ALOHA's makespan \
         (slot of the *last* node's first success) is several times \
         larger, costs an order of magnitude more transmissions, and has \
         an unbounded tail — the coordination the coloring buys.",
        schedule.frame_len()
    ));
    report
}
