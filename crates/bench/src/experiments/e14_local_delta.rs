//! E14 — extension (§VI open question): running with *local degree*
//! knowledge instead of the global Δ.
//!
//! The paper closes by asking "whether it is possible to get rid of the
//! knowledge of Δ and n". This experiment evaluates the natural heuristic
//! where every node derives its Δ-dependent constants from its own degree:
//! faster for low-degree nodes, but the asymmetric windows weaken the
//! Theorem-1 race guarantees.

use crate::report::{f2, mean, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::mw::{run_mw_local_delta, MwConfig};
use sinr_coloring::verify::distance_violations;
use sinr_model::SinrModel;
use sinr_radiosim::WakeupSchedule;

/// Runs E14.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 4 } else { 10 };
    let degrees: &[f64] = if quick { &[12.0] } else { &[8.0, 12.0, 18.0] };

    let mut report = ExpReport::new(
        "E14",
        "extension: local degree instead of global Δ",
        "§VI: 'we wonder whether it is possible to get rid of the knowledge \
         of Δ and n in our analysis' — empirical answer for the Δ half",
    )
    .headers([
        "Delta",
        "global-Δ latency",
        "local-Δ latency",
        "speedup",
        "global viol.",
        "local viol.",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 14_000 + deg as u64);
        let violations = |out: &sinr_coloring::MwOutcome| -> bool {
            out.coloring
                .as_ref()
                .map(|c| {
                    !distance_violations(inst.graph.positions(), c.as_slice(), inst.graph.radius())
                        .is_empty()
                })
                .unwrap_or(true)
        };
        let global = par_seeds(seeds, |s| {
            let out = inst.run_sinr(s, WakeupSchedule::Synchronous);
            (out.max_latency, violations(&out))
        });
        let local = par_seeds(seeds, |s| {
            let out = run_mw_local_delta(
                &inst.graph,
                SinrModel::new(inst.cfg),
                &MwConfig::new(inst.params).with_seed(s),
                WakeupSchedule::Synchronous,
            );
            (out.max_latency, violations(&out))
        });
        let lat = |rs: &[(Option<u64>, bool)]| {
            mean(
                &rs.iter()
                    .filter_map(|r| r.0)
                    .map(|l| l as f64)
                    .collect::<Vec<_>>(),
            )
        };
        let viol =
            |rs: &[(Option<u64>, bool)]| rs.iter().filter(|r| r.1).count() as f64 / rs.len() as f64;
        report.push_row([
            inst.graph.max_degree().to_string(),
            f2(lat(&global)),
            f2(lat(&local)),
            f2(lat(&global) / lat(&local)),
            pct(viol(&global)),
            pct(viol(&local)),
        ]);
    }
    report.note(
        "Per-node constants speed up the bulk of the network (whose degree \
         is below Δ), but the asymmetric race windows cost real correctness \
         — the naive local substitution is *not* sound, which is precisely \
         why the paper leaves removing the Δ knowledge as an open question.",
    );
    report
}
