//! E19 — where the `O(Δ log n)` actually goes: per-phase time breakdown.
//!
//! Theorem 2's cost is assembled from Lemmas 6 (time in `A_i` =
//! listen + counter race) and 7 (time in `R` = request/grant wait). This
//! experiment decomposes measured per-node time into the five phase kinds
//! and checks the decomposition against the lemmas' structure.
//!
//! The decomposition is read off the span layer: the MW phase tracker
//! records one residency span per `(node, phase stay)` on the trace
//! timeline (`docs/OBSERVABILITY.md`), and this experiment aggregates
//! those spans by phase name — the same data a Perfetto view of
//! `sinrcolor trace` shows, summed instead of drawn.

use crate::report::{pct, ExpReport};
use crate::workload::Instance;
use sinr_coloring::mw::{run_mw_recorded, MwConfig, MwPhase, MwProbeConfig};
use sinr_model::FastSinrModel;
use sinr_obs::{FullRecorder, SpanTrack, QUARTERS_PER_SLOT};
use sinr_radiosim::WakeupSchedule;

/// Runs E19.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let degrees: &[f64] = if quick { &[12.0] } else { &[8.0, 14.0, 22.0] };

    let mut report = ExpReport::new(
        "E19",
        "runtime decomposition by protocol phase",
        "Lemma 6: T_v^{A_i} = O(Δ log n) (listen + counter race); Lemma 7: \
         T_v^R = O(Δ log n) (queue wait) — the two dominate total time",
    )
    .headers([
        "Delta",
        "listen",
        "compete",
        "request",
        "leader (post-color)",
        "colored (post-color)",
        "pre-color share",
    ]);

    // Phase tracking only: the residency spans are the measurement; the
    // invariant probes are other experiments' business.
    let probes = MwProbeConfig {
        thm1_stride: 0,
        track_phases: true,
        residency: false,
    };
    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 19_000 + deg as u64);
        // One span per (node, phase stay) plus three engine spans per
        // slot; a generous ring keeps the timeline complete.
        let mut rec = FullRecorder::with_ring_capacity(1 << 20);
        let out = run_mw_recorded(
            &inst.graph,
            FastSinrModel::auto(inst.cfg, &inst.graph),
            &MwConfig::new(inst.params).with_seed(3),
            WakeupSchedule::Synchronous,
            probes,
            &mut rec,
        );
        assert!(out.all_done);
        assert_eq!(rec.spans_dropped(), 0, "span ring must hold the full run");

        // Sum node-track residency spans by phase kind. Per node the
        // spans partition [0, slots], so the totals add up to n × slots.
        let mut totals = [0u64; 5];
        for s in rec.spans() {
            if matches!(s.track, SpanTrack::Node(_)) {
                if let Some(k) = MwPhase::KIND_NAMES.iter().position(|&name| name == s.name) {
                    totals[k] += s.dur_q / QUARTERS_PER_SLOT;
                }
            }
        }
        let all: u64 = totals.iter().sum();
        assert_eq!(all, out.slots * n as u64, "spans tile every node timeline");
        // Leader/Colored slots are post-decision (the node already has its
        // color); the paper's time bound covers the first three phases.
        let pre_color = totals[0] + totals[1] + totals[2];
        let cell = |k: usize| -> String {
            format!(
                "{} ({})",
                totals[k],
                pct(totals[k] as f64 / all.max(1) as f64)
            )
        };
        report.push_row([
            inst.graph.max_degree().to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            cell(4),
            pct(pre_color as f64 / all.max(1) as f64),
        ]);
    }
    report.note(
        "The counter race (compete) overwhelmingly dominates pre-decision \
         time, matching Lemma 6's (η + σ + 2γφ)Δ ln n structure with σ ≫ η \
         as the largest multiplier (σ/η = 49 in the practical profile, so \
         listen is ~2% of compete). Request time stays small because grant \
         queues are short in uniform placements (Lemma 7's Δ·μ ln n is a \
         worst case). Leader/colored time is post-decision: nodes keep \
         serving/announcing until the whole network finishes.",
    );
    report
}
