//! The experiment suite E1–E17 (see DESIGN.md §4 for the index).
//!
//! Every experiment validates one claim of the paper and returns an
//! [`ExpReport`]. `quick = true` shrinks sizes
//! and seed counts for CI-speed runs.

pub mod e01_time_vs_n;
pub mod e02_time_vs_delta;
pub mod e03_colors;
pub mod e04_correctness;
pub mod e05_model_overhead;
pub mod e06_mac_guard;
pub mod e07_srs;
pub mod e08_lemma3;
pub mod e09_palette;
pub mod e10_ablation_qs;
pub mod e11_ablation_gamma;
pub mod e12_wakeup;
pub mod e13_aloha;
pub mod e14_local_delta;
pub mod e15_energy;
pub mod e16_general_srs;
pub mod e17_johansson;
pub mod e18_fading;
pub mod e19_time_breakdown;
pub mod e20_crossover;
pub mod e21_clustering;

use crate::report::ExpReport;

/// All experiment ids in order.
pub const ALL: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Runs one experiment by id (`"e1"`…`"e12"`), or `None` for unknown ids.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExpReport> {
    Some(match id {
        "e1" => e01_time_vs_n::run(quick),
        "e2" => e02_time_vs_delta::run(quick),
        "e3" => e03_colors::run(quick),
        "e4" => e04_correctness::run(quick),
        "e5" => e05_model_overhead::run(quick),
        "e6" => e06_mac_guard::run(quick),
        "e7" => e07_srs::run(quick),
        "e8" => e08_lemma3::run(quick),
        "e9" => e09_palette::run(quick),
        "e10" => e10_ablation_qs::run(quick),
        "e11" => e11_ablation_gamma::run(quick),
        "e12" => e12_wakeup::run(quick),
        "e13" => e13_aloha::run(quick),
        "e14" => e14_local_delta::run(quick),
        "e15" => e15_energy::run(quick),
        "e16" => e16_general_srs::run(quick),
        "e17" => e17_johansson::run(quick),
        "e18" => e18_fading::run(quick),
        "e19" => e19_time_breakdown::run(quick),
        "e20" => e20_crossover::run(quick),
        "e21" => e21_clustering::run(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every id listed in ALL must dispatch (and unknown ids must not) —
    /// guards against the registration drifting from the module list
    /// (this exact bug once silently dropped four experiments from
    /// `-- all` runs).
    #[test]
    fn all_ids_are_contiguous_and_dispatchable() {
        for (i, id) in ALL.iter().enumerate() {
            assert_eq!(*id, format!("e{}", i + 1), "ALL must stay ordered");
        }
        assert!(run_by_id("e0", true).is_none());
        assert!(run_by_id(&format!("e{}", ALL.len() + 1), true).is_none());
        // Dispatch (not execution) check via a cheap unknown-id contrast is
        // insufficient; actually run the fastest experiment to keep this
        // test honest without paying for all of them.
        assert!(run_by_id(ALL[ALL.len() - 1], true).is_some());
    }
}
