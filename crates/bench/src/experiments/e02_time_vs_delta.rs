//! E2 — running time scales as `O(Δ log n)` in `Δ` (Theorem 2).
//!
//! Fixed `n`, growing density: the normalized `slots / (Δ ln n)` column
//! should stay flat while `Δ` triples.

use crate::report::{f2, mean, pct, ExpReport};
use crate::stats::proportional_fit;
use crate::workload::{par_seeds, resolver_hit_rate, Instance};
use sinr_radiosim::WakeupSchedule;

/// Runs E2.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 128 } else { 256 };
    let seeds = if quick { 2 } else { 5 };
    let degrees: &[f64] = if quick {
        &[6.0, 12.0, 20.0]
    } else {
        &[6.0, 10.0, 14.0, 20.0, 26.0]
    };

    let mut report = ExpReport::new(
        "E2",
        "coloring time vs Delta (fixed n)",
        "Theorem 2: time is linear in Δ at fixed n",
    )
    .headers([
        "target deg",
        "Delta",
        "max latency",
        "lat/Delta",
        "lat/(Delta ln n)",
        "done",
    ]);

    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    let mut last_hit_rate = None;
    let mut last_inst = None;
    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 2000 + deg as u64);
        let delta = inst.graph.max_degree() as f64;
        let outs = par_seeds(seeds, |s| inst.run_sinr(s, WakeupSchedule::Synchronous));
        last_hit_rate = resolver_hit_rate(&outs).or(last_hit_rate);
        let done = outs.iter().filter(|o| o.all_done).count();
        let max_lat: Vec<f64> = outs
            .iter()
            .filter_map(|o| o.max_latency)
            .map(|l| l as f64)
            .collect();
        for &l in &max_lat {
            fit_points.push((delta, l));
        }
        let ln_n = (n as f64).ln();
        report.push_row([
            format!("{deg}"),
            format!("{delta}"),
            f2(mean(&max_lat)),
            f2(mean(&max_lat) / delta),
            f2(mean(&max_lat) / (delta * ln_n)),
            format!("{done}/{seeds}"),
        ]);
        last_inst = Some(inst);
    }
    if let Some(fit) = proportional_fit(&fit_points) {
        report.note(format!(
            "Least-squares fit latency ≈ c·Δ at fixed n: c = {:.1}, R² = {:.3}.",
            fit.slope, fit.r_squared
        ));
    }
    report.note("lat/Delta stays near-constant while Δ grows ~4x: linear in Δ.");
    if let Some(rate) = last_hit_rate {
        report.note(format!(
            "Fast SINR resolver certified {} of candidate decodes without the \
             exact fallback (densest instance).",
            pct(rate)
        ));
    }
    // One fully observed run of the densest instance for the obs section.
    if let Some(inst) = &last_inst {
        report.obs = Some(crate::obs::recorded_instance_report(inst, 0));
    }
    report
}
