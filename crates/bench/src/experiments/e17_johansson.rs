//! E17 — an end-to-end Corollary-1 use case: running a classical
//! distributed coloring algorithm (Johansson's randomized Δ+1) under SINR
//! via single-round simulation, versus the paper's native SINR coloring.
//!
//! This is the paper's own motivating pipeline (§V: "since designing
//! distributed algorithms from scratch under the physical constraints
//! turns out to be a hard task, simulation-based techniques … can indeed
//! help"): once one coloring exists, *any* message-passing algorithm —
//! including a better coloring algorithm — runs under SINR unchanged.

use crate::report::ExpReport;
use crate::workload::{default_cfg, Instance};
use sinr_coloring::distance_d::color_at_distance;
use sinr_coloring::verify::is_distance_coloring;
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::{run_uniform_ideal, JohanssonColoring};
use sinr_mac::srs::simulate_uniform;
use sinr_mac::tdma::TdmaSchedule;
use sinr_radiosim::WakeupSchedule;

/// Runs E17.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let sizes: &[usize] = if quick { &[48] } else { &[48, 96, 192] };

    let mut report = ExpReport::new(
        "E17",
        "Johansson (Δ+1)-coloring simulated under SINR vs native MW",
        "§V/Corollary 1: simulation turns any point-to-point algorithm into \
         an SINR algorithm — here a classical coloring algorithm, giving a \
         Δ+1 palette at O(Δ(log n + τ)) total slots",
    )
    .headers([
        "n",
        "Delta",
        "tau (rounds)",
        "SRS slots",
        "setup slots",
        "native MW slots",
        "Johansson palette",
        "MW palette",
        "proper",
    ]);

    for &n in sizes {
        let inst = Instance::uniform(n, 10.0, 1700 + n as u64);
        let g = &inst.graph;
        let pts = g.positions().to_vec();

        // Setup: guard-distance coloring -> TDMA schedule (one-time).
        let colored = color_at_distance(
            &pts,
            &cfg,
            theorem3_distance_factor(&cfg),
            17,
            WakeupSchedule::Synchronous,
        );
        let schedule = TdmaSchedule::from_colors(colored.colors().expect("setup completed"));

        // Reference round count on the ideal channel.
        let mut ideal: Vec<JohanssonColoring> = (0..n)
            .map(|v| JohanssonColoring::new(v, g.degree(v), 99))
            .collect();
        let tau = run_uniform_ideal(g, &mut ideal, 10_000).rounds;

        // The same algorithm under SINR via SRS.
        let mut nodes: Vec<JohanssonColoring> = (0..n)
            .map(|v| JohanssonColoring::new(v, g.degree(v), 99))
            .collect();
        let srs = simulate_uniform(g, &cfg, &schedule, &mut nodes, 10_000);
        assert!(srs.all_done && srs.is_faithful(), "{srs:?}");
        let colors: Vec<usize> = nodes.iter().map(|j| j.color().expect("decided")).collect();
        let proper = is_distance_coloring(&pts, &colors, cfg.r_t());
        let palette = colors.iter().copied().max().unwrap_or(0) + 1;

        // Native MW coloring for comparison.
        let native = inst.run_sinr(5, WakeupSchedule::Synchronous);

        report.push_row([
            n.to_string(),
            g.max_degree().to_string(),
            tau.to_string(),
            srs.slots.to_string(),
            colored.outcome.slots.to_string(),
            native.slots.to_string(),
            format!("{palette} (≤ Δ+1 = {})", g.max_degree() + 1),
            native.palette.to_string(),
            if proper { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.note(
        "The simulated classical algorithm produces a Δ+1-palette coloring \
         in a handful of rounds (SRS slots = τ·V ≪ setup), realizing the \
         paper's remark that simulation + palette-style algorithms shrink \
         the MW palette constants. Identical ideal and SRS executions \
         (same seeds, faithful delivery) make the two runs bit-comparable.",
    );
    report
}
