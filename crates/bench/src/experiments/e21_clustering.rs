//! E21 — the clustering stage as a standalone MIS primitive.
//!
//! The `A_0`/`C_0` phase of the algorithm elects a maximal independent
//! (dominating) set — the structure the paper's reference \[20] computes
//! in isolation. This experiment measures how early clustering completes
//! within a full coloring run, and the quality of the elected set
//! against a centralized greedy MIS.

use crate::report::{f2, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::mis::run_clustering;
use sinr_coloring::mw::MwConfig;
use sinr_geometry::packing::greedy_mis;
use sinr_model::SinrModel;
use sinr_radiosim::WakeupSchedule;

/// Runs E21.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 3 } else { 6 };
    let degrees: &[f64] = if quick { &[12.0] } else { &[8.0, 14.0, 22.0] };

    let mut report = ExpReport::new(
        "E21",
        "the clustering stage as a standalone SINR MIS",
        "§III: 'first, the algorithm attempts to compute an independent \
         set of the graph' — leaders form an MIS; ref [20] computes such \
         dominating sets under SINR as a problem of its own",
    )
    .headers([
        "Delta",
        "cluster slots",
        "full coloring slots",
        "cluster share",
        "|MIS|",
        "greedy |MIS|",
        "maximal independent",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 21_000 + deg as u64);
        let greedy = greedy_mis(&inst.graph).len();
        let results = par_seeds(seeds, |s| {
            let config = MwConfig::new(inst.params).with_seed(s);
            let mis = run_clustering(
                &inst.graph,
                SinrModel::new(inst.cfg),
                &config,
                WakeupSchedule::Synchronous,
            );
            let full = inst.run_sinr(s, WakeupSchedule::Synchronous);
            (mis, full.slots)
        });
        let all_good = results
            .iter()
            .all(|(m, _)| m.all_clustered && m.is_maximal_independent(&inst.graph));
        let mean = |f: &dyn Fn(&(sinr_coloring::mis::ClusteringOutcome, u64)) -> f64| -> f64 {
            results.iter().map(f).sum::<f64>() / results.len() as f64
        };
        let cluster_slots = mean(&|r| r.0.slots as f64);
        let full_slots = mean(&|r| r.1 as f64);
        let mis_size = mean(&|r| r.0.leaders.len() as f64);
        report.push_row([
            inst.graph.max_degree().to_string(),
            f2(cluster_slots),
            f2(full_slots),
            pct(cluster_slots / full_slots),
            f2(mis_size),
            greedy.to_string(),
            if all_good { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.note(
        "Clustering finishes in roughly the first quarter of the run (one \
         counter race, no per-color retries) and elects an MIS whose size \
         tracks the centralized greedy — usable on its own for backbone \
         formation at a fraction of the full coloring cost.",
    );
    report
}
