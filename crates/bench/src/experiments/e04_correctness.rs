//! E4 — Theorem 1: every color class `C_i` stays an independent set
//! throughout the execution, and the final coloring is proper, w.h.p.
//!
//! Audits *every* decision slot incrementally (not just the final state),
//! so transient violations would be caught even if later masked.

use crate::report::{pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::mw::{run_mw_observed, MwConfig, MwNode};
use sinr_coloring::verify::{distance_violations, incremental_independence_violations};
use sinr_model::SinrModel;
use sinr_radiosim::WakeupSchedule;

/// Per-run audit result.
#[derive(Debug, Clone, Copy)]
struct Audit {
    all_done: bool,
    transient_violations: usize,
    final_violations: usize,
}

fn audited_run(inst: &Instance, seed: u64) -> Audit {
    let positions = inst.graph.positions().to_vec();
    let r_t = inst.graph.radius();
    let mut colors: Vec<Option<usize>> = vec![None; inst.graph.len()];
    let mut transient = 0usize;
    let out = run_mw_observed(
        &inst.graph,
        SinrModel::new(inst.cfg),
        &MwConfig::new(inst.params).with_seed(seed),
        WakeupSchedule::Synchronous,
        |sim, view| {
            if view.newly_done.is_empty() {
                return;
            }
            for &v in view.newly_done {
                colors[v] = MwNode::color(sim.node(v));
            }
            transient +=
                incremental_independence_violations(&positions, &colors, view.newly_done, r_t)
                    .len();
        },
    );
    let final_violations = out
        .coloring
        .as_ref()
        .map(|c| distance_violations(&positions, c.as_slice(), r_t).len())
        .unwrap_or(0);
    Audit {
        all_done: out.all_done,
        transient_violations: transient,
        final_violations,
    }
}

/// Runs E4.
pub fn run(quick: bool) -> ExpReport {
    let seeds = if quick { 8 } else { 40 };
    let cases: &[(usize, f64)] = if quick {
        &[(64, 12.0)]
    } else {
        &[(64, 12.0), (256, 15.0)]
    };

    let mut report = ExpReport::new(
        "E4",
        "independence of color classes & properness (w.h.p.)",
        "Theorem 1: each C_i forms an independent set throughout the \
         execution with probability 1 − O(n^{2−c})",
    )
    .headers([
        "n",
        "deg",
        "runs",
        "clean runs",
        "violation rate",
        "transient pairs",
        "incomplete",
    ]);

    for &(n, deg) in cases {
        let inst = Instance::uniform(n, deg, 4000 + n as u64);
        let audits = par_seeds(seeds, |s| audited_run(&inst, s));
        let incomplete = audits.iter().filter(|a| !a.all_done).count();
        let dirty = audits
            .iter()
            .filter(|a| a.transient_violations > 0 || a.final_violations > 0)
            .count();
        let transient: usize = audits.iter().map(|a| a.transient_violations).sum();
        report.push_row([
            n.to_string(),
            format!("{deg}"),
            seeds.to_string(),
            format!("{}", seeds as usize - dirty),
            pct(dirty as f64 / seeds as f64),
            transient.to_string(),
            incomplete.to_string(),
        ]);
    }
    report.note(
        "With the practical constants the violation rate is ~0 at these \
         sizes; the paper's rigorous constants drive it to n^{-c}. E10/E11 \
         show the rate climbing when the constants are weakened.",
    );
    report
}
