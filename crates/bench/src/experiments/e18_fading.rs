//! E18 — robustness beyond the model: Rayleigh fading.
//!
//! The paper's analysis assumes deterministic path loss. Real channels
//! fade; this experiment reruns the coloring under increasingly severe
//! per-link exponential fading and measures the latency/correctness
//! penalty — how far outside its model the algorithm stays usable.

use crate::report::{f2, mean, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::verify::distance_violations;
use sinr_model::FadingSinrModel;
use sinr_radiosim::WakeupSchedule;

/// Runs E18.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 3 } else { 8 };
    let severities = [0.0, 0.25, 0.5, 0.75, 1.0];

    let inst = Instance::uniform(n, 12.0, 18_000);

    let mut report = ExpReport::new(
        "E18",
        "robustness under Rayleigh fading (outside the paper's model)",
        "§II assumes deterministic path loss P/δ^α; fading randomizes every \
         reception — an unmodeled stress the retry structure absorbs",
    )
    .headers([
        "fading severity",
        "mean latency",
        "latency vs no fading",
        "violation rate",
        "incomplete",
    ]);

    let mut baseline = None;
    for &severity in &severities {
        let results = par_seeds(seeds, |s| {
            let out = inst.run_with(
                FadingSinrModel::new(inst.cfg, 777 ^ s, severity),
                s,
                WakeupSchedule::Synchronous,
            );
            let violated = out
                .coloring
                .as_ref()
                .map(|c| {
                    !distance_violations(inst.graph.positions(), c.as_slice(), inst.graph.radius())
                        .is_empty()
                })
                .unwrap_or(false);
            (out.all_done, out.max_latency, violated)
        });
        let incomplete = results.iter().filter(|r| !r.0).count();
        let lat = mean(
            &results
                .iter()
                .filter_map(|r| r.1)
                .map(|l| l as f64)
                .collect::<Vec<_>>(),
        );
        let violations = results.iter().filter(|r| r.2).count();
        if severity == 0.0 {
            baseline = Some(lat);
        }
        report.push_row([
            format!("{severity}"),
            f2(lat),
            f2(lat / baseline.unwrap_or(lat)),
            pct(violations as f64 / seeds as f64),
            incomplete.to_string(),
        ]);
    }
    report.note(
        "Every message in the protocol is retried with fresh randomness, \
         and the default windows carry enough margin that full Rayleigh \
         fading is absorbed with no measurable latency or correctness \
         penalty at these sizes. The margin is not free — it is priced \
         into γ/σ (E11); `MwParams::tuned` exposes the tradeoff, and the \
         `fading_robustness` integration test shows where thinner margins \
         start failing.",
    );
    report
}
