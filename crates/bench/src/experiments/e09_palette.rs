//! E9 — the §V palette reduction brings MW colorings down to `Δ+1` colors
//! while preserving properness.

use crate::report::ExpReport;
use crate::workload::Instance;
use sinr_coloring::palette::{reduce_palette, reduction_slot_cost};
use sinr_radiosim::WakeupSchedule;

/// Runs E9.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 96 } else { 192 };
    let degrees: &[f64] = if quick {
        &[8.0, 16.0]
    } else {
        &[6.0, 10.0, 14.0, 20.0, 26.0]
    };

    let mut report = ExpReport::new(
        "E9",
        "palette reduction to Δ+1 colors",
        "§V: starting from a (d, O(Δ))-coloring, a standard \
         palette-reduction yields a (1, Δ+1)-coloring in O(Δ log n) time",
    )
    .headers([
        "Delta",
        "MW palette",
        "MW colors",
        "reduced palette",
        "Δ+1",
        "proper",
        "extra slots (2V)",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 9000 + deg as u64);
        let out = inst.run_sinr(9, WakeupSchedule::Synchronous);
        let Some(coloring) = out.coloring else {
            report.push_row([
                "-".to_string(),
                "incomplete".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let delta = inst.graph.max_degree();
        let reduced = reduce_palette(&inst.graph, &coloring);
        assert!(reduced.is_proper(&inst.graph));
        assert!(reduced.palette_size() <= delta + 1);
        report.push_row([
            delta.to_string(),
            out.palette.to_string(),
            out.colors_used.to_string(),
            reduced.palette_size().to_string(),
            (delta + 1).to_string(),
            "yes".to_string(),
            reduction_slot_cost(out.colors_used).to_string(),
        ]);
    }
    report.note(
        "The reduction always lands within Δ+1 colors and stays proper; \
         run over the Theorem-3 TDMA schedule it costs 2 slots per old \
         color, i.e. O(Δ) frames — the O(Δ log n) total of §V.",
    );
    report
}
