//! E16 — Corollary 1's two general-model variants: bundled broadcasts
//! (`O(Δ(log n + τ))` slots, `O(sΔ log n)`-bit messages) vs per-neighbor
//! unicast (`O(Δ² τ)` slots, `O(s log n)`-bit messages).

use crate::report::{f2, ExpReport};
use crate::workload::default_cfg;
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::EchoDegrees;
use sinr_mac::srs::{simulate_general_bundled, simulate_general_unicast};
use sinr_mac::tdma::TdmaSchedule;
use sinr_radiosim::WakeupSchedule;

/// Runs E16.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let sizes: &[usize] = if quick { &[24] } else { &[24, 48, 96] };

    let mut report = ExpReport::new(
        "E16",
        "general-model SRS: bundled vs unicast",
        "Corollary 1 (second part): a general algorithm takes \
         O(Δ(log n+τ)) slots with O(sΔ log n)-bit messages, or \
         O(Δ log n + Δ²τ) slots with O(s log n)-bit messages",
    )
    .headers([
        "n",
        "Delta",
        "frame V",
        "bundled slots",
        "unicast slots",
        "unicast/bundled",
        "bundled bits",
        "unicast bits",
        "both faithful",
    ]);

    for &n in sizes {
        let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 9.0, 1600 + n as u64);
        let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
        let colored = color_at_distance(
            &pts,
            &cfg,
            theorem3_distance_factor(&cfg),
            16,
            WakeupSchedule::Synchronous,
        );
        let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
        let mk = || -> Vec<EchoDegrees> {
            (0..n)
                .map(|v| EchoDegrees::new(v, graph.neighbors(v).to_vec()))
                .collect()
        };
        let mut a = mk();
        let bundled = simulate_general_bundled(&graph, &cfg, &schedule, &mut a, 10);
        let mut b = mk();
        let unicast = simulate_general_unicast(&graph, &cfg, &schedule, &mut b, 10);
        assert!(bundled.is_faithful() && unicast.is_faithful());
        // Both executions must produce identical node states.
        for v in 0..n {
            assert_eq!(a[v].received, b[v].received, "node {v} diverged");
        }
        // Corollary-1 message sizes for payloads of s bits: a bundled
        // broadcast carries up to Δ addressed entries of (log n + s) bits;
        // a unicast message carries one. Use s = 32, log n rounded up.
        let s_bits = 32u64;
        let entry = (n as f64).log2().ceil() as u64 + s_bits;
        let bundled_bits = bundled.transmissions * graph.max_degree() as u64 * entry;
        let unicast_bits = unicast.transmissions * entry;
        report.push_row([
            n.to_string(),
            graph.max_degree().to_string(),
            schedule.frame_len().to_string(),
            bundled.slots.to_string(),
            unicast.slots.to_string(),
            f2(unicast.slots as f64 / bundled.slots as f64),
            bundled_bits.to_string(),
            unicast_bits.to_string(),
            "yes".to_string(),
        ]);
    }
    report.note(
        "The unicast variant pays roughly a Δ-factor more slots per round \
         (one frame per pending message) in exchange for constant-size \
         payloads — exactly the message-size/time tradeoff Corollary 1 \
         states. The bit columns price it: bundled moves the Δ factor \
         from slots into per-message size (upper-bounded here at Δ \
         entries x (log n + s) bits), so total bandwidth is comparable \
         while wall-clock differs by Δ.",
    );
    report
}
