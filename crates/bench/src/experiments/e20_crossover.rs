//! E20 — when is building the coloring worth it? Setup-cost amortization
//! against contention (the paper's implicit economic argument).
//!
//! The job: `R` rounds of "every node broadcasts one message to all its
//! neighbors". Contention (slotted ALOHA at its best probability, the
//! paper's ref.-21-style unstructured local broadcast) pays no setup but a
//! large per-round cost with no guarantee; the Theorem-3 TDMA pays the
//! `O(Δ log n)` coloring once and `V` slots per round forever after. The
//! crossover round count `R*` is where the coloring starts winning.

use crate::report::{f2, mean, ExpReport};
use crate::workload::{default_cfg, par_seeds};
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::aloha::aloha_until_broadcast;
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_radiosim::WakeupSchedule;

/// Runs E20.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let n = if quick { 60 } else { 100 };
    let seeds = if quick { 3 } else { 6 };
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 2020);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    let delta = graph.max_degree();

    // TDMA side: one-time setup + V per round, guaranteed.
    let colored = color_at_distance(
        &pts,
        &cfg,
        theorem3_distance_factor(&cfg),
        20,
        WakeupSchedule::Synchronous,
    );
    let setup = colored.outcome.slots;
    let schedule = TdmaSchedule::from_colors(colored.colors().expect("setup completed"));
    let v = schedule.frame_len() as u64;
    assert!(broadcast_audit(&graph, &cfg, &schedule).is_interference_free());

    // Contention side: measured slots for one all-broadcast round.
    let p = 1.0 / (2.0 * delta as f64);
    let per_round = mean(
        &par_seeds(seeds, |s| {
            aloha_until_broadcast(&graph, &cfg, p, 3_000_000, 4_000 + s)
        })
        .iter()
        .filter_map(|r| r.makespan())
        .map(|m| (m + 1) as f64)
        .collect::<Vec<_>>(),
    );

    let mut report = ExpReport::new(
        "E20",
        "amortizing the coloring: TDMA setup vs contention per-round cost",
        "§I/§V: the O(Δ log n) coloring is a one-time investment; every \
         later broadcast round costs V = O(Δ) slots instead of a contention \
         makespan",
    )
    .headers([
        "rounds R",
        "ALOHA total",
        "TDMA total (setup + R·V)",
        "TDMA/ALOHA",
    ]);

    for &r in &[1u64, 5, 20, 100, 500] {
        let aloha_total = per_round * r as f64;
        let tdma_total = (setup + r * v) as f64;
        report.push_row([
            r.to_string(),
            f2(aloha_total),
            f2(tdma_total),
            f2(tdma_total / aloha_total),
        ]);
    }
    let crossover = if per_round > v as f64 {
        setup as f64 / (per_round - v as f64)
    } else {
        f64::INFINITY
    };
    report.note(format!(
        "n = {n}, Δ = {delta}: setup = {setup} slots, V = {v}, measured \
         ALOHA round ≈ {per_round:.0} slots ⇒ crossover at R* ≈ \
         {crossover:.0} rounds — minutes of operation for a typical MAC, \
         after which every round is ~{:.0}x cheaper. TDMA is also \
         deterministic, while the ALOHA makespan is a heavy-tailed maximum \
         with no delivery guarantee.",
        per_round / v as f64
    ));
    report
}
