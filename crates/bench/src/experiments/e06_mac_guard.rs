//! E6 — Theorem 3: a `(d+1, V)`-coloring schedules an interference-free
//! TDMA MAC layer; smaller guard distances leak interference.
//!
//! Sweeps the distance factor of the coloring from 1 (plain proper
//! coloring) past the Theorem-3 threshold `d+1` and audits one full TDMA
//! frame under SINR with *every* node broadcasting.

use crate::report::{f2, pct, ExpReport};
use crate::workload::default_cfg;
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_radiosim::WakeupSchedule;

/// Runs E6.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let n = if quick { 60 } else { 120 };
    let d1 = theorem3_distance_factor(&cfg);
    let factors: Vec<f64> = if quick {
        vec![1.0, d1]
    } else {
        vec![1.0, 2.0, 3.0, d1, d1 + 1.0]
    };

    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 606);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());

    let mut report = ExpReport::new(
        "E6",
        "TDMA guard distance sweep",
        "Theorem 3: for d = (32·(α−1)/(α−2)·β)^{1/α} (≈2.91 at α=4, β=1.5), \
         a (d+1, V)-coloring lets every node reach all neighbors in its \
         slot; distance-1/2 colorings do not suffice under SINR",
    )
    .headers([
        "guard factor",
        "frame V",
        "link success",
        "full broadcasts",
        "interference-free",
    ]);

    for &factor in &factors {
        let result = color_at_distance(&pts, &cfg, factor, 66, WakeupSchedule::Synchronous);
        let Some(colors) = result.colors() else {
            report.push_row([
                f2(factor),
                "-".into(),
                "run incomplete".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let schedule = TdmaSchedule::from_colors(colors);
        let audit = broadcast_audit(&graph, &cfg, &schedule);
        let tag = if (factor - d1).abs() < 1e-9 {
            format!("{} (= d+1)", f2(factor))
        } else {
            f2(factor)
        };
        report.push_row([
            tag,
            schedule.frame_len().to_string(),
            pct(audit.link_success_rate()),
            format!("{}/{}", audit.full_broadcasts, audit.broadcasters),
            if audit.is_interference_free() {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    report.note(
        "Success climbs with the guard distance and reaches 100% at the \
         Theorem-3 factor d+1 — the crossover the theorem predicts. The \
         frame length (number of colors) grows ~d², the O(d²Δ) cost of §V.",
    );
    report
}
