//! E5 — the cost of the SINR model relative to the graph-based model the
//! original MW analysis assumed (and an ideal channel floor).
//!
//! The paper's headline: "the harsh SINR physical constraints do *not*
//! significantly affect the complexity" — same algorithm, same asymptotics,
//! only constant-factor overhead.

use crate::report::{f2, mean, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_model::{GraphModel, IdealModel, SinrModel};
use sinr_radiosim::WakeupSchedule;

/// Runs E5.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 3 } else { 6 };
    let degrees: &[f64] = if quick { &[10.0] } else { &[8.0, 12.0, 18.0] };

    let mut report = ExpReport::new(
        "E5",
        "SINR vs graph-based vs ideal channel",
        "§I/§IV: the SINR constraints leave the MW algorithm's complexity \
         essentially unchanged (constant-factor overhead over the \
         graph-based model)",
    )
    .headers([
        "Delta",
        "sinr lat",
        "graph lat",
        "ideal lat",
        "sinr/graph",
        "sinr/ideal",
    ]);

    for &deg in degrees {
        let inst = Instance::uniform(n, deg, 5000 + deg as u64);
        let lat = |outs: &[sinr_coloring::MwOutcome]| -> f64 {
            mean(
                &outs
                    .iter()
                    .filter_map(|o| o.max_latency)
                    .map(|l| l as f64)
                    .collect::<Vec<_>>(),
            )
        };
        let sinr = lat(&par_seeds(seeds, |s| {
            inst.run_with(SinrModel::new(inst.cfg), s, WakeupSchedule::Synchronous)
        }));
        let graph = lat(&par_seeds(seeds, |s| {
            inst.run_with(GraphModel::new(), s, WakeupSchedule::Synchronous)
        }));
        let ideal = lat(&par_seeds(seeds, |s| {
            inst.run_with(IdealModel::new(), s, WakeupSchedule::Synchronous)
        }));
        report.push_row([
            inst.graph.max_degree().to_string(),
            f2(sinr),
            f2(graph),
            f2(ideal),
            f2(sinr / graph),
            f2(sinr / ideal),
        ]);
    }
    report.note(
        "The SINR/graph ratio is a small constant (~1.0–1.5): the physical \
         model costs only constants, as the paper proves.",
    );
    report
}
