//! E8 — Lemma 3: the probabilistic interference from outside an exclusion
//! disk is bounded by the ring-sum formula, and at radius `R_I` by the
//! budget `P/(2ρβR_T^α)`.
//!
//! During live MW runs, samples the exact `Ψ_u^{v∉B(u,r)}` (using every
//! node's *current* send probability) for several exclusion radii and
//! compares against the Lemma-3 ring bound
//! `48·P·(α−1)/(α−2)·r^{2−α}/R_T²`.

use crate::report::{f3, ExpReport};
use crate::workload::Instance;
use sinr_coloring::mw::{run_mw_observed, MwConfig, MwNode};
use sinr_model::interference::psi_outside;
use sinr_model::SinrModel;
use sinr_radiosim::WakeupSchedule;

/// The generalized Lemma-3 ring bound for exclusion radius `r` (the proof
/// instantiates it at `r = R_I`).
fn ring_bound(cfg: &sinr_model::SinrConfig, r: f64) -> f64 {
    48.0 * cfg.power() * (cfg.alpha() - 1.0) / (cfg.alpha() - 2.0) * r.powf(2.0 - cfg.alpha())
        / (cfg.r_t() * cfg.r_t())
}

/// Runs E8.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 100 } else { 256 };
    let inst = Instance::uniform(n, 15.0, 808);
    let cfg = inst.cfg;
    let radii = [2.0, 4.0, 8.0, 16.0];
    let sample_every = 50u64;

    // max observed Ψ per radius, across all sampled slots and nodes.
    let mut max_psi = [0.0f64; 4];
    let positions = inst.graph.positions().to_vec();
    let _ = run_mw_observed(
        &inst.graph,
        SinrModel::new(cfg),
        &MwConfig::new(inst.params).with_seed(0),
        WakeupSchedule::Synchronous,
        |sim, view| {
            if view.slot % sample_every != 0 {
                return;
            }
            let probs: Vec<f64> = sim.nodes().iter().map(MwNode::send_probability).collect();
            // Sample every 8th node to keep the audit cheap.
            for u in (0..positions.len()).step_by(8) {
                for (i, &r) in radii.iter().enumerate() {
                    let psi = psi_outside(&cfg, &positions, &probs, u, r);
                    if psi > max_psi[i] {
                        max_psi[i] = psi;
                    }
                }
            }
        },
    );

    let mut report = ExpReport::new(
        "E8",
        "probabilistic interference vs the Lemma-3 bound",
        "Lemma 3: Ψ_u^{v∉I_u} ≤ P/(2ρβR_T^α); the proof's ring sum bounds \
         the interference from outside radius r by 48P(α−1)/(α−2)·r^{2−α}/R_T²",
    )
    .headers([
        "exclusion r",
        "max observed Psi",
        "ring bound",
        "observed/bound",
    ]);

    for (i, &r) in radii.iter().enumerate() {
        let bound = ring_bound(&cfg, r);
        assert!(
            max_psi[i] <= bound,
            "Lemma 3 ring bound violated at r={r}: {} > {bound}",
            max_psi[i]
        );
        report.push_row([
            format!("{r}"),
            f3(max_psi[i]),
            f3(bound),
            f3(max_psi[i] / bound),
        ]);
    }
    report.note(format!(
        "Budget at r = R_I = {:.1}: {:.4} (= P/(2ρβR_T^α) = {:.4}); the \
         deployment area is smaller than R_I here, so interference from \
         outside I_u is strictly below budget — the regime Lemma 1 needs.",
        cfg.r_i(),
        ring_bound(&cfg, cfg.r_i()),
        cfg.lemma3_budget(),
    ));
    report.note(
        "Every sampled slot of the live run respects the ring bound at all \
         radii (the assertion would abort otherwise).",
    );
    report
}
