//! E7 — Corollary 1: simulating uniform message-passing algorithms under
//! SINR in `O(Δ(log n + τ))` slots.
//!
//! Pipeline: color at guard distance `d+1` (the `O(Δ log n)` setup), build
//! the TDMA schedule, then run flooding through the Single Round
//! Simulation and compare total slots against `Δ·(ln n + τ)`.

use crate::report::{f2, ExpReport};
use crate::workload::default_cfg;
use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::{run_uniform_ideal, Flooding};
use sinr_mac::srs::simulate_uniform;
use sinr_mac::tdma::TdmaSchedule;
use sinr_radiosim::WakeupSchedule;

/// Runs E7.
pub fn run(quick: bool) -> ExpReport {
    let cfg = default_cfg();
    let sizes: &[usize] = if quick { &[32, 64] } else { &[32, 64, 128] };
    let d1 = theorem3_distance_factor(&cfg);

    let mut report = ExpReport::new(
        "E7",
        "single-round simulation of message passing (flooding)",
        "Corollary 1: any uniform algorithm running in τ rounds can be \
         simulated under SINR in O(Δ(log n + τ)) slots with high probability",
    )
    .headers([
        "n",
        "Delta",
        "Delta' (scaled)",
        "tau (ideal rounds)",
        "frame V",
        "srs slots",
        "coloring slots",
        "total",
        "total/(Δ'ln n+Δτ)",
        "faithful",
    ]);

    for &n in sizes {
        let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 9.0, 700 + n as u64);
        let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
        if !graph.is_connected() {
            report.push_row(vec!["disconnected".to_string(); 10]);
            continue;
        }
        let delta = graph.max_degree() as f64;

        // Ideal reference: τ rounds.
        let mut ideal: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
        let tau = run_uniform_ideal(&graph, &mut ideal, 10 * n).rounds;

        // SINR pipeline.
        let colored = color_at_distance(&pts, &cfg, d1, 77, WakeupSchedule::Synchronous);
        let coloring_slots = colored.outcome.slots;
        let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
        let mut nodes: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
        let srs = simulate_uniform(&graph, &cfg, &schedule, &mut nodes, 10 * n);

        let total = coloring_slots + srs.slots;
        // Corollary 1's constant hides the coloring of G^{d+1}, whose
        // maximum degree Δ' = O(d²Δ) drives the setup term.
        let delta_scaled = colored.graph_d.max_degree() as f64;
        let denom = delta_scaled * (n as f64).ln() + delta * tau as f64;
        report.push_row([
            n.to_string(),
            format!("{delta}"),
            format!("{delta_scaled}"),
            tau.to_string(),
            schedule.frame_len().to_string(),
            srs.slots.to_string(),
            coloring_slots.to_string(),
            total.to_string(),
            f2(total as f64 / denom),
            if srs.is_faithful() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.note(
        "SRS is lock-step faithful (Theorem 3 guarantees every delivery), \
         uses exactly τ·V slots, and the normalized total stays a constant \
         multiple of Δ(ln n + τ) — the Corollary-1 bound. The constant is \
         dominated by the one-time coloring setup.",
    );
    report
}
