//! E12 — asynchronous spontaneous wake-up (§II model) does not break the
//! algorithm: time is measured per node from its own wake-up.

use crate::report::{f2, mean, pct, ExpReport};
use crate::workload::{par_seeds, Instance};
use sinr_coloring::verify::distance_violations;
use sinr_radiosim::WakeupSchedule;

/// Runs E12.
pub fn run(quick: bool) -> ExpReport {
    let n = if quick { 64 } else { 128 };
    let seeds = if quick { 3 } else { 8 };
    let inst = Instance::uniform(n, 12.0, 12_000);
    let window = 4 * inst.params.listen_slots();
    let schedules = [
        ("synchronous", WakeupSchedule::Synchronous),
        ("uniform random", WakeupSchedule::UniformRandom { window }),
        ("staggered", WakeupSchedule::Staggered { step: 11 }),
    ];

    let mut report = ExpReport::new(
        "E12",
        "asynchronous wake-up robustness",
        "§II: nodes wake up asynchronously and spontaneously; the time \
         bound counts slots after each node's own wake-up",
    )
    .headers([
        "wakeup",
        "max latency",
        "mean latency",
        "violation rate",
        "incomplete",
    ]);

    for (name, schedule) in schedules {
        let results = par_seeds(seeds, |s| {
            let out = inst.run_sinr(s, schedule);
            let violated = out
                .coloring
                .as_ref()
                .map(|c| {
                    !distance_violations(inst.graph.positions(), c.as_slice(), inst.graph.radius())
                        .is_empty()
                })
                .unwrap_or(false);
            (out.all_done, out.max_latency, out.mean_latency, violated)
        });
        let incomplete = results.iter().filter(|r| !r.0).count();
        let max_lat: Vec<f64> = results
            .iter()
            .filter_map(|r| r.1)
            .map(|l| l as f64)
            .collect();
        let mean_lat: Vec<f64> = results.iter().filter_map(|r| r.2).collect();
        let violations = results.iter().filter(|r| r.3).count();
        report.push_row([
            name.to_string(),
            f2(mean(&max_lat)),
            f2(mean(&mean_lat)),
            pct(violations as f64 / seeds as f64),
            incomplete.to_string(),
        ]);
    }
    report.note(
        "Per-node latency (wake → decide) stays in the same band under all \
         three wake-up patterns: the algorithm needs no global start signal.",
    );
    report
}
