//! Small statistics toolkit for the experiment harness: summaries,
//! percentiles, and least-squares fits used to quantify the `O(Δ log n)`
//! shape claims (slope + R² instead of eyeballing a flat column).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (mean of middle pair for even n).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a sample; `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 100) by nearest-rank; `None` for an
/// empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// A least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 = perfect linear fit).
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs; `None` for fewer than two
/// points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Least-squares fit through the origin, `y ≈ slope·x`, with R² measured
/// against the zero-intercept model. Right for scaling laws like
/// `latency ≈ c·Δ ln n` where a zero input must give zero output.
pub fn proportional_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.is_empty() {
        return None;
    }
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = sxy / sxx;
    let my = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - slope * p.0;
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit {
        slope,
        intercept: 0.0,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_singleton_and_empty() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn median_of_odd_sample() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn percentiles() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let pts = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 4.0)];
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.0);
    }

    #[test]
    fn degenerate_fits_are_none() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(proportional_fit(&[]).is_none());
        assert!(proportional_fit(&[(0.0, 1.0)]).is_none());
    }

    #[test]
    fn proportional_fit_through_origin() {
        let pts: Vec<(f64, f64)> = (1..8).map(|i| (i as f64, 5.0 * i as f64)).collect();
        let fit = proportional_fit(&pts).unwrap();
        assert!((fit.slope - 5.0).abs() < 1e-12);
        assert_eq!(fit.intercept, 0.0);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }
}
