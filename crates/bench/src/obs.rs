//! Observed experiment runs: the machine-readable obs section attached to
//! experiment reports (`ExpReport::obs`) and dumped as `OBS_<id>.json` by
//! the `experiments` binary (schema `experiment_obs`, `docs/OBS_SCHEMA.md`).

use crate::workload::Instance;
use sinr_coloring::mw::{run_mw_recorded, MwConfig, MwProbeConfig};
use sinr_model::FastSinrModel;
use sinr_obs::{keys, FullRecorder, Stopwatch, WallSpan, OBS_SCHEMA_VERSION};
use sinr_radiosim::WakeupSchedule;

/// Runs one fully observed coloring of `inst` (fast SINR model, probes at
/// stride 1) and renders the `experiment_obs` JSON document: instance
/// shape, run outcome, probe verdicts, event accounting, and the complete
/// metrics registry.
pub fn recorded_instance_report(inst: &Instance, seed: u64) -> String {
    let mut rec = FullRecorder::new();
    let out = run_mw_recorded(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        &MwConfig::new(inst.params).with_seed(seed),
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        &mut rec,
    );

    // Exported (not live) registry: carries the obs.* retention counters.
    let reg = rec.export_registry();
    let probe = |key: &str| reg.counter(key).unwrap_or(0);
    format!(
        "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"experiment_obs\",\
         \"instance\":{{\"n\":{},\"max_degree\":{},\"seed\":{seed}}},\
         \"run\":{{\"all_done\":{},\"slots\":{},\"colors_used\":{},\"palette\":{}}},\
         \"probes\":{{\"thm1_violations\":{},\"lemma4_violations\":{},\
         \"lemma6_violations\":{},\"lemma7_violations\":{}}},\
         \"events\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}},\
         \"metrics\":{}}}",
        inst.graph.len(),
        inst.graph.max_degree(),
        out.all_done,
        out.slots,
        out.colors_used,
        out.palette,
        probe(keys::PROBE_THM1_VIOLATIONS),
        probe(keys::PROBE_LEMMA4_VIOLATIONS),
        probe(keys::PROBE_LEMMA6_VIOLATIONS),
        probe(keys::PROBE_LEMMA7_VIOLATIONS),
        rec.events_recorded(),
        rec.events_dropped(),
        rec.ring_capacity(),
        reg.to_json(),
    )
}

/// Runs one fully observed coloring of `inst` and renders its span
/// timeline as Chrome trace-event JSON with a wall-clock overlay.
///
/// The slot-time process (pid 0) is deterministic — byte-identical for
/// every thread count and machine. The overlay (pid 1) is the one
/// sanctioned wall-clock reading ([`Stopwatch`], bench binaries only) and
/// exists purely for eyeballing simulated-vs-real time in Perfetto.
pub fn recorded_instance_trace(inst: &Instance, seed: u64) -> String {
    // Big span ring: one span per (node, phase stay) plus three per slot.
    let mut rec = FullRecorder::with_ring_capacity(1 << 20);
    let sw = Stopwatch::start();
    let out = run_mw_recorded(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        &MwConfig::new(inst.params).with_seed(seed),
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        &mut rec,
    );
    let wall = [WallSpan {
        name: format!(
            "run_mw_recorded n={} slots={} done={}",
            inst.graph.len(),
            out.slots,
            out.all_done
        ),
        start_us: 0.0,
        dur_us: sw.elapsed_ns() as f64 / 1_000.0,
    }];
    rec.trace_json_with_wall(&wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_covers_run_probes_and_metrics() {
        let inst = Instance::uniform(20, 6.0, 7);
        let doc = recorded_instance_report(&inst, 0);
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"experiment_obs\","));
        assert!(doc.contains("\"instance\":{\"n\":20,"));
        assert!(doc.contains("\"thm1_violations\":0"));
        assert!(doc.contains("\"sim.slots\""));
        assert!(doc.contains("\"obs.events.dropped\""));
        assert!(doc.ends_with('}'));
    }

    #[test]
    fn instance_trace_has_slot_time_and_wall_clock_processes() {
        let inst = Instance::uniform(20, 6.0, 7);
        let doc = recorded_instance_trace(&inst, 0);
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"trace_events\""));
        assert!(doc.contains("\"slot-time\""));
        assert!(doc.contains("\"wall-clock\""));
        assert!(doc.contains("\"name\":\"resolve\""));
        assert!(doc.contains("run_mw_recorded n=20"));
    }
}
