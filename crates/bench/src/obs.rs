//! Observed experiment runs: the machine-readable obs section attached to
//! experiment reports (`ExpReport::obs`) and dumped as `OBS_<id>.json` by
//! the `experiments` binary (schema `experiment_obs`, `docs/OBS_SCHEMA.md`).

use crate::workload::Instance;
use sinr_coloring::mw::{run_mw_recorded, MwConfig, MwProbeConfig};
use sinr_model::FastSinrModel;
use sinr_obs::{keys, FullRecorder, OBS_SCHEMA_VERSION};
use sinr_radiosim::WakeupSchedule;

/// Runs one fully observed coloring of `inst` (fast SINR model, probes at
/// stride 1) and renders the `experiment_obs` JSON document: instance
/// shape, run outcome, probe verdicts, event accounting, and the complete
/// metrics registry.
pub fn recorded_instance_report(inst: &Instance, seed: u64) -> String {
    let mut rec = FullRecorder::new();
    let out = run_mw_recorded(
        &inst.graph,
        FastSinrModel::new(inst.cfg),
        &MwConfig::new(inst.params).with_seed(seed),
        WakeupSchedule::Synchronous,
        MwProbeConfig::default(),
        &mut rec,
    );

    let reg = rec.registry();
    let probe = |key: &str| reg.counter(key).unwrap_or(0);
    format!(
        "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"experiment_obs\",\
         \"instance\":{{\"n\":{},\"max_degree\":{},\"seed\":{seed}}},\
         \"run\":{{\"all_done\":{},\"slots\":{},\"colors_used\":{},\"palette\":{}}},\
         \"probes\":{{\"thm1_violations\":{},\"lemma4_violations\":{},\
         \"lemma6_violations\":{},\"lemma7_violations\":{}}},\
         \"events\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}},\
         \"metrics\":{}}}",
        inst.graph.len(),
        inst.graph.max_degree(),
        out.all_done,
        out.slots,
        out.colors_used,
        out.palette,
        probe(keys::PROBE_THM1_VIOLATIONS),
        probe(keys::PROBE_LEMMA4_VIOLATIONS),
        probe(keys::PROBE_LEMMA6_VIOLATIONS),
        probe(keys::PROBE_LEMMA7_VIOLATIONS),
        rec.events_recorded(),
        rec.events_dropped(),
        rec.ring_capacity(),
        reg.to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_covers_run_probes_and_metrics() {
        let inst = Instance::uniform(20, 6.0, 7);
        let doc = recorded_instance_report(&inst, 0);
        assert!(doc.starts_with("{\"schema_version\":1,\"kind\":\"experiment_obs\","));
        assert!(doc.contains("\"instance\":{\"n\":20,"));
        assert!(doc.contains("\"thm1_violations\":0"));
        assert!(doc.contains("\"sim.slots\""));
        assert!(doc.ends_with('}'));
    }
}
