//! Tabular experiment reports.

use sinr_obs::json::push_str_escaped;
use sinr_obs::OBS_SCHEMA_VERSION;
use std::fmt;

/// A rendered experiment: identifier, the paper claim it validates, a
/// table of measurements, and free-form notes.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment id, e.g. `"E1"`.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The paper claim being validated (with its reference).
    pub claim: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes appended below the table.
    pub notes: Vec<String>,
    /// Machine-readable observability section (a pre-rendered JSON
    /// document, schema `experiment_obs` in `docs/OBS_SCHEMA.md`), when
    /// the experiment ran an observed instance.
    pub obs: Option<String>,
}

impl ExpReport {
    /// Creates an empty report shell.
    pub fn new(id: &'static str, title: &'static str, claim: &'static str) -> Self {
        ExpReport {
            id,
            title,
            claim,
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            obs: None,
        }
    }

    /// Sets the column headers.
    pub fn headers<I: IntoIterator<Item = S>, S: Into<String>>(mut self, headers: I) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends an interpretation note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        s.push_str(&format!("*Paper claim:* {}\n\n", self.claim));
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            s.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            s.push_str(&format!("\n> {}\n", note));
        }
        s
    }

    /// Renders the whole report as one JSON document (schema
    /// `experiment_report`, `docs/OBS_SCHEMA.md`). The `obs` section, when
    /// present, is embedded verbatim — it is already JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"experiment_report\",\"id\":"
        ));
        push_str_escaped(&mut s, self.id);
        s.push_str(",\"title\":");
        push_str_escaped(&mut s, self.title);
        s.push_str(",\"claim\":");
        push_str_escaped(&mut s, self.claim);
        let push_list = |s: &mut String, name: &str, items: &[String]| {
            s.push_str(&format!(",\"{name}\":["));
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_str_escaped(s, item);
            }
            s.push(']');
        };
        push_list(&mut s, "headers", &self.headers);
        s.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                push_str_escaped(&mut s, cell);
            }
            s.push(']');
        }
        s.push(']');
        push_list(&mut s, "notes", &self.notes);
        s.push_str(",\"obs\":");
        match &self.obs {
            Some(doc) => s.push_str(doc),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

impl fmt::Display for ExpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Aligned plain-text rendering for terminals.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "claim: {}", self.claim)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExpReport {
        let mut r = ExpReport::new("E0", "demo", "x grows").headers(["a", "bb"]);
        r.push_row(["1", "2"]);
        r.push_row(["30", "4"]);
        r.note("fine");
        r
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 30 | 4 |"));
        assert!(md.contains("> fine"));
    }

    #[test]
    fn display_aligns_columns() {
        let text = format!("{}", sample());
        assert!(text.contains("E0"));
        assert!(text.contains("30"));
        assert!(text.contains("note: fine"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = ExpReport::new("E0", "demo", "c").headers(["a"]);
        r.push_row(["1", "2"]);
    }

    #[test]
    fn json_rendering_escapes_and_embeds_obs() {
        let mut r = sample();
        r.note("has \"quotes\" inside");
        r.obs = Some("{\"schema_version\":2,\"kind\":\"experiment_obs\"}".to_string());
        let json = r.to_json();
        assert!(
            json.starts_with("{\"schema_version\":2,\"kind\":\"experiment_report\",\"id\":\"E0\"")
        );
        assert!(json.contains("\"headers\":[\"a\",\"bb\"]"));
        assert!(json.contains("\"rows\":[[\"1\",\"2\"],[\"30\",\"4\"]]"));
        assert!(json.contains("has \\\"quotes\\\" inside"));
        assert!(json.contains("\"obs\":{\"schema_version\":2,\"kind\":\"experiment_obs\"}"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn json_obs_defaults_to_null() {
        assert!(sample().to_json().contains("\"obs\":null"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // rounds toward nearest
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
