//! Experiment harness regenerating every validated claim of the paper.
//!
//! The paper is a theory paper with no empirical tables; DESIGN.md §4 maps
//! each theorem/lemma/claim to an experiment E1–E21. Each experiment module
//! produces an [`ExpReport`] (a printable table plus the paper's claim),
//! and the `experiments` binary runs any subset:
//!
//! ```text
//! cargo run --release -p sinr-bench --bin experiments -- all
//! cargo run --release -p sinr-bench --bin experiments -- e1 e3 --quick
//! ```
//!
//! Criterion wall-time benches for the underlying machinery live in
//! `benches/`.

pub mod experiments;
pub mod obs;
pub mod report;
pub mod stats;
pub mod workload;

pub use report::ExpReport;
