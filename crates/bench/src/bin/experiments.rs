//! CLI entry point for the experiment suite.
//!
//! ```text
//! experiments [IDS...] [--quick] [--markdown]
//!
//!   IDS        experiment ids (e1..e21) or `all` (default: all)
//!   --quick    reduced sizes/seeds
//!   --markdown emit GitHub-flavored markdown instead of aligned text
//! ```

use sinr_bench::experiments::{run_by_id, ALL};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut unknown = Vec::new();
    for id in &ids {
        let start = Instant::now();
        match run_by_id(id, quick) {
            Some(report) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{report}");
                }
                eprintln!("[{} finished in {:.1?}]", id, start.elapsed());
                println!();
            }
            None => unknown.push(id.clone()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment ids: {} (valid: e1..e21, all)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
