//! CLI entry point for the experiment suite.
//!
//! ```text
//! experiments [IDS...] [--quick] [--markdown] [--threads N]
//!
//!   IDS          experiment ids (e1..e21) or `all` (default: all)
//!   --quick      reduced sizes/seeds
//!   --markdown   emit GitHub-flavored markdown instead of aligned text
//!   --threads N  worker threads for seed-parallel sweeps (default:
//!                SINR_THREADS, else 1); results are identical for any N
//! ```
//!
//! With `EXPERIMENTS_JSON_DIR=<dir>` set, every experiment additionally
//! writes its machine-readable report to `<dir>/OBS_<ID>.json` (schema
//! `experiment_report`, `docs/OBS_SCHEMA.md`).
//!
//! With `EXPERIMENTS_TRACE_DIR=<dir>` set, the binary also writes a
//! Chrome trace-event timeline of one observed reference run (slot-time
//! spans plus a wall-clock overlay; open in Perfetto) to
//! `<dir>/TRACE_uniform128.json`.

use sinr_bench::experiments::{run_by_id, ALL};
use sinr_bench::obs::recorded_instance_trace;
use sinr_bench::workload::Instance;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let mut threads_arg: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            i += 1;
            let parsed = args.get(i).and_then(|v| v.parse().ok());
            let Some(t) = parsed else {
                eprintln!("--threads expects a positive integer");
                std::process::exit(2);
            };
            threads_arg = Some(t);
        } else if !args[i].starts_with("--") {
            positional.push(args[i].to_lowercase());
        }
        i += 1;
    }
    if let Some(t) = threads_arg {
        // Size the global pool before any experiment touches it; results
        // are deterministic for every thread count, this only changes
        // wall-clock time.
        if !sinr_pool::set_global_threads(t) {
            eprintln!("worker pool already initialized; --threads {t} ignored");
        }
    }
    let mut ids: Vec<String> = positional;
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    let json_dir = std::env::var("EXPERIMENTS_JSON_DIR").ok();
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create EXPERIMENTS_JSON_DIR");
    }

    let mut unknown = Vec::new();
    for id in &ids {
        let start = Instant::now();
        match run_by_id(id, quick) {
            Some(report) => {
                if markdown {
                    println!("{}", report.to_markdown());
                } else {
                    println!("{report}");
                }
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/OBS_{}.json", report.id);
                    std::fs::write(&path, report.to_json()).expect("write experiment JSON");
                    eprintln!("[{id} report -> {path}]");
                }
                eprintln!("[{} finished in {:.1?}]", id, start.elapsed());
                println!();
            }
            None => unknown.push(id.clone()),
        }
    }
    if let Ok(dir) = std::env::var("EXPERIMENTS_TRACE_DIR") {
        std::fs::create_dir_all(&dir).expect("create EXPERIMENTS_TRACE_DIR");
        let start = Instant::now();
        let inst = Instance::uniform(128, 12.0, 7);
        let path = format!("{dir}/TRACE_uniform128.json");
        std::fs::write(&path, recorded_instance_trace(&inst, 0)).expect("write trace JSON");
        eprintln!("[trace -> {path} in {:.1?}]", start.elapsed());
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment ids: {} (valid: e1..e21, all)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
