//! Shared workload builders and seed-parallel run helpers.

use sinr_coloring::mw::{run_mw, MwConfig, MwOutcome};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig};
use sinr_radiosim::WakeupSchedule;

/// The default physical configuration used by all experiments:
/// `α = 4, β = 1.5, ρ = 2`, normalized to `R_T = 1`.
pub fn default_cfg() -> SinrConfig {
    SinrConfig::default_unit()
}

/// A reproducible experiment instance: a uniform placement with expected
/// degree `degree`, its UDG, and practical parameters.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The communication graph.
    pub graph: UnitDiskGraph,
    /// Practical-profile parameters sized for the instance.
    pub params: MwParams,
    /// The physical configuration.
    pub cfg: SinrConfig,
}

impl Instance {
    /// Builds the standard instance: `n` nodes, expected degree `degree`,
    /// placement seed derived from `seed`.
    pub fn uniform(n: usize, degree: f64, seed: u64) -> Self {
        let cfg = default_cfg();
        let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), degree, seed);
        let graph = UnitDiskGraph::new(pts, cfg.r_t());
        let params = MwParams::practical(&cfg, n.max(2), graph.max_degree());
        Instance { graph, params, cfg }
    }

    /// Runs the MW algorithm under the SINR model with the given seed.
    ///
    /// Uses the grid-tiled [`FastSinrModel`] in `auto` mode — the grid is
    /// skipped on small instances where snapshots cannot pay for
    /// themselves — whose reception tables are bit-identical to the naive
    /// `SinrModel` either way (see `docs/PERFORMANCE.md`), so experiment
    /// outputs are unchanged while sweeps run much faster.
    pub fn run_sinr(&self, seed: u64, schedule: WakeupSchedule) -> MwOutcome {
        run_mw(
            &self.graph,
            FastSinrModel::auto(self.cfg, &self.graph),
            &MwConfig::new(self.params).with_seed(seed),
            schedule,
        )
    }

    /// Runs the MW algorithm under an arbitrary interference model.
    pub fn run_with<M: InterferenceModel>(
        &self,
        model: M,
        seed: u64,
        schedule: WakeupSchedule,
    ) -> MwOutcome {
        run_mw(
            &self.graph,
            model,
            &MwConfig::new(self.params).with_seed(seed),
            schedule,
        )
    }
}

/// Aggregates resolver fast-path counters over a batch of outcomes and
/// returns the combined hit rate, if any run tracked them.
pub fn resolver_hit_rate(outs: &[MwOutcome]) -> Option<f64> {
    let mut total = sinr_model::ResolverStats::default();
    let mut any = false;
    for out in outs {
        if let Some(s) = &out.resolver {
            total.merge(s);
            any = true;
        }
    }
    if any {
        total.hit_rate()
    } else {
        None
    }
}

/// Runs `f(seed)` for `seeds` seeds across the global worker pool and
/// returns the results in seed order (deterministic regardless of the
/// pool's thread count — the seeds are statically partitioned and each
/// result lands in its own slot).
///
/// The pool size comes from `SINR_THREADS` (or
/// [`sinr_pool::set_global_threads`], e.g. via `--threads` on the
/// experiments binary); with 1 thread the seeds simply run inline.
pub fn par_seeds<T: Send>(seeds: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    sinr_pool::global().par_seeds(0..seeds, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_matches_requested_size() {
        let inst = Instance::uniform(50, 8.0, 3);
        assert_eq!(inst.graph.len(), 50);
        assert!(inst.params.delta >= 1);
        assert!((inst.cfg.r_t() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn par_seeds_preserves_order() {
        let xs = par_seeds(8, |s| s * 10);
        assert_eq!(xs, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_sinr_completes_small_instance() {
        let inst = Instance::uniform(20, 6.0, 1);
        let out = inst.run_sinr(0, WakeupSchedule::Synchronous);
        assert!(out.all_done);
    }
}
