//! `any::<T>()` — canonical strategies for plain types.

use crate::strategy::Strategy;
use sinr_rng::rngs::StdRng;
use sinr_rng::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic default for simulation parameters
    /// (upstream draws from all bit patterns; nothing here relies on that).
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random()
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
