//! Collection strategies (`prop::collection::{vec, btree_set}`).

use crate::strategy::Strategy;
use sinr_rng::rngs::StdRng;
use sinr_rng::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Ranges usable as a collection size specification.
pub trait SizeRange {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            rng.random_range(self.clone())
        }
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        if lo >= hi {
            lo
        } else {
            rng.random_range(lo..hi + 1)
        }
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

/// A strategy producing `Vec`s of values from `element`, with length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s with a target size drawn from `size`.
///
/// Duplicates drawn from `element` are discarded; if the element domain is
/// too small to reach the target size, a bounded number of redraws is made
/// and the (smaller) set is returned — matching upstream proptest's
/// semantics of `size` as a target, not a guarantee.
pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S, impl SizeRange>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 16 * target.max(1) {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_rng::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = vec(0usize..100, 2..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn vec_accepts_empty_range_degenerately() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = vec(0usize..10, 0..1);
        assert!(s.new_value(&mut rng).is_empty());
    }

    #[test]
    fn btree_set_hits_target_when_domain_allows() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = btree_set(0usize..1000, 8..=8);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng).len(), 8);
        }
    }

    #[test]
    fn btree_set_saturates_small_domains() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = btree_set(0usize..3, 10..=10);
        let set = s.new_value(&mut rng);
        assert!(set.len() <= 3);
        assert!(set.iter().all(|&v| v < 3));
    }
}
