#![warn(missing_docs)]

//! A minimal, dependency-free property-testing harness.
//!
//! This crate is consumed under the name `proptest` (see the workspace
//! `Cargo.toml` dependency rename) and implements exactly the subset of the
//! upstream proptest API that this workspace's test suites use: the
//! [`proptest!`] macro with `x in strategy` parameters, range and
//! collection strategies, `prop_map`/`prop_flat_map`, `prop_assert*!`,
//! `prop_assume!`, and a [`test_runner::Config`] with a fixable RNG seed.
//!
//! Differences from upstream, by design:
//!
//! * **Fully deterministic.** Case generation never touches OS entropy;
//!   every test's case sequence is a pure function of the configured seed
//!   (or a fixed default) and the test's name. This matches the
//!   workspace-wide seeded-randomness policy enforced by `cargo xtask
//!   lint` (lint L1, see `docs/LINTING.md`).
//! * **No shrinking.** A failing case reports its case index and inputs
//!   (via `Debug` in the assertion message); re-running reproduces it
//!   exactly, which replaces minimization for debugging purposes.
//! * **No failure persistence.** `Config::failure_persistence` is accepted
//!   for source compatibility but ignored; `*.proptest-regressions` files
//!   are kept in-tree as documentation of historic counterexamples (see
//!   `docs/LINTING.md`, appendix).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias of the crate root so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; it is skipped
    /// without counting against the case budget.
    Reject(String),
    /// The case failed a `prop_assert*!`.
    Fail(String),
}

/// Result type produced by the body of a [`proptest!`] test.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// (not the process) fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal (by `PartialEq`), reporting both via
/// `Debug` on failure. An optional trailing format message is appended.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)*)
                );
            }
        }
    };
}

/// Asserts two expressions are unequal, reporting both via `Debug`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}\n {}",
                    stringify!($left), stringify!($right), __l, format!($($fmt)*)
                );
            }
        }
    };
}

/// Skips the current case (without failing) when its inputs do not satisfy
/// a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0.0..1.0f64, (a, b) in my_pair_strategy()) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
///
/// Each `pat in strategy` parameter draws a fresh value per case; the body
/// runs once per case with `prop_assert*!` failures reported with the case
/// index and the reproducing seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_property(
                &$config,
                stringify!($name),
                |__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
