//! The case-loop driver behind the [`proptest!`](crate::proptest) macro.

use crate::{TestCaseError, TestCaseResult};
use sinr_rng::rngs::StdRng;
use sinr_rng::SeedableRng;

/// How the per-test RNG is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngSeed {
    /// Use the workspace-wide default seed (still fully deterministic —
    /// this harness never consults OS entropy; the name matches upstream
    /// proptest for source compatibility).
    Random,
    /// Use exactly this seed, pinning the generated case set.
    Fixed(u64),
}

/// Configuration for one `proptest!` block (a subset of upstream's
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Seeding mode; see [`RngSeed`].
    pub rng_seed: RngSeed,
    /// Accepted for source compatibility; this harness never persists
    /// failures (see the crate docs and `docs/LINTING.md`).
    pub failure_persistence: Option<()>,
    /// Maximum `prop_assume!` rejections tolerated before the test errors
    /// out as vacuous.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            rng_seed: RngSeed::Random,
            failure_persistence: None,
            max_global_rejects: 4096,
        }
    }
}

/// FNV-1a, used to give every test its own deterministic stream even under
/// the shared default seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const DEFAULT_SEED: u64 = 0x5eed_517e_ab1e_0001;

/// Seed of the generator handed to case `case` of test `name`.
///
/// Public so a failure message's `(name, case)` pair can be replayed
/// exactly in a debugger or a scratch test.
pub fn case_seed(config: &Config, name: &str, case: u32) -> u64 {
    let base = match config.rng_seed {
        RngSeed::Random => DEFAULT_SEED,
        RngSeed::Fixed(s) => s,
    };
    base ^ hash_name(name) ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs `body` over `config.cases` generated cases; panics (failing the
/// enclosing `#[test]`) on the first case failure, reporting the case
/// index and seed needed to reproduce it.
pub fn run_property<F>(config: &Config, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u32;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest {name}: gave up after {rejected} prop_assume! rejections \
                 ({passed}/{} cases passed)",
                config.cases
            );
        }
        let seed = case_seed(config, name, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        case += 1;
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(cond))) => {
                rejected += 1;
                let _ = cond;
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest {name}: case {} failed (case seed {seed:#018x}):\n{msg}",
                    case - 1
                );
            }
            Err(panic_payload) => {
                eprintln!(
                    "proptest {name}: case {} panicked (case seed {seed:#018x})",
                    case - 1
                );
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        let config = Config::default();
        let mut count = 0u32;
        run_property(&config, "always_ok", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, config.cases);
    }

    #[test]
    fn case_seeds_are_name_and_index_sensitive() {
        let c = Config::default();
        assert_ne!(case_seed(&c, "a", 0), case_seed(&c, "b", 0));
        assert_ne!(case_seed(&c, "a", 0), case_seed(&c, "a", 1));
        assert_eq!(case_seed(&c, "a", 3), case_seed(&c, "a", 3));
    }

    #[test]
    fn fixed_seed_changes_the_stream() {
        let mut d = Config::default();
        let base = case_seed(&d, "t", 0);
        d.rng_seed = RngSeed::Fixed(12345);
        assert_ne!(case_seed(&d, "t", 0), base);
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failing_case_reports_index() {
        run_property(&Config::default(), "always_fails", |_| {
            Err(TestCaseError::Fail("boom".to_string()))
        });
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn vacuous_property_errors_out() {
        run_property(&Config::default(), "always_rejects", |_| {
            Err(TestCaseError::Reject("never".to_string()))
        });
    }

    #[test]
    fn macro_end_to_end() {
        // Exercise the macro exactly as test suites use it.
        crate::proptest! {
            #![proptest_config(crate::test_runner::Config { cases: 8, ..Default::default() })]

            #[allow(clippy::absurd_extreme_comparisons)]
            fn sums_commute(a in 0u64..1000, b in 0u64..1000) {
                crate::prop_assert_eq!(a + b, b + a);
            }
        }
        sums_commute();
    }
}
