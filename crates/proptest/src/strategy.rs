//! Value-generation strategies.

use sinr_rng::rngs::StdRng;
use sinr_rng::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a concrete value from the deterministic per-case
/// generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        let mid = self.source.new_value(rng);
        (self.f)(mid).new_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_rng::SeedableRng;

    #[test]
    fn ranges_map_and_tuples_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0.0..1.0f64, 5usize..10).prop_map(|(f, i)| f + i as f64);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((5.0..11.0).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_the_intermediate_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, k) = s.new_value(&mut rng);
            assert!(k < n);
        }
    }
}
