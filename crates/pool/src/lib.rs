#![warn(missing_docs)]

//! Deterministic multi-core execution for the SINR coloring workspace.
//!
//! Every parallel code path in the workspace — the SINR resolvers, the
//! simulation engine's node-step phase, the experiment driver — runs on the
//! [`Pool`] defined here, and nowhere else (`cargo xtask lint` rule L6 bans
//! `std::thread` / `std::sync` outside this crate). The pool is designed so
//! that parallel runs are **bit-identical** to sequential ones:
//!
//! * **Static partitioning, no work stealing.** Work of size `len` is split
//!   into at most `threads` contiguous chunks by [`chunk_range`], a pure
//!   function of `(len, threads, t)`. Which thread computes which items
//!   never depends on timing.
//! * **Chunk-ordered merges.** Callers combine per-chunk outputs in chunk
//!   index order (see [`Pool::map_indexed`] and the per-chunk scratch type
//!   [`PerThread`]), so merged results are independent of completion order.
//! * **No hidden concurrency.** A pool with one thread executes everything
//!   inline on the caller's stack — no worker threads are spawned, no
//!   synchronization is performed, so `threads = 1` through the pool is the
//!   pre-pool sequential path.
//!
//! Thread count is explicit: binaries pass `--threads` or read the
//! `SINR_THREADS` environment variable (see [`Pool::from_env`] and
//! [`global`]); libraries default to [`Pool::sequential`].
//!
//! # Example
//!
//! ```
//! use sinr_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map_indexed(10, |i| i * i);
//! assert_eq!(squares[3], 9); // same result for any thread count
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

mod per_thread;

pub use per_thread::PerThread;

/// The contiguous index range worked on by thread `t` out of `threads`
/// when `len` items are statically partitioned.
///
/// Pure function: chunks are contiguous, ascending, cover `0..len` exactly,
/// and differ in size by at most one item. Every parallel construct in this
/// crate partitions with this function, so "which thread owns item `i`" is
/// deterministic.
pub fn chunk_range(len: usize, threads: usize, t: usize) -> Range<usize> {
    let threads = threads.max(1);
    if t >= threads {
        return len..len;
    }
    let base = len / threads;
    let rem = len % threads;
    let start = t * base + t.min(rem);
    let size = base + usize::from(t < rem);
    start..(start + size).min(len)
}

/// A raw pointer that may cross thread boundaries. Safety rests on the
/// pool's static partitioning: distinct threads only ever touch disjoint
/// chunks behind the pointer, and [`Pool::broadcast`] does not return until
/// every worker has finished.
#[derive(Clone, Copy)]
struct AcrossThreads<T>(T);
unsafe impl<T> Send for AcrossThreads<T> {}
unsafe impl<T> Sync for AcrossThreads<T> {}

impl<T: Copy> AcrossThreads<T> {
    /// Reads the wrapped value. Going through a method (rather than field
    /// access) makes closures capture the whole `Sync` wrapper instead of
    /// the raw pointer inside it.
    fn get(&self) -> T {
        self.0
    }
}

/// A lifetime-erased borrow of the closure being broadcast. Valid only
/// while the originating [`Pool::broadcast`] call is on the stack — the
/// call waits for all workers before returning, upholding the borrow.
type JobPtr = AcrossThreads<*const (dyn Fn(usize) + Sync)>;

struct JobState {
    /// Bumped once per broadcast; workers run each epoch exactly once.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still running the current epoch's job.
    remaining: usize,
    /// The first panic payload captured from any thread this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Signalled when a new epoch begins (or on shutdown).
    start: Condvar,
    /// Signalled when the last worker of an epoch finishes.
    done: Condvar,
}

/// Locks a mutex, recovering the guard from a poisoned lock (a worker
/// panic must not cascade into an abort; the payload is re-raised on the
/// caller's thread by `broadcast` instead).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job;
                }
                st = wait(&shared.start, st);
            }
        };
        let outcome = job.map(|job| {
            // Safety: `broadcast` keeps the closure alive until every
            // worker has reported back below.
            let f = unsafe { &*job.0 };
            catch_unwind(AssertUnwindSafe(|| f(index)))
        });
        let mut st = lock(&shared.state);
        if let Some(Err(payload)) = outcome {
            st.panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

struct Workers {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for Workers {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct Inner {
    /// Total thread count including the caller's thread (workers + 1).
    threads: usize,
    /// `None` when `threads == 1`: everything runs inline.
    workers: Option<Workers>,
}

/// A deterministic scoped-broadcast worker pool (see the crate docs).
///
/// Cheap to clone: clones share the same worker threads. Workers are
/// parked between broadcasts and joined when the last clone is dropped.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::sequential()
    }
}

impl Pool {
    /// The inline pool: one thread, no workers, no synchronization.
    pub fn sequential() -> Pool {
        Pool {
            inner: Arc::new(Inner {
                threads: 1,
                workers: None,
            }),
        }
    }

    /// Creates a pool of `threads` total threads (the caller's thread plus
    /// `threads - 1` parked workers). `threads <= 1` — or a failure to
    /// spawn every worker — degrades gracefully toward [`Pool::sequential`]:
    /// the pool uses however many threads it actually has.
    pub fn new(threads: usize) -> Pool {
        if threads <= 1 {
            return Pool::sequential();
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for index in 1..threads {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("sinr-pool-{index}"))
                .spawn(move || worker_loop(&shared, index));
            match spawned {
                Ok(handle) => handles.push(handle),
                // Out of threads: run with what we got. Chunk assignment
                // only depends on the *final* thread count, so this stays
                // deterministic for a given realized pool size.
                Err(_) => break,
            }
        }
        if handles.is_empty() {
            return Pool::sequential();
        }
        let threads = handles.len() + 1;
        Pool {
            inner: Arc::new(Inner {
                threads,
                workers: Some(Workers { shared, handles }),
            }),
        }
    }

    /// Creates a pool sized by the `SINR_THREADS` environment variable
    /// (missing, empty, or unparsable values mean 1 — parallelism is
    /// strictly opt-in).
    pub fn from_env() -> Pool {
        Pool::new(threads_from_env())
    }

    /// Total thread count, including the calling thread.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Runs `f(t)` for every thread index `t in 0..threads`, concurrently,
    /// and returns once all calls have completed. `f(0)` runs on the
    /// calling thread. With one thread this is exactly `f(0)` inline.
    ///
    /// If any invocation panics, the first captured payload is re-raised
    /// on the calling thread — after every worker has finished, so borrows
    /// held by `f` stay valid for as long as any thread can touch them.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let Some(workers) = &self.inner.workers else {
            f(0);
            return;
        };
        let shared = &workers.shared;
        {
            let mut st = lock(&shared.state);
            // Safety: the erased borrow outlives this call, and this call
            // does not return until `remaining == 0` below.
            st.job = Some(AcrossThreads(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f as *const _)
            }));
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = self.inner.threads - 1;
            shared.start.notify_all();
        }
        let main_outcome = catch_unwind(AssertUnwindSafe(|| f(0)));
        let payload = {
            let mut st = lock(&shared.state);
            while st.remaining > 0 {
                st = wait(&shared.done, st);
            }
            st.job = None;
            st.panic.take()
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        if let Err(payload) = main_outcome {
            resume_unwind(payload);
        }
    }

    /// Statically partitions `0..len` with [`chunk_range`] and runs
    /// `f(t, range)` concurrently for every non-empty chunk.
    pub fn run_chunks(&self, len: usize, f: impl Fn(usize, Range<usize>) + Sync) {
        if len == 0 {
            return;
        }
        if self.threads() == 1 {
            f(0, 0..len);
            return;
        }
        let threads = self.threads();
        self.broadcast(&|t| {
            let range = chunk_range(len, threads, t);
            if !range.is_empty() {
                f(t, range);
            }
        });
    }

    /// Splits `data` into the pool's static chunks and runs
    /// `f(t, chunk_start, chunk)` concurrently on each. The chunk starting
    /// at index `chunk_start` is exactly `chunk_range(len, threads, t)`.
    pub fn chunks_mut<T: Send>(&self, data: &mut [T], f: impl Fn(usize, usize, &mut [T]) + Sync) {
        let len = data.len();
        let base = AcrossThreads(data.as_mut_ptr());
        self.run_chunks(len, |t, range| {
            // Safety: `chunk_range` yields disjoint ranges for distinct
            // `t`, `run_chunks` invokes each `t` at most once per call,
            // and `data` is mutably borrowed for the whole call.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
            f(t, range.start, chunk);
        });
    }

    /// Like [`Pool::chunks_mut`] over three equal-length slices split on
    /// the same chunk boundaries — the shape of the engine's per-node
    /// state (`nodes`, `rngs`, `outboxes`).
    ///
    /// Chunks are computed from `a.len()`; all three slices must have that
    /// length or the call panics before any work starts.
    pub fn chunks_mut3<A: Send, B: Send, C: Send>(
        &self,
        a: &mut [A],
        b: &mut [B],
        c: &mut [C],
        f: impl Fn(usize, usize, &mut [A], &mut [B], &mut [C]) + Sync,
    ) {
        let len = a.len();
        assert_eq!(len, b.len(), "chunks_mut3: slice lengths differ");
        assert_eq!(len, c.len(), "chunks_mut3: slice lengths differ");
        let pa = AcrossThreads(a.as_mut_ptr());
        let pb = AcrossThreads(b.as_mut_ptr());
        let pc = AcrossThreads(c.as_mut_ptr());
        self.run_chunks(len, |t, range| {
            // Safety: as in `chunks_mut` — disjoint ranges per thread,
            // exclusive borrows of all three slices for the whole call.
            let (ca, cb, cc) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pa.get().add(range.start), range.len()),
                    std::slice::from_raw_parts_mut(pb.get().add(range.start), range.len()),
                    std::slice::from_raw_parts_mut(pc.get().add(range.start), range.len()),
                )
            };
            f(t, range.start, ca, cb, cc);
        });
    }

    /// Maps `f` over `0..len` on the pool and returns the results in index
    /// order, regardless of thread count or completion order.
    pub fn map_indexed<T: Send>(&self, len: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
        self.chunks_mut(&mut out, |_t, start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(start + i));
            }
        });
        // Every index 0..len was visited exactly once above.
        let collected: Vec<T> = out.into_iter().flatten().collect();
        debug_assert_eq!(collected.len(), len);
        collected
    }

    /// Runs `f` once per seed in `seeds` on the pool and returns the
    /// results in ascending seed order, regardless of thread count or
    /// completion order.
    ///
    /// This is the batched fan-out primitive for multi-seed experiments:
    /// callers amortize per-instance setup (placement, grid construction,
    /// parameter derivation) outside the closure and let the pool spread
    /// the per-seed runs. Because the merge is index-ordered, the
    /// concatenated output is byte-identical to a sequential
    /// `for seed in seeds` loop at any thread count.
    pub fn par_seeds<T: Send>(
        &self,
        seeds: std::ops::Range<u64>,
        f: impl Fn(u64) -> T + Sync,
    ) -> Vec<T> {
        let start = seeds.start;
        // Saturation is fine: a seed range near usize::MAX is unrunnable
        // anyway, and truncating would silently drop seeds.
        let len = usize::try_from(seeds.end.saturating_sub(start)).unwrap_or(usize::MAX);
        self.map_indexed(len, |i| f(start + i as u64))
    }
}

/// Parses the `SINR_THREADS` environment variable (default 1; parallelism
/// is strictly opt-in so unconfigured runs take the sequential path).
pub fn threads_from_env() -> usize {
    std::env::var("SINR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static GLOBAL_REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// The process-wide pool used by the experiment driver's seed-parallel
/// helpers. Initialized on first use from [`set_global_threads`] if it was
/// called, else from `SINR_THREADS` (default 1, i.e. sequential).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let requested = GLOBAL_REQUESTED.load(Ordering::SeqCst);
        if requested >= 1 {
            Pool::new(requested)
        } else {
            Pool::from_env()
        }
    })
}

/// Requests a thread count for the [`global`] pool (e.g. from a
/// `--threads` flag). Must be called before the first [`global`] use;
/// returns `false` if the global pool was already built with a different
/// size — callers should report that the flag came too late rather than
/// silently proceed.
pub fn set_global_threads(threads: usize) -> bool {
    let threads = threads.max(1);
    GLOBAL_REQUESTED.store(threads, Ordering::SeqCst);
    match GLOBAL.get() {
        Some(pool) => pool.threads() == threads,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunk_ranges_partition_exactly() {
        for &(len, threads) in &[(0usize, 4usize), (1, 4), (7, 3), (16, 4), (5, 8), (100, 7)] {
            let mut covered = Vec::new();
            for t in 0..threads {
                let r = chunk_range(len, threads, t);
                assert!(
                    r.start <= r.end && r.end <= len,
                    "len {len} threads {threads} t {t}"
                );
                covered.extend(r);
            }
            assert_eq!(
                covered,
                (0..len).collect::<Vec<_>>(),
                "len {len} threads {threads}"
            );
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..threads)
                .map(|t| chunk_range(len, threads, t).len())
                .collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = Pool::sequential();
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.broadcast(&|t| {
            assert_eq!(t, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn broadcast_runs_every_thread_index_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..pool.threads()).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            pool.broadcast(&|t| {
                hits[t].fetch_add(1, Ordering::SeqCst);
            });
        }
        for (t, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 50, "thread {t}");
        }
    }

    #[test]
    fn map_indexed_is_order_deterministic() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            assert_eq!(
                pool.map_indexed(97, |i| i * 3 + 1),
                expected,
                "threads {threads}"
            );
        }
        // Reusing one pool across calls is fine too.
        let pool = Pool::new(3);
        for _ in 0..10 {
            assert_eq!(pool.map_indexed(97, |i| i * 3 + 1), expected);
        }
    }

    #[test]
    fn par_seeds_is_seed_ordered_at_any_thread_count() {
        let expected: Vec<u64> = (100..173).map(|s| s * 7).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            assert_eq!(
                pool.par_seeds(100..173, |s| s * 7),
                expected,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn par_seeds_handles_empty_and_inverted_ranges() {
        let pool = Pool::new(2);
        assert!(pool.par_seeds(5..5, |s| s).is_empty());
        assert!(pool.par_seeds(9..3, |s| s).is_empty());
    }

    #[test]
    fn chunks_mut_sees_disjoint_chunks_with_correct_offsets() {
        let pool = Pool::new(4);
        let mut data = vec![0usize; 41];
        pool.chunks_mut(&mut data, |_t, start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        assert_eq!(data, (0..41).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut3_zips_three_slices() {
        let pool = Pool::new(3);
        let mut a = vec![1u64; 10];
        let mut b = vec![2u64; 10];
        let mut c = vec![0u64; 10];
        pool.chunks_mut3(&mut a, &mut b, &mut c, |_t, start, ca, cb, cc| {
            for i in 0..ca.len() {
                cc[i] = ca[i] + cb[i] + (start + i) as u64;
            }
        });
        let expected: Vec<u64> = (0..10).map(|i| 3 + i as u64).collect();
        assert_eq!(c, expected);
    }

    #[test]
    fn empty_work_is_a_no_op() {
        let pool = Pool::new(2);
        pool.run_chunks(0, |_, _| unreachable!("no chunks for empty work"));
        assert!(pool.map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|t| {
                if t == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked broadcast and keeps working.
        let sum: usize = pool.map_indexed(10, |i| i).iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn degenerate_sizes_clamp_to_sequential() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(1).threads(), 1);
        assert!(Pool::default().threads() == 1);
    }

    #[test]
    fn pool_clones_share_workers() {
        let pool = Pool::new(3);
        let clone = pool.clone();
        assert_eq!(clone.threads(), 3);
        let count = AtomicU64::new(0);
        clone.broadcast(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn threads_from_env_defaults_to_one() {
        // The variable is not set in the test environment.
        if std::env::var("SINR_THREADS").is_err() {
            assert_eq!(threads_from_env(), 1);
        }
    }
}
