//! Per-chunk scratch storage for pool broadcasts.

use std::sync::Mutex;

/// One reusable scratch slot per pool thread.
///
/// During a broadcast each thread locks **its own** slot (`with(t, …)`),
/// so locks are never contended; between broadcasts the owner drains the
/// slots *in thread order* (`get_mut` / `iter_mut`), which is what keeps
/// merged results — transmitter lists, reception counters, resolver
/// statistics — bit-identical to a sequential run.
///
/// ```
/// use sinr_pool::{PerThread, Pool};
///
/// let pool = Pool::new(2);
/// let outputs: PerThread<Vec<usize>> = PerThread::new(pool.threads(), |_| Vec::new());
/// pool.run_chunks(10, |t, range| outputs.with(t, |v| v.extend(range)));
/// let mut merged = Vec::new();
/// for chunk in outputs.into_iter() {
///     merged.extend(chunk); // chunk order == index order
/// }
/// assert_eq!(merged, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug, Default)]
pub struct PerThread<T> {
    slots: Vec<Mutex<T>>,
}

impl<T> PerThread<T> {
    /// Creates `threads` slots, initializing slot `t` with `init(t)`.
    pub fn new(threads: usize, mut init: impl FnMut(usize) -> T) -> Self {
        PerThread {
            slots: (0..threads.max(1)).map(|t| Mutex::new(init(t))).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots (never true for pools ≥ 1 thread).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with exclusive access to slot `t`.
    ///
    /// Uncontended by construction when each broadcast thread passes its
    /// own index; the lock exists only to make that discipline safe.
    pub fn with<R>(&self, t: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.slots[t]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }

    /// Direct access to slot `t` (no locking; requires `&mut self`).
    pub fn get_mut(&mut self, t: usize) -> &mut T {
        self.slots[t].get_mut().unwrap_or_else(|p| p.into_inner())
    }

    /// Iterates the slots in thread order (no locking).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots
            .iter_mut()
            .map(|m| m.get_mut().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Consumes the storage, yielding the slots in thread order.
impl<T> IntoIterator for PerThread<T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::vec::IntoIter<Mutex<T>>, fn(Mutex<T>) -> T>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Clone> Clone for PerThread<T> {
    fn clone(&self) -> Self {
        PerThread {
            slots: self
                .slots
                .iter()
                .map(|m| {
                    Mutex::new(
                        m.lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .clone(),
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn merge_order_is_thread_order() {
        let pool = Pool::new(4);
        let outputs: PerThread<Vec<usize>> = PerThread::new(pool.threads(), |_| Vec::new());
        pool.run_chunks(23, |t, range| outputs.with(t, |v| v.extend(range)));
        let mut merged = Vec::new();
        for v in outputs.into_iter() {
            merged.extend(v);
        }
        assert_eq!(merged, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn get_mut_and_iter_mut_reach_every_slot() {
        let mut pt: PerThread<u32> = PerThread::new(3, |t| t as u32);
        *pt.get_mut(1) += 10;
        let all: Vec<u32> = pt.iter_mut().map(|x| *x).collect();
        assert_eq!(all, vec![0, 11, 2]);
        assert_eq!(pt.len(), 3);
        assert!(!pt.is_empty());
    }

    #[test]
    fn at_least_one_slot_even_for_zero_threads() {
        let pt: PerThread<u8> = PerThread::new(0, |_| 7);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn clone_copies_slot_contents() {
        let pt: PerThread<Vec<u8>> = PerThread::new(2, |t| vec![t as u8]);
        let cl = pt.clone();
        let contents: Vec<Vec<u8>> = cl.into_iter().collect();
        assert_eq!(contents, vec![vec![0], vec![1]]);
    }
}
