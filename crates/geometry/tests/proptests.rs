//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use sinr_geometry::greedy::{greedy_coloring, greedy_coloring_by_degree};
use sinr_geometry::packing::{greedy_mis, is_independent, is_maximal_independent, phi_bound};
use sinr_geometry::{Bbox, Point, SpatialGrid, UnitDiskGraph};

fn arb_point(extent: f64) -> impl Strategy<Value = Point> {
    (0.0..extent, 0.0..extent).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max_n: usize, extent: f64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(extent), 0..max_n)
}

proptest! {
    #[test]
    fn distance_is_symmetric(a in arb_point(100.0), b in arb_point(100.0)) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality(
        a in arb_point(100.0),
        b in arb_point(100.0),
        c in arb_point(100.0),
    ) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn grid_query_matches_brute_force(
        pts in arb_points(60, 8.0),
        center in arb_point(8.0),
        radius in 0.0..4.0f64,
        cell in 0.2..2.0f64,
    ) {
        let grid = SpatialGrid::build(&pts, cell);
        let fast = grid.within(&pts, center, radius);
        let r2 = radius * radius;
        let brute: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance_squared(center) <= r2)
            .collect();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn udg_adjacency_symmetric_and_threshold(
        pts in arb_points(40, 5.0),
        radius in 0.3..2.0f64,
    ) {
        let g = UnitDiskGraph::new(pts, radius);
        for u in 0..g.len() {
            for v in 0..g.len() {
                if u == v {
                    prop_assert!(!g.are_adjacent(u, v));
                } else {
                    prop_assert_eq!(g.are_adjacent(u, v), g.distance(u, v) <= radius);
                    prop_assert_eq!(g.are_adjacent(u, v), g.are_adjacent(v, u));
                }
            }
        }
    }

    #[test]
    fn greedy_coloring_proper_and_bounded(
        pts in arb_points(50, 4.0),
        radius in 0.3..1.5f64,
    ) {
        let g = UnitDiskGraph::new(pts, radius);
        for coloring in [greedy_coloring(&g), greedy_coloring_by_degree(&g)] {
            prop_assert!(coloring.is_proper(&g));
            if !g.is_empty() {
                prop_assert!(coloring.palette_size() <= g.max_degree() + 1);
            }
        }
    }

    #[test]
    fn greedy_mis_maximal_independent(
        pts in arb_points(50, 4.0),
        radius in 0.3..1.5f64,
    ) {
        let g = UnitDiskGraph::new(pts, radius);
        let mis = greedy_mis(&g);
        prop_assert!(is_independent(&g, &mis));
        prop_assert!(is_maximal_independent(&g, &mis));
    }

    #[test]
    fn phi_bound_monotone_in_radius(r1 in 0.0..10.0f64, r2 in 0.0..10.0f64, rt in 0.1..3.0f64) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(phi_bound(lo, rt) <= phi_bound(hi, rt));
    }

    #[test]
    fn bbox_enclosing_contains_all(pts in arb_points(40, 50.0)) {
        if let Some(b) = Bbox::enclosing(&pts) {
            for p in &pts {
                prop_assert!(b.contains(*p));
            }
        } else {
            prop_assert!(pts.is_empty());
        }
    }

    #[test]
    fn bbox_clamp_is_idempotent_and_inside(
        p in arb_point(100.0),
        side in 0.1..50.0f64,
    ) {
        let b = Bbox::square(side);
        let c = b.clamp(p);
        prop_assert!(b.contains(c));
        prop_assert_eq!(b.clamp(c), c);
    }
}
