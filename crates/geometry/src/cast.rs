//! Checked float→integer conversions — the audited home for lint `L9`.
//!
//! A bare `expr as usize` on a float expression *saturates silently*:
//! `NaN` becomes `0`, `1e300` becomes `usize::MAX`, and `-0.5` becomes
//! `0`, all without any signal. Sprinkled through geometry and parameter
//! code, those saturations are indistinguishable from correct rounding —
//! precisely the class of bug that only appears at extreme densities or
//! corrupted inputs. Lint `L9` (`cargo xtask lint`) therefore bans direct
//! float→`usize`/`u64`/`i64` casts in library code; every conversion
//! routes through these helpers instead, where the saturation semantics
//! are explicit, documented, and **debug-asserted**: a debug or test build
//! traps on NaN and on values outside the target range, while release
//! builds keep the branch-free saturating behavior of `as`.
//!
//! The helpers intentionally mirror the only patterns the workspace uses
//! (`floor`/`ceil` then convert); a new pattern should be added here, not
//! open-coded.

/// `x.floor()` converted to `i64`.
///
/// Saturates at `i64::MIN`/`i64::MAX`; `NaN` maps to `0`. Debug builds
/// assert `x` is not NaN and fits the target range.
#[inline]
pub fn floor_i64(x: f64) -> i64 {
    debug_assert!(!x.is_nan(), "floor_i64 on NaN");
    debug_assert!(
        (-9.3e18..=9.3e18).contains(&x),
        "floor_i64 saturates: {x} outside i64 range"
    );
    x.floor() as i64
}

/// `x.ceil()` converted to `i64`.
///
/// Saturates at `i64::MIN`/`i64::MAX`; `NaN` maps to `0`. Debug builds
/// assert `x` is not NaN and fits the target range.
#[inline]
pub fn ceil_i64(x: f64) -> i64 {
    debug_assert!(!x.is_nan(), "ceil_i64 on NaN");
    debug_assert!(
        (-9.3e18..=9.3e18).contains(&x),
        "ceil_i64 saturates: {x} outside i64 range"
    );
    x.ceil() as i64
}

/// `x.floor()` converted to `usize`.
///
/// Negative values and `NaN` map to `0`; values beyond `usize::MAX`
/// saturate. Debug builds assert `x` is not NaN and non-negative.
#[inline]
pub fn floor_usize(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "floor_usize on NaN");
    debug_assert!(x >= 0.0, "floor_usize saturates: {x} is negative");
    x.floor() as usize
}

/// `x.ceil()` converted to `usize`.
///
/// Negative values and `NaN` map to `0`; values beyond `usize::MAX`
/// saturate. Debug builds assert `x` is not NaN and non-negative.
#[inline]
pub fn ceil_usize(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "ceil_usize on NaN");
    debug_assert!(x > -1.0, "ceil_usize saturates: {x} is negative");
    x.ceil() as usize
}

/// `x.floor()` converted to `u64` (also the audited replacement for a
/// bare truncating `expr as u64` on non-negative expressions).
///
/// Negative values and `NaN` map to `0`; values beyond `u64::MAX`
/// saturate. Debug builds assert `x` is not NaN and non-negative.
#[inline]
pub fn floor_u64(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "floor_u64 on NaN");
    debug_assert!(x >= 0.0, "floor_u64 saturates: {x} is negative");
    x.floor() as u64
}

/// `x.ceil()` converted to `u64`.
///
/// Negative values and `NaN` map to `0`; values beyond `u64::MAX`
/// saturate. Debug builds assert `x` is not NaN and non-negative.
#[inline]
pub fn ceil_u64(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "ceil_u64 on NaN");
    debug_assert!(x > -1.0, "ceil_u64 saturates: {x} is negative");
    x.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil_round_in_the_right_direction() {
        assert_eq!(floor_i64(2.9), 2);
        assert_eq!(ceil_i64(2.1), 3);
        assert_eq!(floor_i64(-2.1), -3);
        assert_eq!(ceil_i64(-2.9), -2);
        assert_eq!(floor_usize(7.99), 7);
        assert_eq!(ceil_usize(7.01), 8);
        assert_eq!(floor_u64(0.999), 0);
        assert_eq!(ceil_u64(0.001), 1);
    }

    #[test]
    fn exact_integers_pass_through() {
        assert_eq!(floor_i64(-5.0), -5);
        assert_eq!(ceil_i64(-5.0), -5);
        assert_eq!(floor_usize(12.0), 12);
        assert_eq!(ceil_usize(12.0), 12);
        assert_eq!(ceil_u64(0.0), 0);
    }

    #[test]
    fn ceil_of_small_negative_is_zero() {
        // `ceil(-0.3) == -0.0`, which converts to 0 — allowed (the value
        // rounds *to* the target range), asserted via the `> -1.0` bound.
        assert_eq!(ceil_usize(-0.3), 0);
        assert_eq!(ceil_u64(-0.3), 0);
    }

    #[test]
    fn release_mode_saturation_contract() {
        // The documented saturating behavior (exercised in release builds
        // where the debug_asserts compile out).
        if cfg!(debug_assertions) {
            return;
        }
        assert_eq!(floor_usize(-3.5), 0);
        assert_eq!(floor_u64(f64::NAN), 0);
        assert_eq!(ceil_i64(1e300), i64::MAX);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn debug_builds_trap_nan() {
        let _ = floor_i64(f64::NAN);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "negative")]
    fn debug_builds_trap_negative_to_unsigned() {
        let _ = floor_usize(-1.5);
    }
}
