//! Axis-aligned bounding boxes describing deployment areas.

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Used to describe the deployment area of a node placement and to clamp
/// generated points.
///
/// # Example
///
/// ```
/// use sinr_geometry::{Bbox, Point};
///
/// let area = Bbox::new(0.0, 0.0, 10.0, 5.0);
/// assert!(area.contains(Point::new(3.0, 4.0)));
/// assert!(!area.contains(Point::new(3.0, 6.0)));
/// assert_eq!(area.area(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bbox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl Bbox {
    /// Creates a bounding box from its lower-left corner `(min_x, min_y)`
    /// and upper-right corner `(max_x, max_y)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`, or any bound is not
    /// finite.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "bbox bounds must be finite"
        );
        assert!(min_x <= max_x && min_y <= max_y, "bbox bounds are inverted");
        Bbox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A square `[0, side] × [0, side]`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative or not finite.
    pub fn square(side: f64) -> Self {
        Bbox::new(0.0, 0.0, side, side)
    }

    /// The smallest box containing every point of the (non-empty) slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut b = Bbox::new(first.x, first.y, first.x, first.y);
        for p in &points[1..] {
            b.min_x = b.min_x.min(p.x);
            b.min_y = b.min_y.min(p.y);
            b.max_x = b.max_x.max(p.x);
            b.max_y = b.max_y.max(p.y);
        }
        Some(b)
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        Point::new(self.min_x, self.min_y)
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        Point::new(self.max_x, self.max_y)
    }

    /// Width along the x axis.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along the y axis.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Surface area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the point lies inside the box (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// The nearest point of the box to `p` (i.e. `p` clamped to the box).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }

    /// Grows the box by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if shrinking (negative margin) would invert the box.
    pub fn expanded(&self, margin: f64) -> Bbox {
        Bbox::new(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }
}

impl fmt::Display for Bbox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.2}, {:.2}] x [{:.2}, {:.2}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_has_expected_geometry() {
        let b = Bbox::square(4.0);
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 16.0);
        assert_eq!(b.center(), Point::new(2.0, 2.0));
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let b = Bbox::new(0.0, 0.0, 1.0, 1.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(!b.contains(Point::new(1.0 + 1e-9, 0.5)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let b = Bbox::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(b.clamp(Point::new(2.0, -1.0)), Point::new(1.0, 0.0));
        let inside = Point::new(0.3, 0.7);
        assert_eq!(b.clamp(inside), inside);
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ];
        let b = Bbox::enclosing(&pts).unwrap();
        for p in &pts {
            assert!(b.contains(*p));
        }
        assert_eq!(b.min(), Point::new(-2.0, 0.5));
        assert_eq!(b.max(), Point::new(3.0, 5.0));
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(Bbox::enclosing(&[]).is_none());
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = Bbox::square(2.0).expanded(1.0);
        assert_eq!(b.min(), Point::new(-1.0, -1.0));
        assert_eq!(b.max(), Point::new(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = Bbox::new(1.0, 0.0, 0.0, 1.0);
    }
}
