//! Seeded node-placement generators.
//!
//! The paper assumes nodes "placed arbitrarily" in the plane; experiments
//! need reproducible families of placements with controllable density (and
//! hence controllable maximum degree Δ). All generators are deterministic in
//! their `seed`.

use crate::bbox::Bbox;
use crate::point::Point;
use sinr_rng::rngs::StdRng;
use sinr_rng::{Rng, SeedableRng};

/// `n` points drawn i.i.d. uniformly from `[0, width] × [0, height]`.
///
/// # Panics
///
/// Panics if `width` or `height` is negative or non-finite.
///
/// # Example
///
/// ```
/// use sinr_geometry::placement;
///
/// let a = placement::uniform(100, 10.0, 10.0, 7);
/// let b = placement::uniform(100, 10.0, 10.0, 7);
/// assert_eq!(a, b); // deterministic in the seed
/// ```
pub fn uniform(n: usize, width: f64, height: f64, seed: u64) -> Vec<Point> {
    assert!(
        width.is_finite() && height.is_finite() && width >= 0.0 && height >= 0.0,
        "placement area must be finite and non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.random_range(0.0..=width),
                rng.random_range(0.0..=height),
            )
        })
        .collect()
}

/// `n` points drawn uniformly inside `area`.
pub fn uniform_in(n: usize, area: Bbox, seed: u64) -> Vec<Point> {
    uniform(n, area.width(), area.height(), seed)
        .into_iter()
        .map(|p| p + area.min())
        .collect()
}

/// A `cols × rows` grid with spacing `step`, each point jittered uniformly
/// by at most `jitter` in each coordinate.
///
/// With `jitter = 0` this is an exact lattice, which gives tight control of
/// the maximum degree of the induced UDG.
///
/// # Panics
///
/// Panics if `step` is not positive/finite or `jitter` is negative.
pub fn jittered_grid(cols: usize, rows: usize, step: f64, jitter: f64, seed: u64) -> Vec<Point> {
    assert!(step.is_finite() && step > 0.0, "grid step must be positive");
    assert!(
        jitter.is_finite() && jitter >= 0.0,
        "jitter must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            let jx = if jitter > 0.0 {
                rng.random_range(-jitter..=jitter)
            } else {
                0.0
            };
            let jy = if jitter > 0.0 {
                rng.random_range(-jitter..=jitter)
            } else {
                0.0
            };
            pts.push(Point::new(c as f64 * step + jx, r as f64 * step + jy));
        }
    }
    pts
}

/// `clusters` cluster centers uniform in `[0, width] × [0, height]`, each
/// with `per_cluster` points placed uniformly in a disk of radius
/// `cluster_radius` around its center.
///
/// Produces the high-density hot spots that stress the interference model.
pub fn clustered(
    clusters: usize,
    per_cluster: usize,
    width: f64,
    height: f64,
    cluster_radius: f64,
    seed: u64,
) -> Vec<Point> {
    assert!(
        cluster_radius.is_finite() && cluster_radius >= 0.0,
        "cluster radius must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let cx = rng.random_range(0.0..=width);
        let cy = rng.random_range(0.0..=height);
        for _ in 0..per_cluster {
            // Uniform in a disk via rejection-free polar sampling.
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let r = cluster_radius * rng.random::<f64>().sqrt();
            pts.push(Point::new(cx + r * theta.cos(), cy + r * theta.sin()));
        }
    }
    pts
}

/// `n` points evenly spaced on a horizontal line with spacing `step`,
/// jittered vertically by at most `jitter`.
///
/// Line topologies are the worst case for sequential color propagation.
pub fn line(n: usize, step: f64, jitter: f64, seed: u64) -> Vec<Point> {
    assert!(step.is_finite() && step > 0.0, "line step must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let jy = if jitter > 0.0 {
                rng.random_range(-jitter..=jitter)
            } else {
                0.0
            };
            Point::new(i as f64 * step, jy)
        })
        .collect()
}

/// Poisson-disk (blue-noise) sampling via dart throwing: up to `max_n`
/// points in `[0, width] × [0, height]`, pairwise more than
/// `min_separation` apart.
///
/// Produces the "spread out but irregular" deployments typical of planned
/// sensor fields; by construction the result is an independent set at
/// radius `min_separation`, so it also serves as a packing witness in
/// tests. Stops early when `max_attempts` consecutive darts fail.
///
/// # Panics
///
/// Panics if `min_separation` is not positive/finite.
pub fn poisson_disk(
    max_n: usize,
    width: f64,
    height: f64,
    min_separation: f64,
    seed: u64,
) -> Vec<Point> {
    assert!(
        min_separation.is_finite() && min_separation > 0.0,
        "separation must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::new();
    let max_attempts = 64 * max_n.max(1);
    let mut failures = 0usize;
    while pts.len() < max_n && failures < max_attempts {
        let cand = Point::new(
            rng.random_range(0.0..=width),
            rng.random_range(0.0..=height),
        );
        if pts.iter().all(|p| p.distance(cand) > min_separation) {
            pts.push(cand);
            failures = 0;
        } else {
            failures += 1;
        }
    }
    pts
}

/// `n` points uniform in a square sized so that the *expected* number of
/// points within distance `r_t` of a point is `target_degree`.
///
/// Density `λ = n / side²` satisfies `λ · π r_t² = target_degree`, i.e.
/// `side = r_t · sqrt(π n / target_degree)`. This is the workhorse for
/// experiments that sweep Δ or n independently.
///
/// # Panics
///
/// Panics if `target_degree` or `r_t` is not strictly positive.
pub fn uniform_with_expected_degree(
    n: usize,
    r_t: f64,
    target_degree: f64,
    seed: u64,
) -> Vec<Point> {
    assert!(target_degree > 0.0, "target degree must be positive");
    assert!(r_t > 0.0, "transmission range must be positive");
    let side = r_t * (std::f64::consts::PI * n as f64 / target_degree).sqrt();
    uniform(n, side, side, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UnitDiskGraph;

    #[test]
    fn uniform_respects_bounds_and_count() {
        let pts = uniform(200, 5.0, 3.0, 1);
        assert_eq!(pts.len(), 200);
        let area = Bbox::new(0.0, 0.0, 5.0, 3.0);
        assert!(pts.iter().all(|&p| area.contains(p)));
    }

    #[test]
    fn uniform_is_deterministic_and_seed_sensitive() {
        assert_eq!(uniform(50, 1.0, 1.0, 9), uniform(50, 1.0, 1.0, 9));
        assert_ne!(uniform(50, 1.0, 1.0, 9), uniform(50, 1.0, 1.0, 10));
    }

    #[test]
    fn uniform_in_offsets_into_area() {
        let area = Bbox::new(10.0, 20.0, 12.0, 21.0);
        let pts = uniform_in(100, area, 3);
        assert!(pts.iter().all(|&p| area.contains(p)));
    }

    #[test]
    fn grid_without_jitter_is_exact_lattice() {
        let pts = jittered_grid(3, 2, 2.0, 0.0, 0);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[1], Point::new(2.0, 0.0));
        assert_eq!(pts[5], Point::new(4.0, 2.0));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let step = 1.0;
        let jitter = 0.2;
        let pts = jittered_grid(5, 5, step, jitter, 11);
        for (i, p) in pts.iter().enumerate() {
            let base = Point::new((i % 5) as f64 * step, (i / 5) as f64 * step);
            assert!((p.x - base.x).abs() <= jitter + 1e-12);
            assert!((p.y - base.y).abs() <= jitter + 1e-12);
        }
    }

    #[test]
    fn clusters_stay_within_radius() {
        let pts = clustered(4, 25, 10.0, 10.0, 0.5, 5);
        assert_eq!(pts.len(), 100);
        for chunk in pts.chunks(25) {
            // Every point of a cluster is within 2*radius of every other.
            for a in chunk {
                for b in chunk {
                    assert!(a.distance(*b) <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn line_is_ordered_along_x() {
        let pts = line(10, 0.5, 0.1, 2);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.x, i as f64 * 0.5);
            assert!(p.y.abs() <= 0.1);
        }
    }

    #[test]
    fn poisson_disk_respects_separation() {
        let pts = poisson_disk(100, 10.0, 10.0, 0.8, 7);
        assert!(!pts.is_empty());
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert!(a.distance(*b) > 0.8);
            }
        }
        // Determinism.
        assert_eq!(pts, poisson_disk(100, 10.0, 10.0, 0.8, 7));
    }

    #[test]
    fn poisson_disk_saturates_small_areas() {
        // A 1x1 box cannot hold 50 points at separation 0.9; the sampler
        // must stop early rather than loop forever.
        let pts = poisson_disk(50, 1.0, 1.0, 0.9, 3);
        assert!(pts.len() < 10);
    }

    #[test]
    fn expected_degree_controls_density() {
        // Empirical mean degree should be near the target for large n.
        let n = 2000;
        let target = 12.0;
        let pts = uniform_with_expected_degree(n, 1.0, target, 4);
        let g = UnitDiskGraph::new(pts, 1.0);
        let mean: f64 = (0..n).map(|v| g.degree(v) as f64).sum::<f64>() / n as f64;
        // Boundary effects bias the mean down a little; allow a wide band.
        assert!(
            mean > target * 0.6 && mean < target * 1.3,
            "mean degree {mean} too far from target {target}"
        );
    }
}
