//! The unit-disk communication graph `G = (V, E, R_T)` of the paper (§II).

use crate::grid::SpatialGrid;
use crate::point::Point;
use crate::NodeId;

/// A unit-disk graph: nodes at fixed positions, an edge between `u` and `v`
/// iff `δ(u, v) ≤ R_T`.
///
/// The paper models the network as the UDG induced by the transmission range
/// `R_T`: "in absence of simultaneous transmissions node u can hear node v at
/// distance δ(u, v) ≤ R_T" (§II). Adjacency lists are precomputed at
/// construction (grid-accelerated, `O(n + Σ deg)` expected) and kept sorted.
///
/// # Example
///
/// ```
/// use sinr_geometry::{Point, UnitDiskGraph};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(1.6, 0.0)];
/// let g = UnitDiskGraph::new(pts, 1.0);
/// assert!(g.are_adjacent(0, 1));
/// assert!(!g.are_adjacent(0, 2));
/// assert_eq!(g.max_degree(), 2); // node 1 sees both ends
/// ```
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    radius: f64,
    adjacency: Vec<Vec<NodeId>>,
    max_degree: usize,
}

impl UnitDiskGraph {
    /// Builds the UDG over `positions` with communication radius `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not finite and strictly positive, or if any
    /// position is non-finite.
    pub fn new(positions: Vec<Point>, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "communication radius must be positive and finite"
        );
        let grid = SpatialGrid::build(&positions, radius);
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); positions.len()];
        for (v, &p) in positions.iter().enumerate() {
            grid.for_each_within(&positions, p, radius, |u| {
                if u != v {
                    adjacency[v].push(u);
                }
            });
            adjacency[v].sort_unstable();
        }
        let max_degree = adjacency.iter().map(Vec::len).max().unwrap_or(0);
        UnitDiskGraph {
            positions,
            radius,
            adjacency,
            max_degree,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The communication radius `R_T` the graph was built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// All node positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: NodeId) -> Point {
        self.positions[v]
    }

    /// Euclidean distance `δ(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.positions[u].distance(self.positions[v])
    }

    /// Sorted neighbor list of `v` (nodes within `R_T`, excluding `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree Δ of the graph.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Whether `u` and `v` are adjacent (`δ(u, v) ≤ R_T`, `u ≠ v`).
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.adjacency[u].binary_search(&v).is_ok()
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Nodes within Euclidean distance `r` of node `v`, *excluding* `v`,
    /// in ascending id order.
    ///
    /// Unlike [`UnitDiskGraph::neighbors`] this supports arbitrary radii
    /// (e.g. the `2R_T` and `R_I` disks of the analysis). Runs in `O(n)`;
    /// for repeated queries at a fixed radius build a dedicated
    /// [`SpatialGrid`].
    pub fn nodes_within(&self, v: NodeId, r: f64) -> Vec<NodeId> {
        let c = self.positions[v];
        let r2 = r * r;
        (0..self.len())
            .filter(|&u| u != v && self.positions[u].distance_squared(c) <= r2)
            .collect()
    }

    /// Whether the whole graph is connected (empty and singleton graphs are
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.len()
    }

    /// BFS hop distances from `source`; `None` for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        dist[source] = Some(0);
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v].expect("queued node has distance");
            for &u in self.neighbors(v) {
                if dist[u].is_none() {
                    dist[u] = Some(dv + 1);
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// The graph diameter in hops, or `None` if disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        for v in 0..self.len() {
            for d in self.bfs_distances(v) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Rebuilds the graph with a different radius over the same positions.
    ///
    /// Used by the distance-`d` coloring construction, which runs the
    /// algorithm on `G^d = (V, E', d·R_T)` (§V).
    pub fn with_radius(&self, radius: f64) -> UnitDiskGraph {
        UnitDiskGraph::new(self.positions.clone(), radius)
    }

    /// Connected components as sorted node-id lists, ordered by their
    /// smallest member.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.len()];
        let mut components = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if !seen[u] {
                        seen[u] = true;
                        comp.push(u);
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    fn path3() -> UnitDiskGraph {
        UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(1.8, 0.0),
            ],
            1.0,
        )
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let g = UnitDiskGraph::new(placement::uniform(80, 4.0, 4.0, 3), 1.0);
        for v in 0..g.len() {
            assert!(!g.are_adjacent(v, v));
            for &u in g.neighbors(v) {
                assert!(g.are_adjacent(u, v));
                assert!(g.are_adjacent(v, u));
            }
        }
    }

    #[test]
    fn adjacency_matches_distance_threshold() {
        let g = UnitDiskGraph::new(placement::uniform(60, 3.0, 3.0, 8), 1.0);
        for u in 0..g.len() {
            for v in 0..g.len() {
                if u != v {
                    assert_eq!(g.are_adjacent(u, v), g.distance(u, v) <= 1.0);
                }
            }
        }
    }

    #[test]
    fn path_graph_structure() {
        let g = path3();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path3();
        assert_eq!(g.bfs_distances(0), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 1.0);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.bfs_distances(0)[1], None);
    }

    #[test]
    fn edges_iterator_is_consistent() {
        let g = UnitDiskGraph::new(placement::uniform(40, 3.0, 3.0, 5), 1.0);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.are_adjacent(u, v));
        }
    }

    #[test]
    fn nodes_within_extends_beyond_neighbors() {
        let g = path3();
        assert_eq!(g.nodes_within(0, 1.0), vec![1]);
        assert_eq!(g.nodes_within(0, 2.0), vec![1, 2]);
    }

    #[test]
    fn with_radius_rebuilds() {
        let g = path3();
        let g2 = g.with_radius(2.0);
        assert!(g2.are_adjacent(0, 2));
        assert_eq!(g2.max_degree(), 2);
        assert_eq!(g2.edge_count(), 3);
    }

    #[test]
    fn components_partition_the_graph() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.5, 0.0),
                Point::new(20.0, 0.0),
            ],
            1.0,
        );
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), g.len());
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = path3();
        assert_eq!(g.components().len(), 1);
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = UnitDiskGraph::new(vec![], 1.0);
        assert!(e.is_empty());
        assert!(e.is_connected());
        assert_eq!(e.max_degree(), 0);
        let s = UnitDiskGraph::new(vec![Point::ORIGIN], 1.0);
        assert!(s.is_connected());
        assert_eq!(s.diameter(), Some(0));
    }
}
