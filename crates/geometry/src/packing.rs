//! Packing bounds `φ(R)` and independent-set helpers.
//!
//! The paper's constants are all expressed in terms of `φ(R)`: "the size of
//! the largest independent set in any disc of radius R > 0 around any node"
//! (§II). Footnote 5 gives the closed-form bound used throughout:
//!
//! ```text
//! φ(R) ≤ π (R + R_T/2)² / π (R_T/2)²  =  (2R/R_T + 1)²
//! ```
//!
//! and notes that "knowing the exact value of φ(R) is not required" — an
//! upper bound only shifts constants. We implement the bound, plus empirical
//! greedy packings used by the test suite to confirm the bound really is an
//! upper bound.

use crate::cast;
use crate::graph::UnitDiskGraph;
use crate::point::Point;
use crate::NodeId;

/// The paper's closed-form packing bound `φ(R) ≤ (2R/R_T + 1)²` (footnote 5),
/// rounded down to an integer.
///
/// An *independent* set here means pairwise distances exceed `r_t` (the UDG
/// independence of §II); disks of radius `r_t/2` around such nodes are
/// disjoint, and all fit in a disk of radius `R + r_t/2`.
///
/// # Panics
///
/// Panics if `r` is negative or `r_t` is not strictly positive.
///
/// # Example
///
/// ```
/// use sinr_geometry::packing::phi_bound;
///
/// assert_eq!(phi_bound(1.0, 1.0), 9);  // (2 + 1)²
/// assert_eq!(phi_bound(2.0, 1.0), 25); // (4 + 1)²
/// ```
pub fn phi_bound(r: f64, r_t: f64) -> usize {
    assert!(r >= 0.0, "packing radius must be non-negative");
    assert!(r_t > 0.0, "transmission range must be positive");
    let x = 2.0 * r / r_t + 1.0;
    cast::floor_usize(x * x)
}

/// Greedily selects a maximal set of points that are pairwise more than
/// `min_separation` apart, scanning candidates in index order.
///
/// Used to *witness* independent sets: the result is maximal (no remaining
/// point can be added) but not necessarily maximum.
pub fn greedy_packing(points: &[Point], min_separation: f64) -> Vec<NodeId> {
    let mut chosen: Vec<NodeId> = Vec::new();
    for (i, &p) in points.iter().enumerate() {
        if chosen
            .iter()
            .all(|&j| points[j].distance(p) > min_separation)
        {
            chosen.push(i);
        }
    }
    chosen
}

/// Size of the largest greedy packing (pairwise distance > `r_t`) found
/// among points within distance `r` of `center` — an empirical lower bound
/// on the true `φ(R)` of the instance.
pub fn empirical_phi(points: &[Point], center: Point, r: f64, r_t: f64) -> usize {
    let inside: Vec<Point> = points
        .iter()
        .copied()
        .filter(|p| p.distance(center) <= r)
        .collect();
    greedy_packing(&inside, r_t).len()
}

/// Whether `set` is independent in `g`: pairwise distances exceed
/// `g.radius()` (the paper's definition of an independent set, §II).
pub fn is_independent(g: &UnitDiskGraph, set: &[NodeId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if u == v || g.distance(u, v) <= g.radius() {
                return false;
            }
        }
    }
    true
}

/// Greedy maximal independent set of the UDG, scanning nodes in index order.
pub fn greedy_mis(g: &UnitDiskGraph) -> Vec<NodeId> {
    let mut in_mis = vec![false; g.len()];
    let mut blocked = vec![false; g.len()];
    let mut mis = Vec::new();
    for v in 0..g.len() {
        if !blocked[v] {
            in_mis[v] = true;
            mis.push(v);
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
            blocked[v] = true;
        }
    }
    mis
}

/// The exact maximum independent set of a *small* graph (`n ≤ 64`) by
/// branch and bound over a bitmask representation.
///
/// Exponential in the worst case; intended for validating the greedy
/// heuristics and the `φ(R)` bound on test-sized instances.
///
/// # Panics
///
/// Panics if the graph has more than 64 nodes.
pub fn exact_max_independent_set(g: &UnitDiskGraph) -> Vec<NodeId> {
    let n = g.len();
    assert!(n <= 64, "exact MIS is for small instances (n <= 64)");
    let masks: Vec<u64> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u64, |m, &u| m | (1u64 << u)))
        .collect();

    /// Returns `(size, bitmask)` of a maximum independent set within the
    /// `available` vertices. Branches on the lowest available vertex: a
    /// maximum IS either excludes it, or includes it and excludes its
    /// neighborhood.
    fn branch(available: u64, masks: &[u64]) -> (u32, u64) {
        if available == 0 {
            return (0, 0);
        }
        let v = available.trailing_zeros() as usize;
        let rest = available & !(1u64 << v);
        let (s_without, set_without) = branch(rest, masks);
        let (s_with, set_with) = branch(rest & !masks[v], masks);
        if 1 + s_with >= s_without {
            (1 + s_with, set_with | (1u64 << v))
        } else {
            (s_without, set_without)
        }
    }

    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let (_, set) = branch(all, &masks);
    (0..n).filter(|&v| set & (1u64 << v) != 0).collect()
}

/// Whether `set` is a *dominating* independent set: independent, and every
/// node is in the set or adjacent to a member.
pub fn is_maximal_independent(g: &UnitDiskGraph, set: &[NodeId]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    let mut covered = vec![false; g.len()];
    for &v in set {
        covered[v] = true;
        for &u in g.neighbors(v) {
            covered[u] = true;
        }
    }
    covered.iter().all(|&c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;

    #[test]
    fn phi_bound_closed_form() {
        assert_eq!(phi_bound(0.0, 1.0), 1);
        assert_eq!(phi_bound(0.5, 1.0), 4);
        assert_eq!(phi_bound(1.0, 2.0), 4);
        assert_eq!(phi_bound(3.0, 1.0), 49);
    }

    #[test]
    fn phi_bound_scales_with_ratio_only() {
        assert_eq!(phi_bound(2.0, 1.0), phi_bound(4.0, 2.0));
    }

    #[test]
    fn empirical_phi_never_exceeds_bound() {
        // Dense instance: the greedy packing inside any disk must respect
        // the closed-form bound.
        let pts = placement::uniform(600, 4.0, 4.0, 17);
        for &r in &[0.5, 1.0, 2.0] {
            for &c in pts.iter().take(25) {
                let emp = empirical_phi(&pts, c, r, 1.0);
                assert!(
                    emp <= phi_bound(r, 1.0),
                    "empirical {emp} > bound {} at r={r}",
                    phi_bound(r, 1.0)
                );
            }
        }
    }

    #[test]
    fn greedy_packing_is_separated_and_maximal() {
        let pts = placement::uniform(300, 3.0, 3.0, 23);
        let sep = 0.7;
        let chosen = greedy_packing(&pts, sep);
        for (i, &a) in chosen.iter().enumerate() {
            for &b in &chosen[i + 1..] {
                assert!(pts[a].distance(pts[b]) > sep);
            }
        }
        // Maximality: every point is within `sep` of some chosen point.
        for p in &pts {
            assert!(chosen.iter().any(|&c| pts[c].distance(*p) <= sep));
        }
    }

    #[test]
    fn greedy_mis_is_maximal_independent() {
        let g = UnitDiskGraph::new(placement::uniform(150, 4.0, 4.0, 31), 1.0);
        let mis = greedy_mis(&g);
        assert!(is_maximal_independent(&g, &mis));
    }

    #[test]
    fn is_independent_rejects_adjacent_pairs() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(3.0, 0.0),
            ],
            1.0,
        );
        assert!(is_independent(&g, &[0, 2]));
        assert!(!is_independent(&g, &[0, 1]));
        assert!(!is_independent(&g, &[0, 0]));
        assert!(is_independent(&g, &[]));
    }

    #[test]
    fn exact_mis_is_independent_and_at_least_greedy() {
        for seed in 0..5 {
            let g = UnitDiskGraph::new(placement::uniform(18, 2.5, 2.5, seed), 1.0);
            let exact = exact_max_independent_set(&g);
            assert!(is_independent(&g, &exact), "seed {seed}");
            assert!(
                exact.len() >= greedy_mis(&g).len(),
                "seed {seed}: exact beats or ties greedy"
            );
        }
    }

    #[test]
    fn exact_mis_on_known_graphs() {
        // Path of 5 (spacing 0.9): optimum is the 3 alternating nodes.
        let g = UnitDiskGraph::new(
            (0..5).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect(),
            1.0,
        );
        assert_eq!(exact_max_independent_set(&g).len(), 3);
        // Triangle: optimum 1.
        let t = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(0.25, 0.4),
            ],
            1.0,
        );
        assert_eq!(exact_max_independent_set(&t).len(), 1);
    }

    #[test]
    fn exact_mis_validates_phi_bound() {
        // The true packing number inside a radius-R disk never exceeds the
        // closed-form φ(R): check on dense instances clipped to a disk.
        let pts = placement::uniform(26, 1.6, 1.6, 9);
        let g = UnitDiskGraph::new(pts, 1.0);
        let exact = exact_max_independent_set(&g);
        // All points fit in a disk of radius ~1.2 around the center.
        assert!(exact.len() <= phi_bound(1.6, 1.0));
    }

    #[test]
    fn mis_on_empty_graph() {
        let g = UnitDiskGraph::new(vec![], 1.0);
        assert!(greedy_mis(&g).is_empty());
        assert!(is_maximal_independent(&g, &[]));
    }
}
