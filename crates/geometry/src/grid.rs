//! A uniform spatial hash grid for fast fixed-radius range queries.
//!
//! Both unit-disk-graph construction and SINR interference bookkeeping need
//! "all nodes within distance r of p" queries. A uniform grid with cell side
//! equal to the dominant query radius answers such queries in time
//! proportional to the number of candidates, instead of `O(n)` per query.

use crate::point::Point;
use crate::NodeId;
use std::collections::HashMap;

/// A uniform spatial hash grid over a set of points.
///
/// Construction is `O(n)`; a range query visits only the grid cells that
/// intersect the query disk.
///
/// # Example
///
/// ```
/// use sinr_geometry::{Point, SpatialGrid};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(5.0, 5.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let near = grid.within(&pts, Point::new(0.0, 0.0), 1.0);
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with the given cell side.
    ///
    /// `cell` should typically equal the most common query radius; any
    /// positive value is correct, only performance differs.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and strictly positive, or if any point
    /// has a non-finite coordinate.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell side must be positive and finite"
        );
        let mut cells: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        for (id, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {id} has non-finite coordinates");
            cells.entry(Self::key(*p, cell)).or_default().push(id);
        }
        SpatialGrid { cell, cells }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The cell side the grid was built with.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Ids of all points within Euclidean distance `radius` (inclusive) of
    /// `center`, in ascending id order.
    ///
    /// `points` must be the same slice the grid was built from.
    pub fn within(&self, points: &[Point], center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(points, center, radius, |id| out.push(id));
        out.sort_unstable();
        out
    }

    /// Calls `f` for every point id within distance `radius` (inclusive) of
    /// `center`, in unspecified order.
    ///
    /// `points` must be the same slice the grid was built from.
    pub fn for_each_within<F: FnMut(NodeId)>(
        &self,
        points: &[Point],
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        assert!(radius >= 0.0, "query radius must be non-negative");
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(center, self.cell);
        for gx in (cx - reach)..=(cx + reach) {
            for gy in (cy - reach)..=(cy + reach) {
                if let Some(ids) = self.cells.get(&(gx, gy)) {
                    for &id in ids {
                        if points[id].distance_squared(center) <= r2 {
                            f(id);
                        }
                    }
                }
            }
        }
    }

    /// Counts points within distance `radius` (inclusive) of `center`.
    pub fn count_within(&self, points: &[Point], center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(points, center, radius, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(points: &[Point], center: Point, radius: f64) -> Vec<NodeId> {
        let r2 = radius * radius;
        (0..points.len())
            .filter(|&i| points[i].distance_squared(center) <= r2)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_fixed_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.1, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-3.0, 4.0),
            Point::new(2.0, 2.0),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        for &r in &[0.0, 0.5, 1.0, 1.5, 10.0] {
            for &c in &pts {
                assert_eq!(grid.within(&pts, c, r), brute_within(&pts, c, r));
            }
        }
    }

    #[test]
    fn query_radius_larger_than_cell() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let grid = SpatialGrid::build(&pts, 0.3);
        let center = Point::new(4.5, 4.5);
        assert_eq!(
            grid.within(&pts, center, 3.7),
            brute_within(&pts, center, 3.7)
        );
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(-1.5, -1.5)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.within(&pts, Point::new(-1.0, -1.0), 0.8), vec![0, 1]);
    }

    #[test]
    fn inclusive_boundary() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.within(&pts, pts[0], 1.0), vec![0, 1]);
    }

    #[test]
    fn count_matches_within_len() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.37) % 5.0, (i as f64 * 0.71) % 5.0))
            .collect();
        let grid = SpatialGrid::build(&pts, 1.0);
        let c = Point::new(2.5, 2.5);
        assert_eq!(
            grid.count_within(&pts, c, 2.0),
            grid.within(&pts, c, 2.0).len()
        );
    }

    #[test]
    fn empty_point_set() {
        let pts: Vec<Point> = Vec::new();
        let grid = SpatialGrid::build(&pts, 1.0);
        assert!(grid.within(&pts, Point::ORIGIN, 100.0).is_empty());
        assert_eq!(grid.occupied_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let _ = SpatialGrid::build(&[], 0.0);
    }
}
