//! A uniform spatial hash grid for fast fixed-radius range queries.
//!
//! Both unit-disk-graph construction and SINR interference bookkeeping need
//! "all nodes within distance r of p" queries. A uniform grid with cell side
//! equal to the dominant query radius answers such queries in time
//! proportional to the number of candidates, instead of `O(n)` per query.

use crate::cast;
use crate::point::Point;
use crate::NodeId;
use sinr_rng::DetHashMap;

/// A uniform spatial hash grid over a set of points.
///
/// Construction is `O(n)`; a range query visits only the grid cells that
/// intersect the query disk.
///
/// # Example
///
/// ```
/// use sinr_geometry::{Point, SpatialGrid};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(5.0, 5.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let near = grid.within(&pts, Point::new(0.0, 0.0), 1.0);
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cells: DetHashMap<GridKey, Vec<NodeId>>,
    /// Keys of currently non-empty cells, in insertion order. Lets
    /// [`SpatialGrid::clear`] reset an incrementally-filled grid without
    /// touching (or deallocating) cells that were never occupied.
    occupied: Vec<GridKey>,
}

/// Integer cell coordinates `(floor(x/cell), floor(y/cell))`.
pub type GridKey = (i64, i64);

impl SpatialGrid {
    /// Builds a grid over `points` with the given cell side.
    ///
    /// `cell` should typically equal the most common query radius; any
    /// positive value is correct, only performance differs.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and strictly positive, or if any point
    /// has a non-finite coordinate.
    pub fn build(points: &[Point], cell: f64) -> Self {
        let mut grid = SpatialGrid::empty(cell);
        for (id, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {id} has non-finite coordinates");
            grid.insert(id, *p);
        }
        grid
    }

    /// Creates an empty grid with the given cell side, for incremental use
    /// via [`SpatialGrid::insert`] / [`SpatialGrid::clear`] (e.g. bucketing
    /// the per-slot transmitter set without reallocating).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and strictly positive.
    pub fn empty(cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell side must be positive and finite"
        );
        SpatialGrid {
            cell,
            cells: DetHashMap::default(),
            occupied: Vec::new(),
        }
    }

    /// Inserts point `id` at position `p`.
    ///
    /// Ids within a cell keep insertion order; inserting the same id twice
    /// simply buckets it twice.
    // lint:hot — refilled for every transmitter set, every slot
    pub fn insert(&mut self, id: NodeId, p: Point) {
        let key = Self::key(p, self.cell);
        let bucket = self.cells.entry(key).or_default();
        if bucket.is_empty() {
            self.occupied.push(key);
        }
        bucket.push(id);
    }

    /// Removes every point while keeping all allocated buckets, so a
    /// subsequent refill is allocation-free in steady state.
    // lint:hot — reset once per slot; must not deallocate buckets
    pub fn clear(&mut self) {
        for key in self.occupied.drain(..) {
            if let Some(bucket) = self.cells.get_mut(&key) {
                bucket.clear();
            }
        }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> GridKey {
        (cast::floor_i64(p.x / cell), cast::floor_i64(p.y / cell))
    }

    /// The cell side the grid was built with.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// The cell key of the cell containing `p`.
    pub fn key_of(&self, p: Point) -> GridKey {
        Self::key(p, self.cell)
    }

    /// Ids bucketed in cell `key` (empty slice for untouched cells).
    pub fn ids_in_cell(&self, key: GridKey) -> &[NodeId] {
        self.cells.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.occupied.len()
    }

    /// Keys of all non-empty cells, in first-insertion order.
    ///
    /// Combined with [`SpatialGrid::ids_in_cell`] this lets a caller
    /// snapshot the whole occupancy in `O(occupied)` — the SINR resolver
    /// classifies every occupied cell as near/far by integer cell distance
    /// instead of probing the `(2·reach+1)²` window cell by cell.
    pub fn occupied_keys(&self) -> &[GridKey] {
        &self.occupied
    }

    /// Total number of bucketed points.
    pub fn len(&self) -> usize {
        self.occupied
            .iter()
            .map(|k| self.ids_in_cell(*k).len())
            .sum()
    }

    /// Whether the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Calls `f` with each non-empty cell in the `(2·reach + 1)²` square
    /// window of cells centered on `center`'s cell, in deterministic
    /// row-major key order.
    ///
    /// Every point within Euclidean distance `reach · cell_side` of
    /// `center` lies inside the window, and every point *outside* the
    /// window is farther than `reach · cell_side` away — the invariant the
    /// SINR resolver's near/far interference split relies on.
    pub fn for_each_cell_in_window<F: FnMut(&[NodeId])>(
        &self,
        center: Point,
        reach: i64,
        mut f: F,
    ) {
        debug_assert!(reach >= 0, "window reach must be non-negative");
        let (cx, cy) = self.key_of(center);
        for gx in (cx - reach)..=(cx + reach) {
            for gy in (cy - reach)..=(cy + reach) {
                if let Some(ids) = self.cells.get(&(gx, gy)) {
                    if !ids.is_empty() {
                        f(ids);
                    }
                }
            }
        }
    }

    /// Ids of all points within Euclidean distance `radius` (inclusive) of
    /// `center`, in ascending id order.
    ///
    /// `points` must be the same slice the grid was built from.
    pub fn within(&self, points: &[Point], center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(points, center, radius, |id| out.push(id));
        out.sort_unstable();
        out
    }

    /// Calls `f` for every point id within distance `radius` (inclusive) of
    /// `center`, in unspecified order.
    ///
    /// `points` must be the same slice the grid was built from.
    pub fn for_each_within<F: FnMut(NodeId)>(
        &self,
        points: &[Point],
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        assert!(radius >= 0.0, "query radius must be non-negative");
        let r2 = radius * radius;
        let reach = cast::ceil_i64(radius / self.cell);
        let (cx, cy) = Self::key(center, self.cell);
        for gx in (cx - reach)..=(cx + reach) {
            for gy in (cy - reach)..=(cy + reach) {
                if let Some(ids) = self.cells.get(&(gx, gy)) {
                    for &id in ids {
                        if points[id].distance_squared(center) <= r2 {
                            f(id);
                        }
                    }
                }
            }
        }
    }

    /// Counts points within distance `radius` (inclusive) of `center`.
    pub fn count_within(&self, points: &[Point], center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(points, center, radius, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(points: &[Point], center: Point, radius: f64) -> Vec<NodeId> {
        let r2 = radius * radius;
        (0..points.len())
            .filter(|&i| points[i].distance_squared(center) <= r2)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_fixed_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.1, 0.0),
            Point::new(0.0, 1.0),
            Point::new(-3.0, 4.0),
            Point::new(2.0, 2.0),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        for &r in &[0.0, 0.5, 1.0, 1.5, 10.0] {
            for &c in &pts {
                assert_eq!(grid.within(&pts, c, r), brute_within(&pts, c, r));
            }
        }
    }

    #[test]
    fn query_radius_larger_than_cell() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let grid = SpatialGrid::build(&pts, 0.3);
        let center = Point::new(4.5, 4.5);
        assert_eq!(
            grid.within(&pts, center, 3.7),
            brute_within(&pts, center, 3.7)
        );
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(-1.5, -1.5)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.within(&pts, Point::new(-1.0, -1.0), 0.8), vec![0, 1]);
    }

    #[test]
    fn inclusive_boundary() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.within(&pts, pts[0], 1.0), vec![0, 1]);
    }

    #[test]
    fn count_matches_within_len() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.37) % 5.0, (i as f64 * 0.71) % 5.0))
            .collect();
        let grid = SpatialGrid::build(&pts, 1.0);
        let c = Point::new(2.5, 2.5);
        assert_eq!(
            grid.count_within(&pts, c, 2.0),
            grid.within(&pts, c, 2.0).len()
        );
    }

    #[test]
    fn empty_point_set() {
        let pts: Vec<Point> = Vec::new();
        let grid = SpatialGrid::build(&pts, 1.0);
        assert!(grid.within(&pts, Point::ORIGIN, 100.0).is_empty());
        assert_eq!(grid.occupied_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let _ = SpatialGrid::build(&[], 0.0);
    }

    #[test]
    fn incremental_insert_matches_build() {
        let pts = vec![
            Point::new(0.2, 0.3),
            Point::new(-1.4, 2.0),
            Point::new(3.3, 3.3),
        ];
        let built = SpatialGrid::build(&pts, 1.0);
        let mut inc = SpatialGrid::empty(1.0);
        for (id, &p) in pts.iter().enumerate() {
            inc.insert(id, p);
        }
        assert_eq!(inc.occupied_cells(), built.occupied_cells());
        assert_eq!(inc.occupied_keys(), built.occupied_keys());
        assert_eq!(inc.occupied_keys().len(), 3, "three distinct cells");
        assert_eq!(inc.len(), 3);
        for &p in &pts {
            assert_eq!(
                inc.ids_in_cell(inc.key_of(p)),
                built.ids_in_cell(built.key_of(p))
            );
        }
    }

    #[test]
    fn clear_empties_but_keeps_buckets_reusable() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(2.5, 0.5)];
        let mut grid = SpatialGrid::build(&pts, 1.0);
        assert!(!grid.is_empty());
        grid.clear();
        assert!(grid.is_empty());
        assert_eq!(grid.occupied_cells(), 0);
        assert!(grid.ids_in_cell(grid.key_of(pts[0])).is_empty());
        // Refill: subset of ids, same answers as a fresh build over them.
        grid.insert(1, pts[1]);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.ids_in_cell(grid.key_of(pts[1])), &[1]);
        assert_eq!(grid.within(&pts, pts[1], 0.1), vec![1]);
    }

    #[test]
    fn window_covers_disk_and_excludes_far_points() {
        // Deterministic scatter over ~8×8 cells.
        let pts: Vec<Point> = (0..120)
            .map(|i| Point::new((i as f64 * 0.61) % 8.0, (i as f64 * 0.37) % 8.0))
            .collect();
        let grid = SpatialGrid::build(&pts, 1.0);
        for &reach in &[0i64, 1, 3] {
            for &c in pts.iter().step_by(17) {
                let mut seen = Vec::new();
                grid.for_each_cell_in_window(c, reach, |ids| seen.extend_from_slice(ids));
                seen.sort_unstable();
                // Everything within reach·cell is inside the window...
                for id in brute_within(&pts, c, reach as f64 * grid.cell_side()) {
                    assert!(seen.binary_search(&id).is_ok(), "missed near point {id}");
                }
                // ...and everything outside is strictly farther than reach·cell.
                for (id, &p) in pts.iter().enumerate() {
                    if seen.binary_search(&id).is_err() {
                        assert!(p.distance(c) > reach as f64 * grid.cell_side());
                    }
                }
            }
        }
    }

    #[test]
    fn window_cells_visited_in_deterministic_order() {
        let pts = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(0.5, 1.5),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        let collect = || {
            let mut order = Vec::new();
            grid.for_each_cell_in_window(pts[0], 2, |ids| order.push(ids.to_vec()));
            order
        };
        assert_eq!(collect(), collect());
        assert_eq!(collect(), vec![vec![0], vec![2], vec![1]]);
    }
}
