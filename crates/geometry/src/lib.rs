#![warn(missing_docs)]

//! Geometric substrate for the SINR node-coloring reproduction.
//!
//! The paper models a wireless network as nodes placed in the Euclidean
//! plane; communication range `R_T` induces a unit-disk graph (UDG), and all
//! of the algorithm's constants are driven by *packing bounds* `φ(R)` — the
//! maximum number of mutually independent nodes inside a disk of radius `R`.
//!
//! This crate provides:
//!
//! * [`Point`] — a 2-D point with distance arithmetic.
//! * [`Bbox`] — axis-aligned bounding boxes for deployment areas.
//! * [`SpatialGrid`] — a uniform hash grid supporting fast range queries,
//!   used both for UDG construction and for interference bookkeeping.
//! * [`CellGrid`] — a dense grid bound to a fixed point set with `O(1)`
//!   incremental membership updates, the SINR resolver's steady-state
//!   transmitter index.
//! * [`placement`] — deterministic, seeded node-placement generators
//!   (uniform random, jittered grid, clustered, line).
//! * [`UnitDiskGraph`] — the communication graph `G = (V, E, R_T)`.
//! * [`packing`] — the packing bound `φ(R)` from the paper (footnote 5) and
//!   greedy maximal-independent-set helpers used to validate it.
//! * [`greedy`] — a centralized greedy `(Δ+1)`-coloring baseline.
//!
//! # Example
//!
//! ```
//! use sinr_geometry::{placement, UnitDiskGraph};
//!
//! let pts = placement::uniform(64, 10.0, 10.0, 42);
//! let g = UnitDiskGraph::new(pts, 1.0);
//! assert_eq!(g.len(), 64);
//! assert!(g.max_degree() < 64);
//! ```

pub mod bbox;
pub mod cast;
pub mod cellgrid;
pub mod graph;
pub mod greedy;
pub mod grid;
pub mod packing;
pub mod placement;
pub mod point;

pub use bbox::Bbox;
pub use cellgrid::{CellEntry, CellGrid};
pub use graph::UnitDiskGraph;
pub use grid::{GridKey, SpatialGrid};
pub use point::Point;

/// Identifier of a node in a placement / graph: the index into the point set.
pub type NodeId = usize;
