//! 2-D points and Euclidean distance, the `δ(u, v)` of the paper.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point in the 2-D Euclidean plane.
///
/// The paper places all nodes "arbitrarily in the … Euclidean space" (§II);
/// every geometric quantity (transmission range `R_T`, interference radius
/// `R_I`, guard distance `d·R_T`) is a Euclidean distance between points.
///
/// # Example
///
/// ```
/// use sinr_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance `δ(self, other)`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper than [`Point::distance`] when only
    /// comparisons against a squared threshold are needed.
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm of the point seen as a vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        self.distance(Point::ORIGIN)
    }

    /// Midpoint of the segment `[self, other]`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Whether both coordinates are finite (not NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(-3.5, 7.25);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(0.3, -0.7);
        let b = Point::new(-1.1, 2.2);
        let d = a.distance(b);
        assert!((a.distance_squared(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        let m = a.midpoint(b);
        assert!((m.distance(a) - m.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Point::new(1.5, -2.5);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
