//! A dense, incrementally-maintained cell grid over a *fixed* point set.
//!
//! [`SpatialGrid`](crate::SpatialGrid) hashes arbitrary points into sparse
//! buckets and is rebuilt from scratch for every query set. The SINR
//! resolver's steady state is different: the *point set is immutable* (node
//! positions never move) while the *member subset* (the per-slot transmitter
//! set) churns. [`CellGrid`] exploits that: it binds once to the point set —
//! computing the bounding box, a dense `rows × cols` cell table, and every
//! node's home cell — and afterwards supports `O(1)` membership updates:
//!
//! * each cell stores its members as packed [`CellEntry`] records
//!   (`x`, `y`, `id`), so interference summation streams one contiguous
//!   slice per cell instead of chasing `positions[id]` through the whole
//!   point array — the structure-of-arrays layout the resolver reads;
//! * per-node `node_cell` / `node_slot` indices make insert and
//!   swap-removal constant-time and allocation-free in steady state;
//! * the occupied-cell list tolerates stale (emptied) entries and compacts
//!   itself once stale entries outnumber live ones, keeping scans linear in
//!   the number of *live* cells.
//!
//! Cell coordinates are plain integers into the dense table, so the
//! resolver's near/far classification is index arithmetic — no hashing.
//!
//! # Example
//!
//! ```
//! use sinr_geometry::{CellGrid, Point};
//!
//! let pts = vec![Point::new(0.2, 0.2), Point::new(0.4, 0.1), Point::new(3.5, 3.5)];
//! let mut grid = CellGrid::try_bind(&pts, 1.0).unwrap();
//! grid.insert(0);
//! grid.insert(2);
//! assert_eq!(grid.len(), 2);
//! assert!(grid.contains(0) && !grid.contains(1));
//! grid.remove(0);
//! assert_eq!(grid.len(), 1);
//! ```

use crate::cast;
use crate::point::Point;
use crate::NodeId;

/// One grid member: its coordinates copied next to its id, so per-cell
/// scans touch a single contiguous slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEntry {
    /// x coordinate of the member (copied from the bound point set).
    pub x: f64,
    /// y coordinate of the member.
    pub y: f64,
    /// The member's node id.
    pub id: NodeId,
}

/// Sentinel for "node is not currently a member".
const NOT_MEMBER: u32 = u32::MAX;

/// Dense grids refuse to allocate more than `4·n + 4096` cells — beyond
/// that (pathologically scattered point sets) a dense table wastes memory
/// and scan time, and callers should fall back to per-query structures.
pub const MAX_DENSE_CELLS_PER_NODE: usize = 4;

/// A dense cell grid bound to a fixed point set (see module docs).
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    cols: i64,
    rows: i64,
    /// Member records per cell, indexed densely by `cy * cols + cx`.
    cells: Vec<Vec<CellEntry>>,
    /// Cell indices that may be non-empty; may contain stale (emptied)
    /// entries, compacted once they outnumber live cells.
    occupied: Vec<u32>,
    /// Whether a cell index currently sits in `occupied`.
    in_occupied: Vec<bool>,
    /// Number of currently non-empty cells (`occupied` minus stale).
    live_cells: usize,
    /// Home cell of every node of the bound point set.
    node_cell: Vec<u32>,
    /// Position of each member within its cell's entry list, or
    /// [`NOT_MEMBER`].
    node_slot: Vec<u32>,
    /// Coordinates copied from the bound point set (flat, id-indexed).
    xs: Vec<f64>,
    ys: Vec<f64>,
    members: usize,
    /// Bound-node population of the densest 3×3 cell neighborhood.
    max_window_pop: usize,
}

impl CellGrid {
    /// Binds a grid of side `cell` to `points`, with no members yet.
    ///
    /// Returns `None` when the point set's bounding box would need more
    /// than `4·n + 4096` cells — a dense table would be mostly empty air;
    /// callers should treat that as "grid not worth it" and fall back.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and strictly positive, or any point
    /// has a non-finite coordinate.
    pub fn try_bind(points: &[Point], cell: f64) -> Option<CellGrid> {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell side must be positive and finite"
        );
        let n = points.len();
        let mut min_x = 0.0f64;
        let mut min_y = 0.0f64;
        let mut max_x = 0.0f64;
        let mut max_y = 0.0f64;
        for (id, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {id} has non-finite coordinates");
            if id == 0 {
                (min_x, min_y, max_x, max_y) = (p.x, p.y, p.x, p.y);
            } else {
                min_x = min_x.min(p.x);
                min_y = min_y.min(p.y);
                max_x = max_x.max(p.x);
                max_y = max_y.max(p.y);
            }
        }
        let cols = (cast::floor_i64((max_x - min_x) / cell) + 1).max(1);
        let rows = (cast::floor_i64((max_y - min_y) / cell) + 1).max(1);
        let cell_count = cols.checked_mul(rows)?;
        let budget = i64::try_from(
            MAX_DENSE_CELLS_PER_NODE
                .saturating_mul(n)
                .saturating_add(4096),
        )
        .unwrap_or(i64::MAX);
        if cell_count > budget {
            return None;
        }
        let cell_count = usize::try_from(cell_count).ok()?;
        // Cell indices and per-cell slots are packed into `u32` (with
        // `u32::MAX` reserved as the sentinel); refuse point sets or grids
        // that could not be indexed losslessly. Unreachable in practice —
        // 2³² nodes or cells would need hundreds of GiB — but it makes
        // every `as u32` below provably in range.
        if u32::try_from(cell_count).is_err() || u32::try_from(n).is_err() {
            return None;
        }
        let mut node_cell = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for p in points {
            let cx = cast::floor_i64((p.x - min_x) / cell).clamp(0, cols - 1);
            let cy = cast::floor_i64((p.y - min_y) / cell).clamp(0, rows - 1);
            node_cell.push((cy * cols + cx) as u32);
            xs.push(p.x);
            ys.push(p.y);
        }
        // Size each bucket for every node that maps to its cell — the
        // hard membership bound, since a node is inserted at most once.
        // Total reserved capacity is exactly n entries, and no insert
        // can ever grow a bucket afterwards.
        let mut bucket_cap = vec![0usize; cell_count];
        for &c in &node_cell {
            bucket_cap[c as usize] += 1;
        }
        // The densest 3×3 cell neighborhood, by bound nodes. Callers that
        // collect potential senders (the Chebyshev ≤ 1 cells around a
        // receiver) can pre-size their buffers to this hard bound and
        // never grow them during a scan.
        let mut max_window_pop = 0usize;
        for cy in 0..rows {
            for cx in 0..cols {
                let mut pop = 0usize;
                for ny in (cy - 1).max(0)..=(cy + 1).min(rows - 1) {
                    for nx in (cx - 1).max(0)..=(cx + 1).min(cols - 1) {
                        pop += bucket_cap[(ny * cols + nx) as usize];
                    }
                }
                max_window_pop = max_window_pop.max(pop);
            }
        }
        let cells: Vec<Vec<CellEntry>> = bucket_cap.into_iter().map(Vec::with_capacity).collect();
        Some(CellGrid {
            cell,
            cols,
            rows,
            cells,
            occupied: Vec::with_capacity(cell_count.min(n)),
            in_occupied: vec![false; cell_count],
            live_cells: 0,
            node_cell,
            node_slot: vec![NOT_MEMBER; n],
            xs,
            ys,
            members: 0,
            max_window_pop,
        })
    }

    /// Nodes of the bound point set in the densest 3×3 cell neighborhood
    /// — an upper bound on how many members any Chebyshev ≤ 1 window scan
    /// can yield, fixed at bind time.
    pub fn max_window_population(&self) -> usize {
        self.max_window_pop
    }

    /// The cell side the grid was bound with.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    /// Number of nodes in the bound point set.
    pub fn bound_len(&self) -> usize {
        self.node_cell.len()
    }

    /// Grid dimensions as `(rows, cols)`.
    pub fn dims(&self) -> (i64, i64) {
        (self.rows, self.cols)
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the grid has no members.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Whether node `id` is currently a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.node_slot[id] != NOT_MEMBER
    }

    /// Home cell index of node `id` (valid whether or not it is a member).
    pub fn cell_of(&self, id: NodeId) -> u32 {
        self.node_cell[id]
    }

    /// Flat home-cell slice for the whole bound point set, id-indexed.
    pub fn node_cells(&self) -> &[u32] {
        &self.node_cell
    }

    /// Integer cell coordinates `(cx, cy)` of a dense cell index.
    pub fn cell_coords(&self, cell: u32) -> (i64, i64) {
        let c = cell as i64;
        (c % self.cols, c / self.cols)
    }

    /// Members of cell `cell`, as packed records.
    pub fn entries(&self, cell: u32) -> &[CellEntry] {
        &self.cells[cell as usize]
    }

    /// Cell indices that may hold members (may include stale empties;
    /// check [`CellGrid::entries`] for emptiness when scanning).
    pub fn occupied(&self) -> &[u32] {
        &self.occupied
    }

    /// Number of currently non-empty cells.
    pub fn live_cells(&self) -> usize {
        self.live_cells
    }

    /// Verifies that `points` still looks like the bound point set — a
    /// cheap spot check (length plus first/last coordinates), relied on by
    /// callers that cache a `CellGrid` keyed on a borrowed graph.
    pub fn binds(&self, points: &[Point]) -> bool {
        if points.len() != self.node_cell.len() {
            return false;
        }
        match (points.first(), points.last()) {
            (Some(f), Some(l)) => {
                let n = points.len();
                f.x == self.xs[0]
                    && f.y == self.ys[0]
                    && l.x == self.xs[n - 1]
                    && l.y == self.ys[n - 1]
            }
            _ => true,
        }
    }

    /// Adds node `id` as a member.
    ///
    /// Steady-state allocation-free: entry vectors retain capacity across
    /// remove/insert cycles, so only first-time cell growth allocates.
    ///
    /// # Panics
    ///
    /// Debug-panics if `id` is already a member (callers dedupe).
    // lint:hot — delta-apply path, runs once per started transmitter per slot
    pub fn insert(&mut self, id: NodeId) {
        debug_assert!(!self.contains(id), "node {id} inserted twice");
        let cell = self.node_cell[id] as usize;
        let bucket = &mut self.cells[cell];
        if bucket.is_empty() {
            self.live_cells += 1;
            if !self.in_occupied[cell] {
                self.in_occupied[cell] = true;
                self.occupied.push(cell as u32);
            }
        }
        self.node_slot[id] = bucket.len() as u32;
        bucket.push(CellEntry {
            x: self.xs[id],
            y: self.ys[id],
            id,
        });
        self.members += 1;
    }

    /// Removes node `id` from membership; returns `false` (leaving the
    /// grid untouched) if it was not a member — callers use that as the
    /// signal that an externally supplied delta is inconsistent.
    // lint:hot — delta-apply path, runs once per stopped transmitter per slot
    pub fn remove(&mut self, id: NodeId) -> bool {
        let slot = self.node_slot[id];
        if slot == NOT_MEMBER {
            return false;
        }
        let cell = self.node_cell[id] as usize;
        let bucket = &mut self.cells[cell];
        bucket.swap_remove(slot as usize);
        if let Some(moved) = bucket.get(slot as usize) {
            self.node_slot[moved.id] = slot;
        }
        if bucket.is_empty() {
            self.live_cells -= 1;
        }
        self.node_slot[id] = NOT_MEMBER;
        self.members -= 1;
        true
    }

    /// Removes every member while keeping all cell capacity (so a refill
    /// allocates nothing), and drops stale occupied entries.
    pub fn clear_members(&mut self) {
        for &c in &self.occupied {
            let bucket = &mut self.cells[c as usize];
            for e in bucket.iter() {
                self.node_slot[e.id] = NOT_MEMBER;
            }
            bucket.clear();
            self.in_occupied[c as usize] = false;
        }
        self.occupied.clear();
        self.live_cells = 0;
        self.members = 0;
    }

    /// Drops stale (emptied) cells from the occupied list. Called by
    /// [`CellGrid::maintain`]; also useful after a bulk rebuild.
    pub fn compact_occupied(&mut self) {
        let cells = &self.cells;
        let in_occupied = &mut self.in_occupied;
        self.occupied.retain(|&c| {
            if cells[c as usize].is_empty() {
                in_occupied[c as usize] = false;
                false
            } else {
                true
            }
        });
    }

    /// Compacts the occupied list once stale entries outnumber live cells
    /// (amortized `O(1)` per membership update). Call once per batch of
    /// updates.
    pub fn maintain(&mut self) {
        if self.occupied.len() > 2 * self.live_cells + 16 {
            self.compact_occupied();
        }
    }

    /// Calls `f(cell_index, chebyshev_cell_distance)` for every dense cell
    /// within Chebyshev distance `reach` of `cell` (clipped to the grid),
    /// in row-major order. Pure index arithmetic — visits empty cells too;
    /// intended for stamping passes where the caller filters.
    pub fn for_each_window_cell<F: FnMut(u32, i64)>(&self, cell: u32, reach: i64, mut f: F) {
        debug_assert!(reach >= 0, "window reach must be non-negative");
        let (cx, cy) = self.cell_coords(cell);
        let x0 = (cx - reach).max(0);
        let x1 = (cx + reach).min(self.cols - 1);
        let y0 = (cy - reach).max(0);
        let y1 = (cy + reach).min(self.rows - 1);
        for gy in y0..=y1 {
            let base = gy * self.cols;
            let dy = (gy - cy).abs();
            for gx in x0..=x1 {
                f((base + gx) as u32, dy.max((gx - cx).abs()));
            }
        }
    }

    /// Chebyshev cell distance between two dense cell indices.
    pub fn cheb(&self, a: u32, b: u32) -> i64 {
        let (ax, ay) = self.cell_coords(a);
        let (bx, by) = self.cell_coords(b);
        (ax - bx).abs().max((ay - by).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(0.2, 0.2),
            Point::new(0.4, 0.1), // same cell as 0
            Point::new(1.5, 0.5),
            Point::new(0.5, 2.5),
            Point::new(3.9, 3.9),
        ]
    }

    #[test]
    fn bind_assigns_home_cells() {
        let g = CellGrid::try_bind(&pts(), 1.0).unwrap();
        assert_eq!(g.bound_len(), 5);
        assert_eq!(g.cell_of(0), g.cell_of(1));
        assert_ne!(g.cell_of(0), g.cell_of(2));
        let (rows, cols) = g.dims();
        assert_eq!((rows, cols), (4, 4));
        assert!(g.is_empty());
        // Coordinates round-trip through the dense index.
        for id in 0..5 {
            let (cx, cy) = g.cell_coords(g.cell_of(id));
            assert!(cx >= 0 && cx < cols && cy >= 0 && cy < rows);
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = CellGrid::try_bind(&pts(), 1.0).unwrap();
        g.insert(0);
        g.insert(1);
        g.insert(4);
        assert_eq!(g.len(), 3);
        assert_eq!(g.live_cells(), 2);
        assert!(g.contains(1));
        let cell0 = g.cell_of(0);
        assert_eq!(g.entries(cell0).len(), 2);
        assert!(g.remove(0));
        // Swap-removal keeps node 1 reachable at its new slot.
        assert!(g.contains(1));
        assert_eq!(g.entries(cell0).len(), 1);
        assert_eq!(g.entries(cell0)[0].id, 1);
        assert!(!g.remove(0), "double remove reports inconsistency");
        assert!(g.remove(1));
        assert_eq!(g.live_cells(), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn entries_carry_coordinates() {
        let p = pts();
        let mut g = CellGrid::try_bind(&p, 1.0).unwrap();
        g.insert(3);
        let e = g.entries(g.cell_of(3))[0];
        assert_eq!((e.x, e.y, e.id), (p[3].x, p[3].y, 3));
    }

    #[test]
    fn clear_members_resets_everything() {
        let mut g = CellGrid::try_bind(&pts(), 1.0).unwrap();
        for id in 0..5 {
            g.insert(id);
        }
        g.clear_members();
        assert!(g.is_empty());
        assert_eq!(g.live_cells(), 0);
        assert!(g.occupied().is_empty());
        for id in 0..5 {
            assert!(!g.contains(id));
        }
        g.insert(2); // reusable after clearing
        assert_eq!(g.entries(g.cell_of(2)).len(), 1);
    }

    #[test]
    fn occupied_tolerates_staleness_and_compacts() {
        let mut g = CellGrid::try_bind(&pts(), 1.0).unwrap();
        g.insert(0);
        g.insert(2);
        g.remove(0);
        // Stale entry for node 0's cell is still listed...
        assert_eq!(g.occupied().len(), 2);
        assert_eq!(g.live_cells(), 1);
        g.compact_occupied();
        assert_eq!(g.occupied().len(), 1);
        // ...and re-inserting re-registers the cell exactly once.
        g.insert(0);
        g.insert(1);
        assert_eq!(g.occupied().len(), 2);
    }

    #[test]
    fn maintain_compacts_when_stale_dominates() {
        // 40 nodes in 40 distinct cells along a line.
        let p: Vec<Point> = (0..40).map(|i| Point::new(i as f64 + 0.5, 0.5)).collect();
        let mut g = CellGrid::try_bind(&p, 1.0).unwrap();
        for id in 0..40 {
            g.insert(id);
        }
        for id in 1..40 {
            g.remove(id);
        }
        assert_eq!(g.occupied().len(), 40);
        g.maintain();
        assert_eq!(g.occupied().len(), 1, "stale cells dropped");
        assert!(g.contains(0));
    }

    #[test]
    fn window_clips_to_grid_and_reports_cheb() {
        let g = CellGrid::try_bind(&pts(), 1.0).unwrap();
        // Corner cell: window clipped to the grid.
        let corner = g.cell_of(0);
        let mut seen = Vec::new();
        g.for_each_window_cell(corner, 1, |c, d| seen.push((c, d)));
        assert_eq!(seen.len(), 4, "2×2 clipped window at the corner");
        for &(c, d) in &seen {
            assert_eq!(d, g.cheb(corner, c));
            assert!(d <= 1);
        }
        // Full window away from edges covers (2r+1)².
        let mut count = 0;
        g.for_each_window_cell(g.cell_of(2), 1, |_, _| count += 1);
        assert_eq!(count, 6, "3 wide × 2 tall at the bottom edge");
    }

    #[test]
    fn bind_refuses_pathological_scatter() {
        let p = vec![Point::new(0.0, 0.0), Point::new(1.0e5, 1.0e5)];
        assert!(CellGrid::try_bind(&p, 1.0).is_none());
        assert!(CellGrid::try_bind(&p, 1.0e5).is_some());
    }

    #[test]
    fn binds_spot_checks_the_point_set() {
        let p = pts();
        let g = CellGrid::try_bind(&p, 1.0).unwrap();
        assert!(g.binds(&p));
        assert!(!g.binds(&p[..4]));
        let mut moved = p.clone();
        moved[0] = Point::new(9.0, 9.0);
        assert!(!g.binds(&moved));
        let empty: Vec<Point> = Vec::new();
        let ge = CellGrid::try_bind(&empty, 1.0).unwrap();
        assert!(ge.binds(&empty));
    }

    #[test]
    fn empty_point_set_binds() {
        let g = CellGrid::try_bind(&[], 1.0).unwrap();
        assert_eq!(g.bound_len(), 0);
        assert!(g.is_empty());
        assert_eq!(g.dims(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _ = CellGrid::try_bind(&[], 0.0);
    }
}
