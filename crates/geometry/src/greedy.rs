//! Centralized greedy graph coloring — the classical `(Δ+1)` baseline.
//!
//! The MW algorithm's color count (`O(Δ)` with a `φ(2R_T)+1` constant) is
//! compared in experiment E3 against the number of colors a *centralized*
//! greedy first-fit coloring uses, which is at most `Δ+1` and serves as the
//! practical floor for distributed algorithms.

use crate::graph::UnitDiskGraph;
use crate::NodeId;

/// A proper node coloring: `colors[v]` is the color of node `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
}

impl Coloring {
    /// Wraps an explicit color assignment.
    pub fn from_vec(colors: Vec<usize>) -> Self {
        Coloring { colors }
    }

    /// Color of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: NodeId) -> usize {
        self.colors[v]
    }

    /// The color assignment as a slice indexed by node id.
    pub fn as_slice(&self) -> &[usize] {
        &self.colors
    }

    /// Number of *distinct* colors used.
    pub fn color_count(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(self.colors.iter().copied());
        seen.len()
    }

    /// The largest color value used plus one (the palette size needed),
    /// or 0 for an empty coloring.
    pub fn palette_size(&self) -> usize {
        self.colors.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Whether no two adjacent nodes of `g` share a color.
    pub fn is_proper(&self, g: &UnitDiskGraph) -> bool {
        g.edges().all(|(u, v)| self.colors[u] != self.colors[v])
    }
}

/// First-fit greedy coloring in the given scan `order` (must be a
/// permutation of the node ids).
///
/// Uses at most `Δ+1` colors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..g.len()`.
pub fn greedy_coloring_in_order(g: &UnitDiskGraph, order: &[NodeId]) -> Coloring {
    assert_eq!(order.len(), g.len(), "order must cover every node");
    let mut seen = vec![false; g.len()];
    for &v in order {
        assert!(!seen[v], "order contains node {v} twice");
        seen[v] = true;
    }

    const UNSET: usize = usize::MAX;
    let mut colors = vec![UNSET; g.len()];
    let mut forbidden: Vec<usize> = Vec::new();
    for &v in order {
        forbidden.clear();
        forbidden.extend(
            g.neighbors(v)
                .iter()
                .map(|&u| colors[u])
                .filter(|&c| c != UNSET),
        );
        forbidden.sort_unstable();
        forbidden.dedup();
        // Smallest non-negative integer not in `forbidden`.
        let mut c = 0;
        for &f in &forbidden {
            if f == c {
                c += 1;
            } else if f > c {
                break;
            }
        }
        colors[v] = c;
    }
    Coloring { colors }
}

/// First-fit greedy coloring in node-id order.
pub fn greedy_coloring(g: &UnitDiskGraph) -> Coloring {
    let order: Vec<NodeId> = (0..g.len()).collect();
    greedy_coloring_in_order(g, &order)
}

/// Greedy coloring in descending-degree order (often fewer colors than
/// id order; still at most `Δ+1`).
pub fn greedy_coloring_by_degree(g: &UnitDiskGraph) -> Coloring {
    let mut order: Vec<NodeId> = (0..g.len()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    greedy_coloring_in_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;
    use crate::point::Point;

    fn random_graph(seed: u64) -> UnitDiskGraph {
        UnitDiskGraph::new(placement::uniform(120, 4.0, 4.0, seed), 1.0)
    }

    #[test]
    fn greedy_is_proper_and_within_delta_plus_one() {
        for seed in 0..5 {
            let g = random_graph(seed);
            let c = greedy_coloring(&g);
            assert!(c.is_proper(&g));
            assert!(c.palette_size() <= g.max_degree() + 1);
        }
    }

    #[test]
    fn degree_order_is_proper_and_within_delta_plus_one() {
        let g = random_graph(99);
        let c = greedy_coloring_by_degree(&g);
        assert!(c.is_proper(&g));
        assert!(c.palette_size() <= g.max_degree() + 1);
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(0.25, 0.4),
            ],
            1.0,
        );
        let c = greedy_coloring(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.color_count(), 3);
    }

    #[test]
    fn independent_nodes_share_color_zero() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)], 1.0);
        let c = greedy_coloring(&g);
        assert_eq!(c.color(0), 0);
        assert_eq!(c.color(1), 0);
        assert_eq!(c.color_count(), 1);
    }

    #[test]
    fn is_proper_detects_violation() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0);
        assert!(!Coloring::from_vec(vec![2, 2]).is_proper(&g));
        assert!(Coloring::from_vec(vec![0, 1]).is_proper(&g));
    }

    #[test]
    fn palette_size_vs_color_count() {
        let c = Coloring::from_vec(vec![0, 5, 5]);
        assert_eq!(c.color_count(), 2);
        assert_eq!(c.palette_size(), 6);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_order_panics() {
        let g = random_graph(1);
        let mut order: Vec<NodeId> = (0..g.len()).collect();
        order[1] = 0;
        let _ = greedy_coloring_in_order(&g, &order);
    }
}
