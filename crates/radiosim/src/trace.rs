//! Optional event tracing for debugging protocol runs.
//!
//! Since the observability layer landed, `Trace` is a thin façade over
//! [`sinr_obs::Ring`]: the same bounded ring buffer that backs
//! [`sinr_obs::FullRecorder`]'s event stream, so engine tracing and
//! recorded runs share one storage and drop-accounting discipline. Each
//! [`Event`] converts losslessly into the structured
//! [`ObsEvent`](sinr_obs::ObsEvent) vocabulary via [`Event::to_obs`].

use sinr_geometry::NodeId;
use sinr_obs::{ObsEvent, Ring};
use std::fmt;

/// A single traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Node woke up.
    Wake(NodeId),
    /// Node transmitted.
    Transmit(NodeId),
    /// `receiver` decoded a message from `sender`.
    Receive {
        /// The node that heard the message.
        receiver: NodeId,
        /// The node whose message was decoded.
        sender: NodeId,
    },
    /// Node reported `is_done()` for the first time.
    Done(NodeId),
}

impl Event {
    /// The structured-observability form of this event (same vocabulary
    /// the JSONL export uses).
    pub fn to_obs(self) -> ObsEvent {
        match self {
            Event::Wake(v) => ObsEvent::Wake { node: v },
            Event::Transmit(v) => ObsEvent::Transmit { node: v },
            Event::Receive { receiver, sender } => ObsEvent::Receive { receiver, sender },
            Event::Done(v) => ObsEvent::Done { node: v },
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Wake(v) => write!(f, "wake {v}"),
            Event::Transmit(v) => write!(f, "tx   {v}"),
            Event::Receive { receiver, sender } => write!(f, "rx   {receiver} <- {sender}"),
            Event::Done(v) => write!(f, "done {v}"),
        }
    }
}

/// A bounded in-memory event log: `(slot, event)` records in slot order.
///
/// Backed by a ring buffer: when the bound is reached, the *oldest* events
/// are evicted (and counted), so tracing long runs cannot exhaust memory
/// while the retained window always covers the most recent slots — the
/// part that explains how a run ended.
#[derive(Debug, Clone)]
pub struct Trace {
    ring: Ring<(u64, Event)>,
}

impl Trace {
    /// Creates a trace that retains at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            ring: Ring::with_capacity(capacity),
        }
    }

    /// Records an event at `slot`.
    pub fn push(&mut self, slot: u64, event: Event) {
        self.ring.push((slot, event));
    }

    /// The retained events, oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.ring.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events that were evicted to respect the capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Events involving node `v` (as subject, sender, or receiver),
    /// oldest → newest, without allocating.
    pub fn for_node(&self, v: NodeId) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.ring
            .iter()
            .filter(move |(_, e)| match e {
                Event::Wake(x) | Event::Transmit(x) | Event::Done(x) => *x == v,
                Event::Receive { receiver, sender } => *receiver == v || *sender == v,
            })
            .copied()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped() > 0 {
            writeln!(f, "... {} older events dropped", self.dropped())?;
        }
        for (slot, e) in self.events() {
            writeln!(f, "[{slot:>8}] {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_storage_dropping_oldest() {
        let mut t = Trace::with_capacity(2);
        t.push(0, Event::Wake(1));
        t.push(1, Event::Transmit(1));
        t.push(2, Event::Done(1));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.dropped(), 1);
        // The oldest record was evicted; the newest survive in order.
        let kept: Vec<u64> = t.events().map(|(s, _)| *s).collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn for_node_filters_both_roles() {
        let mut t = Trace::with_capacity(10);
        t.push(0, Event::Wake(1));
        t.push(
            1,
            Event::Receive {
                receiver: 2,
                sender: 1,
            },
        );
        t.push(2, Event::Done(3));
        assert_eq!(t.for_node(1).count(), 2);
        assert_eq!(t.for_node(2).count(), 1);
        assert_eq!(t.for_node(3).count(), 1);
        assert_eq!(t.for_node(4).count(), 0);
    }

    #[test]
    fn display_renders_every_event_kind() {
        let mut t = Trace::with_capacity(10);
        t.push(0, Event::Wake(0));
        t.push(
            0,
            Event::Receive {
                receiver: 1,
                sender: 0,
            },
        );
        t.push(1, Event::Transmit(2));
        t.push(2, Event::Done(2));
        let s = format!("{t}");
        assert!(s.contains("wake"));
        assert!(s.contains("rx"));
        assert!(s.contains("tx"));
        assert!(s.contains("done"));
        assert!(!s.contains("dropped"));
    }

    #[test]
    fn events_convert_to_the_obs_vocabulary() {
        use sinr_obs::ObsEvent;
        assert_eq!(Event::Wake(3).to_obs(), ObsEvent::Wake { node: 3 });
        assert_eq!(
            Event::Receive {
                receiver: 1,
                sender: 2
            }
            .to_obs(),
            ObsEvent::Receive {
                receiver: 1,
                sender: 2
            }
        );
        assert_eq!(Event::Transmit(0).to_obs().kind(), "transmit");
        assert_eq!(Event::Done(0).to_obs().kind(), "done");
    }
}
