//! Optional event tracing for debugging protocol runs.

use sinr_geometry::NodeId;
use std::fmt;

/// A single traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Node woke up.
    Wake(NodeId),
    /// Node transmitted.
    Transmit(NodeId),
    /// `receiver` decoded a message from `sender`.
    Receive {
        /// The node that heard the message.
        receiver: NodeId,
        /// The node whose message was decoded.
        sender: NodeId,
    },
    /// Node reported `is_done()` for the first time.
    Done(NodeId),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Wake(v) => write!(f, "wake {v}"),
            Event::Transmit(v) => write!(f, "tx   {v}"),
            Event::Receive { receiver, sender } => write!(f, "rx   {receiver} <- {sender}"),
            Event::Done(v) => write!(f, "done {v}"),
        }
    }
}

/// A bounded in-memory event log: `(slot, event)` records in slot order.
///
/// When the bound is reached, further events are counted but not stored, so
/// tracing long runs cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<(u64, Event)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that stores at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event at `slot`.
    pub fn push(&mut self, slot: u64, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push((slot, event));
        } else {
            self.dropped += 1;
        }
    }

    /// The stored events in insertion order.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Number of events that exceeded the capacity and were discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events involving node `v` (as subject, sender, or receiver).
    pub fn for_node(&self, v: NodeId) -> Vec<(u64, Event)> {
        self.events
            .iter()
            .filter(|(_, e)| match e {
                Event::Wake(x) | Event::Transmit(x) | Event::Done(x) => *x == v,
                Event::Receive { receiver, sender } => *receiver == v || *sender == v,
            })
            .copied()
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (slot, e) in &self.events {
            writeln!(f, "[{slot:>8}] {e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} further events dropped", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_storage() {
        let mut t = Trace::with_capacity(2);
        t.push(0, Event::Wake(1));
        t.push(1, Event::Transmit(1));
        t.push(2, Event::Done(1));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn for_node_filters_both_roles() {
        let mut t = Trace::with_capacity(10);
        t.push(0, Event::Wake(1));
        t.push(
            1,
            Event::Receive {
                receiver: 2,
                sender: 1,
            },
        );
        t.push(2, Event::Done(3));
        assert_eq!(t.for_node(1).len(), 2);
        assert_eq!(t.for_node(2).len(), 1);
        assert_eq!(t.for_node(3).len(), 1);
        assert_eq!(t.for_node(4).len(), 0);
    }

    #[test]
    fn display_renders_every_event_kind() {
        let mut t = Trace::with_capacity(10);
        t.push(0, Event::Wake(0));
        t.push(
            0,
            Event::Receive {
                receiver: 1,
                sender: 0,
            },
        );
        t.push(1, Event::Transmit(2));
        t.push(2, Event::Done(2));
        let s = format!("{t}");
        assert!(s.contains("wake"));
        assert!(s.contains("rx"));
        assert!(s.contains("tx"));
        assert!(s.contains("done"));
    }
}
