//! Spontaneous wake-up schedules.
//!
//! The paper's model: "nodes may wake up asynchronously at any time …
//! spontaneously, i.e., sleeping nodes are not necessarily woken up by
//! incoming messages" (§II). A schedule assigns each node the slot in which
//! it wakes; before that slot the node neither transmits nor receives.

use sinr_rng::rngs::StdRng;
use sinr_rng::{Rng, SeedableRng};

/// A policy assigning a wake-up slot to every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeupSchedule {
    /// All nodes wake in slot 0 (the easiest case; no asynchrony).
    #[default]
    Synchronous,
    /// Each node wakes at an independently uniform slot in `0..window`.
    UniformRandom {
        /// Exclusive upper bound on wake slots.
        window: u64,
    },
    /// Node `v` wakes at slot `v * step` (deterministic, strongly ordered —
    /// an adversarial-ish pattern for the asynchronous analysis).
    Staggered {
        /// Slots between consecutive wake-ups.
        step: u64,
    },
}

impl WakeupSchedule {
    /// Materializes wake slots for `n` nodes, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a `UniformRandom` window is 0.
    pub fn wake_slots(&self, n: usize, seed: u64) -> Vec<u64> {
        match *self {
            WakeupSchedule::Synchronous => vec![0; n],
            WakeupSchedule::UniformRandom { window } => {
                assert!(window > 0, "wake-up window must be positive");
                // Domain-separate from other consumers of the same seed.
                let mut rng = StdRng::seed_from_u64(seed ^ WAKEUP_SEED_TAG);
                (0..n).map(|_| rng.random_range(0..window)).collect()
            }
            WakeupSchedule::Staggered { step } => (0..n as u64).map(|v| v * step).collect(),
        }
    }
}

const WAKEUP_SEED_TAG: u64 = 0x57ab_1e5c_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_all_zero() {
        assert_eq!(WakeupSchedule::Synchronous.wake_slots(4, 1), vec![0; 4]);
    }

    #[test]
    fn uniform_random_within_window_and_deterministic() {
        let s = WakeupSchedule::UniformRandom { window: 50 };
        let a = s.wake_slots(100, 3);
        let b = s.wake_slots(100, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| w < 50));
        assert_ne!(a, s.wake_slots(100, 4));
    }

    #[test]
    fn staggered_is_arithmetic() {
        let s = WakeupSchedule::Staggered { step: 3 };
        assert_eq!(s.wake_slots(4, 0), vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = WakeupSchedule::UniformRandom { window: 0 }.wake_slots(1, 0);
    }
}
