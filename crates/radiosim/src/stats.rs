//! Run statistics collected by the engine.

use sinr_geometry::NodeId;
use sinr_obs::Histogram;

/// Counters and per-node timing collected during a simulation.
///
/// Aggregate channel metrics live in [`sinr_obs`] types so a recorded run
/// can merge them straight into a metrics registry; resolver counters are
/// no longer duplicated here — read them from the model at end of run
/// (`InterferenceModel::resolver_stats`), as `MwOutcome` does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total slots simulated.
    pub slots: u64,
    /// Total transmissions across all nodes and slots.
    pub transmissions: u64,
    /// Total successful receptions across all nodes and slots.
    pub receptions: u64,
    /// Wake-up slot of each node.
    pub wake_slot: Vec<u64>,
    /// Slot in which each node first reported `is_done()`, if it has.
    pub done_slot: Vec<Option<u64>>,
    /// Slots each node spent transmitting.
    pub tx_slots: Vec<u64>,
    /// Slots each node spent awake and listening (not transmitting).
    pub listen_slots: Vec<u64>,
    /// Channel-load histogram: bucket `k` counts slots with exactly `k`
    /// simultaneous transmitters; the final bucket aggregates everything at
    /// or above [`SimStats::TX_HISTOGRAM_BUCKETS`] − 1.
    pub channel_load: Histogram,
}

impl SimStats {
    /// Number of buckets in the channel-load histogram.
    pub const TX_HISTOGRAM_BUCKETS: usize = 33;

    /// Initializes statistics for `n` nodes with the given wake schedule.
    pub fn new(wake_slot: Vec<u64>) -> Self {
        let n = wake_slot.len();
        SimStats {
            slots: 0,
            transmissions: 0,
            receptions: 0,
            wake_slot,
            done_slot: vec![None; n],
            tx_slots: vec![0; n],
            listen_slots: vec![0; n],
            channel_load: Histogram::linear(Self::TX_HISTOGRAM_BUCKETS),
        }
    }

    /// Records one slot's concurrent-transmitter count in the histogram.
    pub fn record_channel_load(&mut self, transmitters: usize) {
        self.channel_load.observe(transmitters as u64);
    }

    /// Compatibility view of the channel-load histogram as raw bucket
    /// counts: `concurrent_tx()[k]` counts slots with exactly `k`
    /// concurrent transmitters, last bucket saturating (the report shape
    /// the bench experiments have always consumed).
    pub fn concurrent_tx(&self) -> &[u64] {
        self.channel_load.counts()
    }

    /// Mean number of concurrent transmitters per slot (0 for no slots).
    pub fn mean_channel_load(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.slots as f64
        }
    }

    /// Number of nodes that have decided.
    pub fn done_count(&self) -> usize {
        self.done_slot.iter().filter(|d| d.is_some()).count()
    }

    /// Slots node `v` spent awake before deciding (`done − wake`), if done.
    ///
    /// This is the paper's *time complexity* measure: "the maximum number of
    /// time slots a node spends before deciding on its color" (§II).
    pub fn decision_latency(&self, v: NodeId) -> Option<u64> {
        self.done_slot[v].map(|d| d.saturating_sub(self.wake_slot[v]))
    }

    /// The maximum decision latency over all nodes — the paper's running
    /// time. `None` if any node has not decided.
    pub fn max_decision_latency(&self) -> Option<u64> {
        (0..self.done_slot.len())
            .map(|v| self.decision_latency(v))
            .collect::<Option<Vec<_>>>()
            .map(|ls| ls.into_iter().max().unwrap_or(0))
    }

    /// Mean decision latency over nodes that decided; `None` if none have.
    pub fn mean_decision_latency(&self) -> Option<f64> {
        let ls: Vec<u64> = (0..self.done_slot.len())
            .filter_map(|v| self.decision_latency(v))
            .collect();
        if ls.is_empty() {
            None
        } else {
            Some(ls.iter().sum::<u64>() as f64 / ls.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        let mut s = SimStats::new(vec![0, 5, 10]);
        s.done_slot = vec![Some(20), Some(9), None];
        s
    }

    #[test]
    fn latency_subtracts_wake_slot() {
        let s = stats();
        assert_eq!(s.decision_latency(0), Some(20));
        assert_eq!(s.decision_latency(1), Some(4));
        assert_eq!(s.decision_latency(2), None);
    }

    #[test]
    fn max_latency_requires_all_done() {
        let mut s = stats();
        assert_eq!(s.max_decision_latency(), None);
        s.done_slot[2] = Some(40);
        assert_eq!(s.max_decision_latency(), Some(30));
    }

    #[test]
    fn mean_over_decided_only() {
        let s = stats();
        assert_eq!(s.mean_decision_latency(), Some(12.0));
        let empty = SimStats::new(vec![0, 0]);
        assert_eq!(empty.mean_decision_latency(), None);
        assert_eq!(empty.done_count(), 0);
    }

    #[test]
    fn done_count_counts_some() {
        assert_eq!(stats().done_count(), 2);
    }

    #[test]
    fn channel_load_histogram_buckets_and_saturates() {
        let mut s = SimStats::new(vec![0]);
        s.record_channel_load(0);
        s.record_channel_load(3);
        s.record_channel_load(3);
        s.record_channel_load(1000); // saturates into the last bucket
        assert_eq!(s.concurrent_tx()[0], 1);
        assert_eq!(s.concurrent_tx()[3], 2);
        assert_eq!(s.concurrent_tx()[SimStats::TX_HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.channel_load.count(), 4);
        assert_eq!(
            s.concurrent_tx().len(),
            SimStats::TX_HISTOGRAM_BUCKETS,
            "compat view keeps the historical bucket count"
        );
    }

    #[test]
    fn mean_channel_load_is_tx_per_slot() {
        let mut s = SimStats::new(vec![0]);
        assert_eq!(s.mean_channel_load(), 0.0);
        s.slots = 10;
        s.transmissions = 25;
        assert!((s.mean_channel_load() - 2.5).abs() < 1e-12);
    }
}
