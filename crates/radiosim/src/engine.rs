//! The slot-synchronous simulation engine.

use crate::protocol::{Action, NodeCtx, Protocol, RandSlotRng};
use crate::stats::SimStats;
use crate::trace::{Event, Trace};
use crate::wakeup::WakeupSchedule;
use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::{InterferenceModel, ReceptionTable, ResolverStats, TxDelta};
use sinr_obs::alloc::{self, AllocSnapshot, AllocStats};
use sinr_obs::span::{names as span_names, SpanRecord, SpanTrack};
use sinr_obs::{keys, NoopRecorder, Recorder, QUARTERS_PER_SLOT};
use sinr_pool::{PerThread, Pool};
use sinr_rng::rngs::StdRng;
use sinr_rng::SeedableRng;

/// Below this many nodes the per-slot pool broadcast costs more than the
/// node-step work it splits, so small instances always step sequentially.
pub const PAR_NODE_CUTOFF: usize = 256;

/// One node's slot-critical status bits, packed into a single byte.
///
/// The engine keeps one `Vec<NodeFlags>` — a dense structure-of-arrays
/// column — instead of separate `Vec<bool>`s for done/tx/prev-tx plus
/// per-slot `wake`/`is_active` probes. The fused passes then decide
/// "does this node need work?" from one byte load per node instead of
/// touching three bool arrays, the wake table, and a virtual call.
/// `tests/struct_sizes.rs` pins the size to 1 byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFlags(u8);

impl NodeFlags {
    /// The node's wake slot has passed (mirror of `wake[v] <= slot`,
    /// set once by the wake cursor).
    const AWAKE: u8 = 1;
    /// Cached `Protocol::is_active()`; only trusted while the simulator's
    /// `flags_active_valid` is set (the fused passes maintain it, the
    /// phased/parallel passes invalidate it).
    const ACTIVE: u8 = 1 << 1;
    /// The node has reported `is_done()` (mirror of the old done bitmap).
    const DONE: u8 = 1 << 2;
    /// The node transmits in the slot being executed.
    const TX: u8 = 1 << 3;
    /// The node transmitted in the previous slot (delta baseline).
    const PREV_TX: u8 = 1 << 4;
    /// Cached `Protocol::empty_end_slot_is_noop()`: an empty-inbox
    /// `end_slot` would do nothing in the node's current state, so the
    /// fused delivery pass may skip the callback (and the node-state
    /// cache traffic) entirely when nothing was received. Maintained
    /// under the same validity regime as ACTIVE.
    const IDLE_END: u8 = 1 << 5;
    /// The node reported done during this slot's fused action pass; the
    /// delivery pass folds it into `newly_done` at its ascending-id
    /// turn. Never survives past the slot that set it.
    const JUST_DONE: u8 = 1 << 6;

    /// Both awake and (cached) active — the fused action/delivery gate.
    const RUNNABLE: u8 = Self::AWAKE | Self::ACTIVE;

    /// Whether the wake slot has passed.
    pub fn awake(self) -> bool {
        self.0 & Self::AWAKE != 0
    }

    /// The cached activity bit (see [`NodeFlags::set_active`]).
    pub fn active(self) -> bool {
        self.0 & Self::ACTIVE != 0
    }

    /// Whether the node has been recorded as done.
    pub fn done(self) -> bool {
        self.0 & Self::DONE != 0
    }

    /// Whether the node transmits this slot.
    pub fn tx(self) -> bool {
        self.0 & Self::TX != 0
    }

    /// Whether the node transmitted last slot.
    pub fn prev_tx(self) -> bool {
        self.0 & Self::PREV_TX != 0
    }

    /// The cached empty-inbox-`end_slot`-is-a-no-op bit (see
    /// [`NodeFlags::IDLE_END`]).
    pub fn idle_end(self) -> bool {
        self.0 & Self::IDLE_END != 0
    }

    fn just_done(self) -> bool {
        self.0 & Self::JUST_DONE != 0
    }

    fn runnable(self) -> bool {
        self.0 & Self::RUNNABLE == Self::RUNNABLE
    }

    fn insert(&mut self, bits: u8) {
        self.0 |= bits;
    }

    fn remove(&mut self, bits: u8) {
        self.0 &= !bits;
    }

    fn set_active(&mut self, active: bool) {
        if active {
            self.insert(Self::ACTIVE);
        } else {
            self.remove(Self::ACTIVE);
        }
    }

    fn set_idle_end(&mut self, idle: bool) {
        if idle {
            self.insert(Self::IDLE_END);
        } else {
            self.remove(Self::IDLE_END);
        }
    }

    /// SWAR test over eight packed flag bytes at once: a nonzero lane
    /// marks a node the fused delivery pass must visit even with an
    /// empty inbox — a deferred JUST_DONE flush, an awake active node
    /// whose empty `end_slot` is not a no-op, or an awake inactive node
    /// still owed the done poll. Sleeping nodes and the done idle tail
    /// produce zero lanes, so a zero word lets the pass hop eight nodes
    /// on a single load.
    fn needs_visit_word(w: u64) -> u64 {
        const LANES: u64 = 0x0101_0101_0101_0101;
        let aw = w & LANES;
        let ac = (w >> 1) & LANES;
        let dn = (w >> 2) & LANES;
        let id = (w >> 5) & LANES;
        let jd = (w >> 6) & LANES;
        jd | (aw & ac & (id ^ LANES)) | (aw & (ac ^ LANES) & (dn ^ LANES))
    }
}

/// Per-thread working state for the sharded node-step phases.
struct EngineScratch<M> {
    /// Transmitter ids found by this thread's chunk, in ascending order.
    tx: Vec<NodeId>,
    /// Reception buffer reused across this chunk's nodes.
    inbox: Vec<(NodeId, M)>,
    /// Receptions delivered by this chunk this slot.
    receptions: u64,
}

impl<M> EngineScratch<M> {
    fn new() -> Self {
        EngineScratch {
            tx: Vec::new(),
            inbox: Vec::new(),
            receptions: 0,
        }
    }
}

/// Everything that happened in one simulated slot.
///
/// Borrows the simulator's reused slot buffers: building a view is free,
/// and the steady-state loop allocates nothing per slot (previously the
/// view owned a cloned transmitter list, a fresh table, and a fresh
/// done-list every slot). Observers needing to keep data past the slot
/// copy what they need (`view.transmitters.to_vec()`).
#[derive(Debug, Clone, Copy)]
pub struct StepView<'a> {
    /// The slot that was just executed.
    pub slot: u64,
    /// Ids of the nodes that transmitted, ascending.
    pub transmitters: &'a [NodeId],
    /// The `(receiver, sender)` receptions the interference model granted.
    pub receptions: &'a ReceptionTable,
    /// Nodes that reported `is_done()` for the first time this slot.
    pub newly_done: &'a [NodeId],
}

/// Per-phase heap-traffic attribution for a profiled run (see
/// [`Simulator::enable_alloc_profile`]). Counters only move when the
/// process runs under [`sinr_obs::alloc::CountingAlloc`]; in an
/// uninstrumented binary every field stays zero.
#[derive(Debug, Clone, Default)]
pub struct EngineAllocProfile {
    /// Traffic during the actions phase (wake-ups + node automata).
    pub actions: AllocStats,
    /// Traffic during channel resolution (the resolver's delta path).
    pub resolve: AllocStats,
    /// Traffic during delivery, end-of-slot hooks, and termination scans.
    pub delivery: AllocStats,
    /// Allocation events per executed slot (all phases plus buffer
    /// rolling), indexed by slot offset since profiling was enabled. The
    /// buffer is preallocated to the requested capacity and **never
    /// grows** — recording must not itself allocate per slot.
    pub per_slot: Vec<u64>,
    /// Slots whose per-slot sample was dropped because the preallocated
    /// buffer was full (0 when the driver sizes it to the slot cap).
    pub dropped_slots: u64,
}

impl EngineAllocProfile {
    fn with_capacity(capacity_slots: usize) -> Self {
        EngineAllocProfile {
            per_slot: Vec::with_capacity(capacity_slots),
            ..EngineAllocProfile::default()
        }
    }

    /// Records one phase transition: attributes the traffic since `mark`
    /// to `phase` and returns the new mark.
    fn phase_mark(stats: &mut AllocStats, mark: AllocSnapshot) -> AllocSnapshot {
        let now = alloc::snapshot();
        stats.add_span(mark, now);
        now
    }

    /// Measured warmup length: the index of the last sampled slot that
    /// performed any allocation, plus one (0 if no sampled slot
    /// allocated). Slots past this point ran allocation-free.
    pub fn warmup_slots(&self) -> u64 {
        self.per_slot
            .iter()
            .rposition(|&a| a > 0)
            .map(|i| i as u64 + 1)
            .unwrap_or(0)
    }

    /// The steady-state window: the final quarter of the sampled slots,
    /// as `(start_index, length)`. Empty for runs shorter than 4 slots.
    pub fn steady_window(&self) -> (usize, usize) {
        let len = self.per_slot.len() / 4;
        (self.per_slot.len() - len, len)
    }

    /// Total allocation events inside the steady-state window.
    pub fn steady_allocs(&self) -> u64 {
        let (start, len) = self.steady_window();
        self.per_slot[start..start + len].iter().sum()
    }

    /// Mean allocation events per slot over the steady-state window
    /// (`None` when the window is empty). The zero-alloc gate pins this
    /// to exactly 0 for the fused sequential engine.
    pub fn steady_allocs_per_slot(&self) -> Option<f64> {
        let (_, len) = self.steady_window();
        if len == 0 {
            return None;
        }
        Some(self.steady_allocs() as f64 / len as f64)
    }

    /// The `n` heaviest-allocating sampled slots as `(slot_offset,
    /// allocs)`, heaviest first (ties broken by earlier slot). Slots with
    /// zero allocations are never reported.
    pub fn top_allocating_slots(&self, n: usize) -> Vec<(u64, u64)> {
        let mut hot: Vec<(u64, u64)> = self
            .per_slot
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a > 0)
            .map(|(i, &a)| (i as u64, a))
            .collect();
        hot.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        hot.truncate(n);
        hot
    }

    /// Sum of the phase-attributed allocation counts (actions + resolve +
    /// delivery).
    pub fn phase_allocs(&self) -> u64 {
        self.actions.allocs + self.resolve.allocs + self.delivery.allocs
    }
}

/// Result of [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether every node had decided when the run stopped.
    pub all_done: bool,
    /// Number of slots executed.
    pub slots: u64,
}

/// Drives one protocol instance per node against an interference model.
///
/// Deterministic: runs are a pure function of (graph, model, schedule, seed,
/// protocol construction). Each node has its own `StdRng` derived from the
/// seed and its id, so protocol behaviour does not depend on the engine's
/// iteration order.
pub struct Simulator<P: Protocol, M: InterferenceModel> {
    graph: UnitDiskGraph,
    model: M,
    nodes: Vec<P>,
    wake: Vec<u64>,
    rngs: Vec<StdRng>,
    slot: u64,
    stats: SimStats,
    // The SoA status column: awake/active/done/tx/prev-tx, one byte per
    // node (see [`NodeFlags`]). Replaces three `Vec<bool>`s and the hot
    // loops' per-node `wake`/`is_active` probes.
    flags: Vec<NodeFlags>,
    // Whether the ACTIVE bits in `flags` reflect `is_active()`: the fused
    // passes keep them fresh after every protocol callback; the phased
    // and parallel passes (which query `is_active()` live) clear this,
    // and the next fused slot rebuilds the column in one O(n) pass.
    flags_active_valid: bool,
    done_count: usize,
    trace: Option<Trace>,
    // Dense per-slot buffers, reused across slots so the steady-state hot
    // loop performs no allocation (previously a fresh HashMap + Vecs per
    // slot).
    tx_ids: Vec<NodeId>,
    tx_msg: Vec<Option<P::Message>>,
    inbox: Vec<(NodeId, P::Message)>,
    // Previous slot's transmitter list, rolled at the end of every slot;
    // together with the current set (and the TX/PREV_TX flag bits) it
    // yields the start/stop delta handed to stateful resolvers for free.
    prev_tx_ids: Vec<NodeId>,
    started: Vec<NodeId>,
    stopped: Vec<NodeId>,
    // Node ids sorted by (wake slot, id): a cursor over this list replaces
    // the per-slot O(n) wake scan.
    wake_order: Vec<NodeId>,
    wake_cursor: usize,
    // Whether the fused sequential fast path is usable: it skips sleeping
    // nodes entirely, which is only sound when no node is already done at
    // construction (an untouched sleeping node can then never be done).
    fused_ok: bool,
    // Previous slot's resolver-stats snapshot, kept only while a recorder
    // is enabled: per-slot diffing of the cumulative counters yields the
    // resolver-internal spans (delta apply, rebuilds, fallbacks) without
    // touching the resolver itself. The counters are thread-invariant, so
    // the derived spans are too.
    prev_resolver: Option<ResolverStats>,
    // Worker pool for the sharded step phases (sequential by default) and
    // its per-thread scratch.
    pool: Pool,
    par: PerThread<EngineScratch<P::Message>>,
    // The last slot's reception table and newly-done list, reused across
    // slots (mem::take'd during the step, put back before the view is
    // built) so the steady-state loop allocates neither.
    table: ReceptionTable,
    newly_done: Vec<NodeId>,
    // Heap-traffic attribution, when enabled. Deliberately *not* routed
    // through the Recorder: an enabled recorder forces the phased
    // sequential paths, while allocation profiling must observe the real
    // fused/parallel path selection. Snapshot reads touch only counters —
    // never RNG, ordering, or control flow — so enabling this cannot
    // perturb a deterministic run.
    alloc_profile: Option<Box<EngineAllocProfile>>,
}

impl<P: Protocol, M: InterferenceModel> Simulator<P, M> {
    /// Creates a simulator; `make_node(id)` constructs the protocol
    /// instance for each node.
    pub fn new(
        graph: UnitDiskGraph,
        model: M,
        schedule: WakeupSchedule,
        seed: u64,
        mut make_node: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = graph.len();
        let max_degree = graph.max_degree();
        let wake = schedule.wake_slots(n, seed);
        let nodes: Vec<P> = (0..n).map(&mut make_node).collect();
        let rngs = (0..n)
            .map(|v| StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ v as u64))
            .collect();
        let stats = SimStats::new(wake.clone());
        let mut wake_order: Vec<NodeId> = (0..n).collect();
        wake_order.sort_by_key(|&v| wake[v]); // stable: ascending id per slot
        let fused_ok = nodes.iter().all(|nd| !nd.is_done());
        let flags = nodes
            .iter()
            .map(|nd| {
                let mut f = NodeFlags::default();
                f.set_active(nd.is_active());
                f.set_idle_end(nd.empty_end_slot_is_noop());
                f
            })
            .collect();
        Simulator {
            graph,
            model,
            nodes,
            wake,
            rngs,
            slot: 0,
            stats,
            flags,
            flags_active_valid: true,
            done_count: 0,
            trace: None,
            // Hot-loop buffers are preallocated to their hard bounds (n
            // transmitters, max-degree receptions per inbox) so the
            // warmed-up slot loop never grows them.
            tx_ids: Vec::with_capacity(n),
            tx_msg: (0..n).map(|_| None).collect(),
            inbox: Vec::with_capacity(max_degree),
            prev_tx_ids: Vec::with_capacity(n),
            started: Vec::with_capacity(n),
            stopped: Vec::with_capacity(n),
            wake_order,
            wake_cursor: 0,
            fused_ok,
            prev_resolver: None,
            pool: Pool::sequential(),
            par: PerThread::new(1, |_| EngineScratch::new()),
            // Under SINR thresholds β ≥ 1 each node decodes at most one
            // sender per slot, so n pairs bounds the recycled table on
            // that path (permissive models may still grow it).
            table: ReceptionTable::from_pairs(Vec::with_capacity(n)),
            newly_done: Vec::with_capacity(n),
            alloc_profile: None,
        }
    }

    /// Enables per-phase heap-traffic attribution for the next
    /// `capacity_slots` slots (the per-slot sample buffer is preallocated
    /// to that length and never grows, so profiling itself stays
    /// allocation-free per slot). Requires [`sinr_obs::alloc::CountingAlloc`]
    /// to be installed as the binary's global allocator to read nonzero
    /// numbers. Independent of the [`Recorder`]: profiled runs keep the
    /// fused/parallel path selection of unobserved runs.
    pub fn enable_alloc_profile(&mut self, capacity_slots: usize) {
        self.alloc_profile = Some(Box::new(EngineAllocProfile::with_capacity(capacity_slots)));
    }

    /// The accumulated allocation profile, if enabled.
    pub fn alloc_profile(&self) -> Option<&EngineAllocProfile> {
        self.alloc_profile.as_deref()
    }

    /// Takes the allocation profile out of the simulator (disables
    /// further profiling).
    pub fn take_alloc_profile(&mut self) -> Option<Box<EngineAllocProfile>> {
        self.alloc_profile.take()
    }

    /// Installs a worker pool for the sharded step phases and forwards it
    /// to the interference model (so resolver and engine share threads).
    ///
    /// Parallel stepping is bit-identical to sequential: nodes are split
    /// into static contiguous chunks, each node keeps its own seeded RNG
    /// stream, and per-thread outputs are merged in chunk (= node) order.
    /// Slots with tracing or an enabled recorder step sequentially, since
    /// event streams are defined in node order.
    pub fn set_pool(&mut self, pool: &Pool) {
        self.pool = pool.clone();
        self.par = PerThread::new(pool.threads(), |_| EngineScratch::new());
        self.model.set_pool(pool);
    }

    /// Enables event tracing with the given capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The communication graph being simulated.
    pub fn graph(&self) -> &UnitDiskGraph {
        &self.graph
    }

    /// The interference model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The protocol instances, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol instance of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v]
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The next slot to be executed.
    pub fn current_slot(&self) -> u64 {
        self.slot
    }

    /// Whether every node has decided.
    pub fn all_done(&self) -> bool {
        self.done_count == self.flags.len()
    }

    fn ctx(&self, v: NodeId) -> NodeCtx {
        NodeCtx {
            id: v,
            global_slot: self.slot,
            local_slot: self.slot - self.wake[v],
        }
    }

    fn is_awake(&self, v: NodeId) -> bool {
        self.wake[v] <= self.slot
    }

    /// Executes one slot and returns what happened.
    pub fn step(&mut self) -> StepView<'_> {
        self.step_recorded(&mut NoopRecorder)
    }

    /// Like [`Simulator::step`], but also streams structured events into
    /// `rec`. With a disabled recorder (`rec.enabled() == false`) the only
    /// added cost is one virtual call per slot — no event is constructed —
    /// so this *is* the hot path; `step` merely delegates here.
    pub fn step_recorded(&mut self, rec: &mut dyn Recorder) -> StepView<'_> {
        self.step_impl(rec);
        self.view()
    }

    /// A view of the most recently executed slot, borrowing the reused
    /// slot buffers. Valid until the next `step*` call.
    fn view(&self) -> StepView<'_> {
        debug_assert!(self.slot > 0, "no slot executed yet");
        StepView {
            slot: self.slot - 1,
            // The buffers rolled at the end of the step: the slot's
            // transmitter list now lives in `prev_tx_ids`.
            transmitters: &self.prev_tx_ids,
            receptions: &self.table,
            newly_done: &self.newly_done,
        }
    }

    fn step_impl(&mut self, rec: &mut dyn Recorder) {
        let n = self.graph.len();
        let slot = self.slot;
        let obs = rec.enabled();

        // Heap-traffic attribution (when enabled): the profile box is
        // moved out for the duration of the slot so the phase marks do
        // not alias the other `&mut self` uses, and restored at the end.
        let mut prof = self.alloc_profile.take();
        let prof_start = prof.as_ref().map(|_| alloc::snapshot());

        // 1. Wake-ups. A cursor over the wake-sorted id list visits each
        // node exactly once over the whole run instead of scanning all n
        // ids every slot; ids waking in the same slot are visited in
        // ascending order (the sort is stable over an ascending list).
        while self.wake_cursor < n {
            let v = self.wake_order[self.wake_cursor];
            if self.wake[v] > slot {
                break;
            }
            debug_assert_eq!(self.wake[v], slot, "slots advance one at a time");
            self.wake_cursor += 1;
            let ctx = self.ctx(v);
            self.nodes[v].on_wake(&ctx);
            self.flags[v].insert(NodeFlags::AWAKE);
            let active = self.nodes[v].is_active();
            self.flags[v].set_active(active);
            let idle = self.nodes[v].empty_end_slot_is_noop();
            self.flags[v].set_idle_end(idle);
            if let Some(t) = &mut self.trace {
                t.push(slot, Event::Wake(v));
            }
            if obs {
                rec.event(slot, &Event::Wake(v).to_obs());
            }
        }

        // Sharded stepping engages only when there is real work to split
        // and no event stream to keep in node order (trace and recorder
        // events are emitted sequentially, per slot, in node order).
        let par_step =
            self.pool.threads() > 1 && n >= PAR_NODE_CUTOFF && self.trace.is_none() && !obs;
        // The fused sequential path folds the action, accounting,
        // delivery, and termination phases into two passes; it produces
        // bit-identical stats, RNG streams, and protocol states, but emits
        // no events, so any event consumer falls back to the phased loops.
        let fused = !par_step && !obs && self.trace.is_none() && self.fused_ok;

        // 2. Actions — recorded into the dense reused buffers; `started`
        // is filled against the previous slot's transmitter bitmap.
        if fused {
            self.phase_actions_fused(slot);
        } else {
            self.phase_actions(slot, par_step, obs, rec);
            self.started.clear();
            for &t in &self.tx_ids {
                if !self.flags[t].prev_tx() {
                    self.started.push(t);
                }
            }
            for &t in &self.tx_ids {
                self.stats.tx_slots[t] += 1;
            }
            // Activity accounting (listen status is derived from the TX
            // flag bit: awake ∧ active ∧ ¬transmitting).
            for v in 0..n {
                if self.is_awake(v) && self.nodes[v].is_active() && !self.flags[v].tx() {
                    self.stats.listen_slots[v] += 1;
                }
            }
        }
        self.stopped.clear();
        for &t in &self.prev_tx_ids {
            if !self.flags[t].tx() {
                self.stopped.push(t);
            }
        }
        let mut prof_mark = prof_start;
        if let (Some(p), Some(mark)) = (prof.as_deref_mut(), prof_mark) {
            prof_mark = Some(EngineAllocProfile::phase_mark(&mut p.actions, mark));
        }

        // Slot-time spans: each slot subdivides into quarter ticks —
        // actions [0,1), resolve [1,3), delivery [3,4) — so the engine's
        // phases render as adjacent blocks on one Perfetto track. Emission
        // is gated on `obs`, which already forces the sequential phased
        // path, so span recording can never perturb the fused or parallel
        // paths.
        let q0 = slot * QUARTERS_PER_SLOT;
        if obs {
            rec.span(
                &SpanRecord::complete(SpanTrack::Engine, span_names::ENGINE_ACTIONS, q0, 1)
                    .with_arg("tx", count_i64(self.tx_ids.len())),
            );
        }

        // 3. Channel resolution. The start/stop delta is exact by
        // construction, so stateful resolvers can update their persistent
        // indices in O(|delta|); stateless ones ignore it.
        let mut table = std::mem::take(&mut self.table);
        self.model.resolve_delta_into(
            &self.graph,
            &self.tx_ids,
            TxDelta {
                started: &self.started,
                stopped: &self.stopped,
            },
            &mut table,
        );
        self.stats.transmissions += self.tx_ids.len() as u64;
        self.stats.record_channel_load(self.tx_ids.len());
        if let (Some(p), Some(mark)) = (prof.as_deref_mut(), prof_mark) {
            prof_mark = Some(EngineAllocProfile::phase_mark(&mut p.resolve, mark));
        }
        if obs {
            rec.gauge_set(keys::SIM_SLOT_TRANSMITTERS, self.tx_ids.len() as f64);
            rec.span(
                &SpanRecord::complete(SpanTrack::Engine, span_names::ENGINE_RESOLVE, q0 + 1, 2)
                    .with_arg("started", count_i64(self.started.len()))
                    .with_arg("stopped", count_i64(self.stopped.len())),
            );
            self.emit_resolver_spans(q0 + 1, rec);
        }

        let rx_before = self.stats.receptions;

        // 4 + 5. Delivery, end-of-slot processing, and termination
        // bookkeeping for every awake node.
        let mut newly_done = std::mem::take(&mut self.newly_done);
        newly_done.clear();
        if fused {
            self.phase_delivery_fused(slot, &table, &mut newly_done);
        } else {
            self.phase_delivery(slot, par_step, obs, &table, rec);
            for v in 0..n {
                if !self.flags[v].done() && self.nodes[v].is_done() {
                    self.flags[v].insert(NodeFlags::DONE);
                    self.done_count += 1;
                    self.stats.done_slot[v] = Some(slot);
                    newly_done.push(v);
                    if let Some(t) = &mut self.trace {
                        t.push(slot, Event::Done(v));
                    }
                    if obs {
                        rec.event(slot, &Event::Done(v).to_obs());
                    }
                }
            }
        }

        if let (Some(p), Some(mark)) = (prof.as_deref_mut(), prof_mark) {
            let _ = EngineAllocProfile::phase_mark(&mut p.delivery, mark);
        }

        if obs {
            let rx = self.stats.receptions.saturating_sub(rx_before);
            rec.span(
                &SpanRecord::complete(SpanTrack::Engine, span_names::ENGINE_DELIVERY, q0 + 3, 1)
                    .with_arg("rx", count_u64(rx))
                    .with_arg("done", count_i64(newly_done.len())),
            );
        }

        // 6. Roll the slot buffers (O(transmitters), not O(n)): this
        // slot's transmitter list becomes the previous-slot list the next
        // delta is computed against, and the TX bits migrate to PREV_TX.
        // Order matters for nodes transmitting in both slots: their
        // PREV_TX is cleared by the first loop and re-set by the second.
        // Resolver statistics are read once at end of run, not
        // snapshotted per slot.
        for &t in &self.prev_tx_ids {
            self.flags[t].remove(NodeFlags::PREV_TX);
        }
        for &t in &self.tx_ids {
            self.tx_msg[t] = None;
            self.flags[t].insert(NodeFlags::PREV_TX);
            self.flags[t].remove(NodeFlags::TX);
        }
        std::mem::swap(&mut self.prev_tx_ids, &mut self.tx_ids);

        self.slot += 1;
        self.stats.slots = self.slot;

        // Put the reused slot buffers back for `view()` and the next step.
        self.table = table;
        self.newly_done = newly_done;

        if let (Some(p), Some(start)) = (prof.as_deref_mut(), prof_start) {
            let end = alloc::snapshot();
            let allocs = end.allocs.wrapping_sub(start.allocs);
            // `push` within the preallocated capacity never reallocates;
            // a full buffer drops samples rather than growing.
            if p.per_slot.len() < p.per_slot.capacity() {
                p.per_slot.push(allocs);
            } else {
                p.dropped_slots += 1;
            }
        }
        self.alloc_profile = prof;
    }

    /// Diffs the model's cumulative resolver counters against the previous
    /// slot's snapshot and emits resolver-internal spans for this slot's
    /// increments (delta apply, epoch/full rebuilds, exact fallbacks).
    /// `q_resolve` is the resolve phase's first quarter-slot tick. Runs
    /// only while a recorder is enabled; models without resolver stats
    /// emit nothing.
    fn emit_resolver_spans(&mut self, q_resolve: u64, rec: &mut dyn Recorder) {
        let Some(cur) = self.model.resolver_stats() else {
            return;
        };
        if let Some(prev) = self.prev_resolver {
            let started = cur.delta_started.saturating_sub(prev.delta_started);
            let stopped = cur.delta_stopped.saturating_sub(prev.delta_stopped);
            if started + stopped > 0 {
                rec.span(
                    &SpanRecord::complete(
                        SpanTrack::Resolver,
                        span_names::RESOLVER_DELTA_APPLY,
                        q_resolve,
                        1,
                    )
                    .with_arg("started", count_u64(started))
                    .with_arg("stopped", count_u64(stopped)),
                );
            }
            if cur.epoch_rebuilds > prev.epoch_rebuilds {
                rec.span(&SpanRecord::instant(
                    SpanTrack::Resolver,
                    span_names::RESOLVER_EPOCH_REBUILD,
                    q_resolve + 1,
                ));
            }
            if cur.full_rebuilds > prev.full_rebuilds {
                rec.span(&SpanRecord::instant(
                    SpanTrack::Resolver,
                    span_names::RESOLVER_FULL_REBUILD,
                    q_resolve + 1,
                ));
            }
            let fallbacks = cur.exact_fallbacks.saturating_sub(prev.exact_fallbacks);
            if fallbacks > 0 {
                rec.span(
                    &SpanRecord::instant(
                        SpanTrack::Resolver,
                        span_names::RESOLVER_EXACT_FALLBACK,
                        q_resolve + 1,
                    )
                    .with_arg("candidates", count_u64(fallbacks)),
                );
            }
        }
        self.prev_resolver = Some(cur);
    }

    /// Fused slot phases 2 + 3a: one sequential pass decides every awake
    /// active node's action, maintains the transmit buffers and the
    /// `started` delta, and accounts tx/listen activity — replacing three
    /// O(n) scans of the phased path with one. The awake∧active gate is
    /// one byte load from the [`NodeFlags`] column per node; the ACTIVE
    /// bits are refreshed after every callback so the column stays exact.
    // lint:hot — per-node action loop, runs every slot for every node
    fn phase_actions_fused(&mut self, slot: u64) {
        let n = self.graph.len();
        if !self.flags_active_valid {
            // A phased or parallel slot ran since the last fused one and
            // bypassed the flag maintenance; rebuild the ACTIVE and
            // IDLE_END columns.
            for v in 0..n {
                let active = self.nodes[v].is_active();
                self.flags[v].set_active(active);
                let idle = self.nodes[v].empty_end_slot_is_noop();
                self.flags[v].set_idle_end(idle);
            }
            self.flags_active_valid = true;
        }
        self.tx_ids.clear();
        self.started.clear();
        for v in 0..n {
            let f = self.flags[v];
            if !f.runnable() {
                continue;
            }
            let ctx = NodeCtx {
                id: v,
                global_slot: slot,
                local_slot: slot - self.wake[v],
            };
            let mut rng = RandSlotRng(&mut self.rngs[v]);
            let listened = match self.nodes[v].begin_slot(&ctx, &mut rng) {
                Action::Transmit(msg) => {
                    self.tx_ids.push(v);
                    self.flags[v].insert(NodeFlags::TX);
                    self.tx_msg[v] = Some(msg);
                    if !f.prev_tx() {
                        self.started.push(v);
                    }
                    self.stats.tx_slots[v] += 1;
                    false
                }
                Action::Listen => true,
            };
            // Activity is re-checked after begin_slot so a node that
            // deactivates inside the callback is not billed a listen
            // slot, exactly like the phased accounting pass that runs
            // post-actions.
            let active = self.nodes[v].is_active();
            if listened && active {
                self.stats.listen_slots[v] += 1;
            }
            let idle = self.nodes[v].empty_end_slot_is_noop();
            let mut fl = self.flags[v];
            fl.set_active(active);
            fl.set_idle_end(idle);
            // Done transitions that happen inside begin_slot (MW nodes
            // color themselves there) are caught here, while the node's
            // state is still cache-hot — but only for nodes the delivery
            // pass may idle-skip; non-idle nodes run end_slot anyway and
            // are re-checked there, like the phased path. JUST_DONE
            // defers the `newly_done` entry to the delivery pass so the
            // list stays ascending like the phased path's.
            if idle && !fl.done() && self.nodes[v].is_done() {
                fl.insert(NodeFlags::DONE | NodeFlags::JUST_DONE);
                self.done_count += 1;
                self.stats.done_slot[v] = Some(slot);
            }
            self.flags[v] = fl;
        }
    }

    /// Fused slot phases 4 + 5: one ascending-id pass merge-joins the
    /// sorted reception table against the awake nodes (no per-node binary
    /// search), runs `end_slot`, and folds in the termination check.
    ///
    /// Sleeping nodes are skipped wholesale — sound because the fused path
    /// is gated on `fused_ok` (no node starts done, and a node's `is_done`
    /// cannot change before its first callback). Nodes whose cached
    /// IDLE_END bit says an empty-inbox `end_slot` is a no-op are skipped
    /// too when nothing was received: no callback runs, so neither their
    /// activity nor their done state can have moved since the action pass
    /// refreshed both, and the pass touches only their flag byte — O(n)
    /// in flag bytes but O(receivers + listeners) in node-state traffic.
    // lint:hot — per-node delivery loop, runs every slot for every node
    fn phase_delivery_fused(
        &mut self,
        slot: u64,
        table: &ReceptionTable,
        newly_done: &mut Vec<NodeId>,
    ) {
        let n = self.graph.len();
        let pairs = table.pairs();
        let mut p = 0usize;
        let mut inbox = std::mem::take(&mut self.inbox);
        let mut v = 0usize;
        while v < n {
            // Eight-node hop: when no byte in the next flag word needs a
            // visit and no reception targets the window, skip it on one
            // u64 load — the colored long tail costs one word test per
            // eight nodes instead of eight flag loads and branches.
            if v + 8 <= n && (p >= pairs.len() || pairs[p].0 >= v + 8) {
                let c = &self.flags[v..v + 8];
                let w = u64::from_le_bytes([
                    c[0].0, c[1].0, c[2].0, c[3].0, c[4].0, c[5].0, c[6].0, c[7].0,
                ]);
                if NodeFlags::needs_visit_word(w) == 0 {
                    v += 8;
                    continue;
                }
            }
            let lim = (v + 8).min(n);
            while v < lim {
                let f = self.flags[v];
                if !f.awake() {
                    v += 1;
                    continue;
                }
                // Receptions granted to sleeping or inactive receivers are
                // dropped undelivered and uncounted, as in the phased loop.
                while p < pairs.len() && pairs[p].0 < v {
                    p += 1;
                }
                let has_rx = p < pairs.len() && pairs[p].0 == v;
                if f.active() && (has_rx || !f.idle_end()) {
                    inbox.clear();
                    while p < pairs.len() && pairs[p].0 == v {
                        let sender = pairs[p].1;
                        let msg = self.tx_msg[sender]
                            .as_ref()
                            .expect("reception from a node that transmitted");
                        inbox.push((sender, msg.clone()));
                        p += 1;
                    }
                    self.stats.receptions += inbox.len() as u64;
                    let ctx = NodeCtx {
                        id: v,
                        global_slot: slot,
                        local_slot: slot - self.wake[v],
                    };
                    self.nodes[v].end_slot(&ctx, &inbox);
                    let active = self.nodes[v].is_active();
                    let idle = self.nodes[v].empty_end_slot_is_noop();
                    let mut fl = self.flags[v];
                    fl.set_active(active);
                    fl.set_idle_end(idle);
                    if !f.done() && self.nodes[v].is_done() {
                        fl.insert(NodeFlags::DONE);
                        self.done_count += 1;
                        self.stats.done_slot[v] = Some(slot);
                        newly_done.push(v);
                    }
                    self.flags[v] = fl;
                } else if !f.active() && !f.done() && self.nodes[v].is_done() {
                    // Awake-but-inactive nodes ran no callback this slot,
                    // but the phased loop still polls them, so keep that
                    // check for protocols whose nodes go silent before
                    // reporting done. Active idle-skipped nodes need no
                    // poll at all: their done state cannot have moved
                    // since the action pass checked it.
                    self.flags[v].insert(NodeFlags::DONE);
                    self.done_count += 1;
                    self.stats.done_slot[v] = Some(slot);
                    newly_done.push(v);
                }
                if f.just_done() {
                    self.flags[v].remove(NodeFlags::JUST_DONE);
                    newly_done.push(v);
                }
                v += 1;
            }
        }
        self.inbox = inbox;
    }

    /// Slot phase 2: every awake active node decides its action; the
    /// transmitter set lands in the dense reused buffers (`tx_ids`,
    /// `is_tx`, `tx_msg`), in ascending node order in both modes.
    // lint:hot — per-node action loop, runs every slot for every node
    fn phase_actions(&mut self, slot: u64, par_step: bool, obs: bool, rec: &mut dyn Recorder) {
        let n = self.graph.len();
        // This path queries `is_active()` live and never writes the
        // ACTIVE bits; the next fused slot must rebuild the column.
        self.flags_active_valid = false;
        self.tx_ids.clear();
        if par_step {
            // Each thread steps a static contiguous chunk of nodes; every
            // node draws from its own RNG stream, so the decisions match
            // the sequential loop exactly. Per-chunk transmitter lists are
            // merged in chunk order, which *is* ascending node order.
            for sc in self.par.iter_mut() {
                sc.tx.clear();
            }
            let wake = &self.wake;
            let par = &self.par;
            self.pool.chunks_mut3(
                &mut self.nodes,
                &mut self.rngs,
                &mut self.tx_msg,
                |t, start, nodes, rngs, msgs| {
                    par.with(t, |sc| {
                        for i in 0..nodes.len() {
                            let v = start + i;
                            if wake[v] <= slot && nodes[i].is_active() {
                                let ctx = NodeCtx {
                                    id: v,
                                    global_slot: slot,
                                    local_slot: slot - wake[v],
                                };
                                let mut rng = RandSlotRng(&mut rngs[i]);
                                if let Action::Transmit(msg) = nodes[i].begin_slot(&ctx, &mut rng) {
                                    sc.tx.push(v);
                                    msgs[i] = Some(msg);
                                }
                            }
                        }
                    })
                },
            );
            for sc in self.par.iter_mut() {
                self.tx_ids.append(&mut sc.tx);
            }
            for &t in &self.tx_ids {
                self.flags[t].insert(NodeFlags::TX);
            }
        } else {
            for v in 0..n {
                if self.is_awake(v) && self.nodes[v].is_active() {
                    let ctx = self.ctx(v);
                    let mut rng = RandSlotRng(&mut self.rngs[v]);
                    if let Action::Transmit(msg) = self.nodes[v].begin_slot(&ctx, &mut rng) {
                        self.tx_ids.push(v);
                        self.flags[v].insert(NodeFlags::TX);
                        self.tx_msg[v] = Some(msg);
                        if let Some(t) = &mut self.trace {
                            t.push(slot, Event::Transmit(v));
                        }
                        if obs {
                            rec.event(slot, &Event::Transmit(v).to_obs());
                        }
                    }
                }
            }
        }
    }

    /// Slot phase 4: delivers the granted receptions and runs every awake
    /// node's end-of-slot hook. The only per-reception allocation is the
    /// message clone the `Protocol` contract requires.
    // lint:hot — per-node delivery loop, runs every slot for every node
    fn phase_delivery(
        &mut self,
        slot: u64,
        par_step: bool,
        obs: bool,
        table: &ReceptionTable,
        rec: &mut dyn Recorder,
    ) {
        let n = self.graph.len();
        if par_step {
            // Messages are cloned out of the shared `tx_msg` buffer; each
            // thread delivers to its own chunk of nodes and counts its
            // receptions, merged additively afterwards (commutative, so
            // the total matches the sequential count exactly).
            let wake = &self.wake;
            let par = &self.par;
            let tx_msg = &self.tx_msg;
            self.pool.chunks_mut(&mut self.nodes, |t, start, chunk| {
                par.with(t, |sc| {
                    for (i, node) in chunk.iter_mut().enumerate() {
                        let v = start + i;
                        if wake[v] > slot || !node.is_active() {
                            continue;
                        }
                        sc.inbox.clear();
                        for &(_, sender) in table.heard_by(v) {
                            let msg = tx_msg[sender]
                                .as_ref()
                                .expect("reception from a node that transmitted");
                            sc.inbox.push((sender, msg.clone()));
                            sc.receptions += 1;
                        }
                        let ctx = NodeCtx {
                            id: v,
                            global_slot: slot,
                            local_slot: slot - wake[v],
                        };
                        node.end_slot(&ctx, &sc.inbox);
                    }
                })
            });
            for sc in self.par.iter_mut() {
                self.stats.receptions += sc.receptions;
                sc.receptions = 0;
            }
        } else {
            let mut inbox = std::mem::take(&mut self.inbox);
            for v in 0..n {
                if !self.is_awake(v) || !self.nodes[v].is_active() {
                    continue;
                }
                inbox.clear();
                for &(_, sender) in table.heard_by(v) {
                    let msg = self.tx_msg[sender]
                        .as_ref()
                        .expect("reception from a node that transmitted");
                    inbox.push((sender, msg.clone()));
                    self.stats.receptions += 1;
                    if let Some(t) = &mut self.trace {
                        t.push(
                            slot,
                            Event::Receive {
                                receiver: v,
                                sender,
                            },
                        );
                    }
                    if obs {
                        rec.event(
                            slot,
                            &Event::Receive {
                                receiver: v,
                                sender,
                            }
                            .to_obs(),
                        );
                    }
                }
                let ctx = self.ctx(v);
                self.nodes[v].end_slot(&ctx, &inbox);
            }
            self.inbox = inbox;
        }
    }

    /// Runs until every node is done or `max_slots` slots have executed.
    pub fn run(&mut self, max_slots: u64) -> RunOutcome {
        self.run_observed(max_slots, |_, _| {})
    }

    /// Like [`Simulator::run`], but calls `observe(&self, &view)` after
    /// every slot — the hook the experiment harness uses for per-slot
    /// audits (independence checks, interference measurements).
    pub fn run_observed(
        &mut self,
        max_slots: u64,
        mut observe: impl FnMut(&Self, &StepView<'_>),
    ) -> RunOutcome {
        self.run_recorded(max_slots, &mut NoopRecorder, |sim, view, _| {
            observe(sim, view)
        })
    }

    /// Like [`Simulator::run_observed`], but threads a [`Recorder`] through
    /// every slot: the engine streams wake/transmit/receive/done events
    /// into it and the observer gets it for protocol-level instrumentation
    /// (phase transitions, invariant probes).
    ///
    /// The recorder only receives per-slot *events* here; call
    /// [`Simulator::export_metrics`] once after the run to flush the
    /// aggregate counters, so repeated `run_recorded` segments on one
    /// simulator never double-count.
    pub fn run_recorded(
        &mut self,
        max_slots: u64,
        rec: &mut dyn Recorder,
        mut observe: impl FnMut(&Self, &StepView<'_>, &mut dyn Recorder),
    ) -> RunOutcome {
        let start = self.slot;
        while self.slot - start < max_slots {
            if self.all_done() {
                return RunOutcome {
                    all_done: true,
                    slots: self.slot - start,
                };
            }
            self.step_impl(rec);
            // The view is rebuilt from the shared borrow so the observer
            // can also see the simulator itself.
            let view = self.view();
            observe(self, &view, rec);
            // Series sampling happens after the observer so the slot's
            // protocol-level metrics (mw.*, probe.*) are already recorded.
            rec.series_tick(view.slot);
        }
        RunOutcome {
            all_done: self.all_done(),
            slots: self.slot - start,
        }
    }

    /// Exports the run's aggregate metrics into `rec` under the canonical
    /// `sim.*` / `resolver.*` keys (see `docs/OBS_SCHEMA.md`): slot,
    /// transmission, and reception totals, the channel-load histogram, and
    /// the resolver's fast-path counters if the model tracks them.
    ///
    /// Call once, after the run; counters are cumulative totals.
    pub fn export_metrics(&self, rec: &mut dyn Recorder) {
        rec.counter_add(keys::SIM_SLOTS, self.stats.slots);
        rec.counter_add(keys::SIM_TRANSMISSIONS, self.stats.transmissions);
        rec.counter_add(keys::SIM_RECEPTIONS, self.stats.receptions);
        rec.counter_add(keys::SIM_DONE_NODES, self.stats.done_count() as u64);
        rec.histogram_merge(keys::SIM_CHANNEL_LOAD, &self.stats.channel_load);
        if let Some(rs) = self.model.resolver_stats() {
            rs.export_into(rec);
        }
    }
}

/// Span-argument conversion for counts: saturates instead of wrapping so a
/// pathological value can never corrupt a trace.
fn count_i64(x: usize) -> i64 {
    i64::try_from(x).unwrap_or(i64::MAX)
}

/// Span-argument conversion for `u64` counters (saturating).
fn count_u64(x: u64) -> i64 {
    i64::try_from(x).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SlotRng;
    use sinr_geometry::{placement, Point};
    use sinr_model::{GraphModel, IdealModel};

    /// Transmits its id once at a fixed local slot, then is done.
    struct OneShot {
        fire_at: u64,
        fired: bool,
        heard: Vec<NodeId>,
    }

    impl Protocol for OneShot {
        type Message = NodeId;
        fn begin_slot<R: SlotRng + ?Sized>(
            &mut self,
            ctx: &NodeCtx,
            _rng: &mut R,
        ) -> Action<NodeId> {
            if ctx.local_slot == self.fire_at && !self.fired {
                self.fired = true;
                Action::Transmit(ctx.id)
            } else {
                Action::Listen
            }
        }
        fn end_slot(&mut self, _ctx: &NodeCtx, received: &[(NodeId, NodeId)]) {
            self.heard.extend(received.iter().map(|&(s, _)| s));
        }
        fn is_done(&self) -> bool {
            self.fired
        }
    }

    fn two_neighbors() -> UnitDiskGraph {
        UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0)
    }

    #[test]
    fn staggered_transmissions_are_heard() {
        let g = two_neighbors();
        let mut sim = Simulator::new(g, IdealModel::new(), WakeupSchedule::Synchronous, 0, |id| {
            OneShot {
                fire_at: id as u64, // node 0 fires slot 0, node 1 slot 1
                fired: false,
                heard: Vec::new(),
            }
        });
        let outcome = sim.run(10);
        assert!(outcome.all_done);
        assert_eq!(sim.node(0).heard, vec![1]);
        assert_eq!(sim.node(1).heard, vec![0]);
        assert_eq!(sim.stats().transmissions, 2);
        assert_eq!(sim.stats().receptions, 2);
    }

    #[test]
    fn simultaneous_transmitters_hear_nothing() {
        let g = two_neighbors();
        let mut sim = Simulator::new(g, GraphModel::new(), WakeupSchedule::Synchronous, 0, |_| {
            OneShot {
                fire_at: 0,
                fired: false,
                heard: Vec::new(),
            }
        });
        sim.run(5);
        assert!(sim.node(0).heard.is_empty());
        assert!(sim.node(1).heard.is_empty());
    }

    #[test]
    fn sleeping_nodes_do_not_participate() {
        let g = two_neighbors();
        // Node 1 wakes at slot 3 (staggered step 3); node 0 fires at local 0.
        let mut sim = Simulator::new(
            g,
            IdealModel::new(),
            WakeupSchedule::Staggered { step: 3 },
            0,
            |_id| OneShot {
                fire_at: 0,
                fired: false,
                heard: Vec::new(),
            },
        );
        let _ = id_holder(&mut sim);
        sim.run(10);
        // Node 0 fired at slot 0 while node 1 slept: nothing heard.
        assert!(sim.node(1).heard.is_empty());
        // Node 1 fired at slot 3 (its local 0) while node 0 listened.
        assert_eq!(sim.node(0).heard, vec![1]);
    }

    // Helper that exists only to exercise the generic accessors.
    fn id_holder<P: Protocol, M: InterferenceModel>(sim: &mut Simulator<P, M>) -> u64 {
        sim.current_slot()
    }

    #[test]
    fn local_slot_is_relative_to_wake() {
        struct Probe {
            saw: Vec<(u64, u64)>,
        }
        impl Protocol for Probe {
            type Message = ();
            fn begin_slot<R: SlotRng + ?Sized>(
                &mut self,
                ctx: &NodeCtx,
                _rng: &mut R,
            ) -> Action<()> {
                self.saw.push((ctx.global_slot, ctx.local_slot));
                Action::Listen
            }
            fn end_slot(&mut self, _ctx: &NodeCtx, _r: &[(NodeId, ())]) {}
            fn is_done(&self) -> bool {
                self.saw.len() >= 3
            }
        }
        let g = two_neighbors();
        let mut sim = Simulator::new(
            g,
            IdealModel::new(),
            WakeupSchedule::Staggered { step: 2 },
            0,
            |_| Probe { saw: Vec::new() },
        );
        sim.run(10);
        // Done nodes stay active by default, so node 0 keeps observing
        // slots until the run ends; check the prefixes.
        assert_eq!(&sim.node(0).saw[..3], &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(&sim.node(1).saw[..3], &[(2, 0), (3, 1), (4, 2)]);
    }

    #[test]
    fn determinism_across_runs() {
        struct Rnd {
            txs: u32,
        }
        impl Protocol for Rnd {
            type Message = u32;
            fn begin_slot<R: SlotRng + ?Sized>(
                &mut self,
                _ctx: &NodeCtx,
                rng: &mut R,
            ) -> Action<u32> {
                if rng.chance(0.3) {
                    self.txs += 1;
                    Action::Transmit(self.txs)
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _ctx: &NodeCtx, _r: &[(NodeId, u32)]) {}
            fn is_done(&self) -> bool {
                self.txs >= 5
            }
        }
        let make = || {
            let g = UnitDiskGraph::new(placement::uniform(40, 3.0, 3.0, 2), 1.0);
            Simulator::new(
                g,
                GraphModel::new(),
                WakeupSchedule::Synchronous,
                11,
                |_| Rnd { txs: 0 },
            )
        };
        let mut a = make();
        let mut b = make();
        let oa = a.run(500);
        let ob = b.run(500);
        assert_eq!(oa, ob);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn run_stops_at_max_slots() {
        struct Never;
        impl Protocol for Never {
            type Message = ();
            fn begin_slot<R: SlotRng + ?Sized>(&mut self, _: &NodeCtx, _: &mut R) -> Action<()> {
                Action::Listen
            }
            fn end_slot(&mut self, _: &NodeCtx, _: &[(NodeId, ())]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = two_neighbors();
        let mut sim = Simulator::new(g, IdealModel::new(), WakeupSchedule::Synchronous, 0, |_| {
            Never
        });
        let outcome = sim.run(17);
        assert!(!outcome.all_done);
        assert_eq!(outcome.slots, 17);
        assert_eq!(sim.stats().slots, 17);
    }

    #[test]
    fn trace_records_lifecycle() {
        let g = two_neighbors();
        let mut sim = Simulator::new(g, IdealModel::new(), WakeupSchedule::Synchronous, 0, |id| {
            OneShot {
                fire_at: id as u64,
                fired: false,
                heard: Vec::new(),
            }
        });
        sim.enable_trace(100);
        sim.run(10);
        let trace = sim.trace().unwrap();
        use crate::trace::Event;
        let kinds: Vec<_> = trace.events().map(|(_, e)| e).collect();
        assert!(kinds.iter().any(|e| matches!(e, Event::Wake(_))));
        assert!(kinds.iter().any(|e| matches!(e, Event::Transmit(_))));
        assert!(kinds.iter().any(|e| matches!(e, Event::Receive { .. })));
        assert!(kinds.iter().any(|e| matches!(e, Event::Done(_))));
    }

    #[test]
    fn activity_accounting_partitions_awake_slots() {
        let g = two_neighbors();
        let mut sim = Simulator::new(
            g,
            IdealModel::new(),
            WakeupSchedule::Staggered { step: 3 },
            0,
            |id| OneShot {
                fire_at: id as u64 + 1,
                fired: false,
                heard: Vec::new(),
            },
        );
        let outcome = sim.run(20);
        let stats = sim.stats();
        for v in 0..2 {
            let awake = outcome.slots - stats.wake_slot[v];
            assert_eq!(
                stats.tx_slots[v] + stats.listen_slots[v],
                awake,
                "node {v}: every awake slot is tx or listen"
            );
            assert_eq!(stats.tx_slots[v], 1, "node {v} fired exactly once");
        }
        assert_eq!(
            stats.transmissions,
            stats.tx_slots.iter().sum::<u64>(),
            "global transmission count equals the per-node tx totals"
        );
    }

    #[test]
    fn pooled_stepping_matches_sequential_bit_for_bit() {
        use sinr_pool::Pool;
        struct Rnd {
            txs: u32,
            heard: Vec<NodeId>,
        }
        impl Protocol for Rnd {
            type Message = u32;
            fn begin_slot<R: SlotRng + ?Sized>(
                &mut self,
                _ctx: &NodeCtx,
                rng: &mut R,
            ) -> Action<u32> {
                if rng.chance(0.2) {
                    self.txs += 1;
                    Action::Transmit(self.txs)
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _ctx: &NodeCtx, received: &[(NodeId, u32)]) {
                self.heard.extend(received.iter().map(|&(s, _)| s));
            }
            fn is_done(&self) -> bool {
                self.txs >= 3
            }
        }
        let n = 300; // over PAR_NODE_CUTOFF so the shards actually engage
        let make = || {
            let g = UnitDiskGraph::new(placement::uniform(n, 8.0, 8.0, 5), 1.0);
            Simulator::new(
                g,
                GraphModel::new(),
                WakeupSchedule::Synchronous,
                13,
                |_| Rnd {
                    txs: 0,
                    heard: Vec::new(),
                },
            )
        };
        let mut base = make();
        let base_out = base.run(400);
        for threads in [2usize, 4] {
            let mut sim = make();
            sim.set_pool(&Pool::new(threads));
            let out = sim.run(400);
            assert_eq!(out, base_out, "outcome at threads {threads}");
            assert_eq!(sim.stats(), base.stats(), "stats at threads {threads}");
            for v in 0..n {
                assert_eq!(
                    sim.node(v).heard,
                    base.node(v).heard,
                    "node {v} inbox history"
                );
            }
        }
    }

    #[test]
    fn recorded_runs_emit_engine_phase_spans_and_series_ticks() {
        use sinr_obs::{FullRecorder, SeriesConfig};
        let g = two_neighbors();
        let mut sim = Simulator::new(g, IdealModel::new(), WakeupSchedule::Synchronous, 0, |id| {
            OneShot {
                fire_at: id as u64,
                fired: false,
                heard: Vec::new(),
            }
        });
        let mut rec = FullRecorder::new();
        rec.enable_series(SeriesConfig::new(1).with_keys(vec![keys::SIM_SLOT_TRANSMITTERS]));
        let out = sim.run_recorded(10, &mut rec, |_, _, _| {});
        assert!(out.all_done);
        // Three engine spans per slot, in phase order within each slot.
        let spans: Vec<_> = rec.spans().collect();
        assert_eq!(spans.len() as u64, 3 * out.slots);
        assert_eq!(spans[0].name, span_names::ENGINE_ACTIONS);
        assert_eq!(spans[1].name, span_names::ENGINE_RESOLVE);
        assert_eq!(spans[2].name, span_names::ENGINE_DELIVERY);
        assert!(spans.iter().all(|s| s.track == SpanTrack::Engine));
        // Slot 0: node 0 transmits → tx arg 1; the gauge tracks the last
        // slot's transmitter count.
        assert_eq!(spans[0].args[0], Some(("tx", 1)));
        let series = rec.series().expect("series enabled");
        assert_eq!(series.len() as u64, out.slots);
        assert_eq!(
            series.column(keys::SIM_SLOT_TRANSMITTERS),
            Some(&[1.0, 1.0][..])
        );
    }

    #[test]
    fn observer_sees_every_slot() {
        let g = two_neighbors();
        let mut sim = Simulator::new(g, IdealModel::new(), WakeupSchedule::Synchronous, 0, |id| {
            OneShot {
                fire_at: id as u64,
                fired: false,
                heard: Vec::new(),
            }
        });
        let mut slots_seen = Vec::new();
        sim.run_observed(10, |_, view| slots_seen.push(view.slot));
        assert_eq!(slots_seen, vec![0, 1]); // done after slot 1
    }
}
