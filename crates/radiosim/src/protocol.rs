//! The per-node protocol automaton interface.

use sinr_geometry::NodeId;

/// What a node does in a slot: transmit a message or listen.
///
/// The radio is half-duplex — a transmitting node receives nothing in the
/// same slot, matching the paper's model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Broadcast `M` this slot (delivery decided by the interference model).
    Transmit(M),
    /// Stay silent and listen.
    Listen,
}

impl<M> Action<M> {
    /// Whether this action is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit(_))
    }
}

/// Read-only per-slot context handed to the protocol callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's identifier.
    pub id: NodeId,
    /// The global synchronized slot number.
    pub global_slot: u64,
    /// Slots elapsed since this node woke up (0 in its first active slot).
    ///
    /// The MW algorithm is written against local time — all its intervals
    /// ("for ⌈ηΔ ln n⌉ time slots…") start at wake-up.
    pub local_slot: u64,
}

/// The randomness available to a protocol inside a slot.
///
/// Protocols draw through this trait (rather than a concrete RNG) so the
/// engine can hand each node an independently seeded generator and tests can
/// substitute deterministic sequences.
pub trait SlotRng {
    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool;
    /// A uniform draw from `[0, 1)`.
    fn uniform(&mut self) -> f64;
    /// A uniform integer draw from `0..bound` (`bound ≥ 1`).
    fn pick(&mut self, bound: u64) -> u64;
}

/// A [`SlotRng`] backed by any [`sinr_rng::Rng`].
#[derive(Debug)]
pub struct RandSlotRng<R>(pub R);

impl<R: sinr_rng::Rng> SlotRng for RandSlotRng<R> {
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.0.random::<f64>() < p
        }
    }

    fn uniform(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    fn pick(&mut self, bound: u64) -> u64 {
        assert!(bound >= 1, "pick bound must be at least 1");
        self.0.random_range(0..bound)
    }
}

/// A node's protocol automaton.
///
/// Driven by the [`Simulator`](crate::Simulator): once per slot (while the
/// node is awake) it is asked for an [`Action`], the engine resolves all
/// transmissions through the interference model, and the slot's receptions
/// are delivered back via [`Protocol::end_slot`].
///
/// Protocols have *no* access to the topology — like the paper's nodes,
/// they learn about neighbors only through received messages.
///
/// Protocols are `Send` (and messages `Send + Sync`) so the engine can
/// shard the per-node step phase across the worker pool: each node is
/// stepped by exactly one thread per slot, and messages are cloned out of
/// a shared read-only buffer during delivery. Protocols remain plain
/// single-threaded automata — they never observe concurrency.
pub trait Protocol: Send {
    /// The message type broadcast by this protocol.
    type Message: Clone + Send + Sync;

    /// Called once, in the slot the node wakes up, before its first
    /// `begin_slot`.
    fn on_wake(&mut self, _ctx: &NodeCtx) {}

    /// Decides this slot's action. Called exactly once per slot while the
    /// node is awake and not yet done.
    ///
    /// Generic over the RNG so the engine's hot loop monomorphizes to the
    /// concrete `RandSlotRng<&mut StdRng>` — no indirect call per awake
    /// node per slot. `?Sized` keeps `&mut dyn SlotRng` working for tests
    /// that substitute scripted sequences.
    fn begin_slot<R: SlotRng + ?Sized>(
        &mut self,
        ctx: &NodeCtx,
        rng: &mut R,
    ) -> Action<Self::Message>;

    /// Consumes this slot's receptions: `(sender, message)` pairs, empty if
    /// nothing was decoded (or the node transmitted). Called after every
    /// `begin_slot`, in the same slot.
    fn end_slot(&mut self, ctx: &NodeCtx, received: &[(NodeId, Self::Message)]);

    /// Whether the node has irrevocably produced its output. Done nodes
    /// may keep participating (the MW color classes `C_i` keep transmitting
    /// after deciding); the engine uses this only for termination detection
    /// and timing statistics.
    fn is_done(&self) -> bool;

    /// Whether the node still needs slots at all. Defaults to `true`;
    /// protocols whose terminal states are silent can return `false` to let
    /// the engine skip them entirely.
    fn is_active(&self) -> bool {
        true
    }

    /// Whether `end_slot` with an *empty* reception list would be a no-op
    /// in the node's current state. The fused sequential engine skips the
    /// whole end-of-slot callback for nodes that report `true` and
    /// received nothing, turning the delivery pass from a full node-state
    /// sweep into a one-byte flag scan for them — decisive for
    /// long-tailed protocols like MW, whose color classes spend most of
    /// the run announcing with nothing to process. Defaults to `false`
    /// (never skip), which preserves exact behaviour for protocols that
    /// do per-slot work in `end_slot` even without receptions.
    fn empty_end_slot_is_noop(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_rng::rngs::StdRng;
    use sinr_rng::SeedableRng;

    #[test]
    fn action_is_transmit() {
        assert!(Action::Transmit(5u32).is_transmit());
        assert!(!Action::<u32>::Listen.is_transmit());
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut rng = RandSlotRng(StdRng::seed_from_u64(0));
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
            assert!(!rng.chance(-0.5));
            assert!(rng.chance(1.5));
        }
    }

    #[test]
    fn chance_probability_is_roughly_respected() {
        let mut rng = RandSlotRng(StdRng::seed_from_u64(42));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = RandSlotRng(StdRng::seed_from_u64(7));
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_respects_bound() {
        let mut rng = RandSlotRng(StdRng::seed_from_u64(9));
        for _ in 0..1000 {
            assert!(rng.pick(7) < 7);
        }
        assert_eq!(rng.pick(1), 0);
    }
}
