#![warn(missing_docs)]

//! Slot-synchronous radio network simulator.
//!
//! The paper's model (§II): time is divided into discrete slots synchronized
//! between all nodes; nodes wake up *asynchronously and spontaneously*; in
//! each slot a node either transmits a message or listens; reception is
//! decided by an interference model (the SINR physical model, or a baseline).
//!
//! The simulator is deterministic: every run is a pure function of the
//! topology, the protocol, the wake-up schedule, and a `u64` seed. Each node
//! draws from its own seeded RNG so results do not depend on iteration
//! order.
//!
//! * [`Protocol`] — the per-node automaton interface (`begin_slot` decides
//!   transmit/listen, `end_slot` consumes this slot's receptions).
//! * [`Simulator`] — drives all nodes slot by slot against an
//!   [`InterferenceModel`](sinr_model::InterferenceModel).
//! * [`WakeupSchedule`] — synchronous, uniformly random, or staggered
//!   spontaneous wake-up times.
//! * [`SimStats`] / [`trace::Trace`] — measurement and debugging output.
//!
//! # Example
//!
//! A trivial protocol where every node transmits its id with probability
//! 1/2 per slot until it has heard some neighbor:
//!
//! ```
//! use sinr_geometry::{placement, UnitDiskGraph};
//! use sinr_model::GraphModel;
//! use sinr_radiosim::{Action, NodeCtx, Protocol, Simulator, SlotRng, WakeupSchedule};
//!
//! struct Gossip { heard: bool }
//!
//! impl Protocol for Gossip {
//!     type Message = usize;
//!     fn begin_slot<R: SlotRng + ?Sized>(&mut self, ctx: &NodeCtx, rng: &mut R) -> Action<usize> {
//!         if rng.chance(0.5) { Action::Transmit(ctx.id) } else { Action::Listen }
//!     }
//!     fn end_slot(&mut self, _ctx: &NodeCtx, received: &[(usize, usize)]) {
//!         if !received.is_empty() { self.heard = true; }
//!     }
//!     fn is_done(&self) -> bool { self.heard }
//! }
//!
//! // A small dense placement: every node is guaranteed a neighbor.
//! let g = UnitDiskGraph::new(placement::uniform(10, 0.7, 0.7, 1), 1.0);
//! let mut sim = Simulator::new(g, GraphModel::new(), WakeupSchedule::Synchronous, 7, |_id| {
//!     Gossip { heard: false }
//! });
//! let outcome = sim.run(10_000);
//! assert!(outcome.all_done);
//! ```

pub mod energy;
pub mod engine;
pub mod protocol;
pub mod stats;
pub mod trace;
pub mod wakeup;

pub use engine::{NodeFlags, RunOutcome, Simulator, StepView};
pub use protocol::{Action, NodeCtx, Protocol, SlotRng};
pub use stats::SimStats;
pub use wakeup::WakeupSchedule;
