//! A simple radio energy model over the per-node activity counters.
//!
//! Sensor-network deployments care about energy at least as much as
//! latency; the MW algorithm's low send probabilities (`q_s ∝ 1/Δ`) keep
//! radios mostly listening. This module turns the [`SimStats`] activity
//! counters into energy figures under a configurable cost model
//! (defaults follow the common low-power-radio regime where receive/idle
//! listening costs about as much as transmitting).

use crate::stats::SimStats;
use sinr_geometry::NodeId;

/// Per-slot energy costs (arbitrary units, e.g. µJ per slot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Cost of a slot spent transmitting.
    pub tx_cost: f64,
    /// Cost of a slot spent awake listening.
    pub listen_cost: f64,
    /// Cost of a slot spent asleep (before wake-up).
    pub sleep_cost: f64,
}

impl EnergyModel {
    /// A typical low-power radio: transmit ≈ listen, sleep ≈ free.
    pub fn low_power_radio() -> Self {
        EnergyModel {
            tx_cost: 1.0,
            listen_cost: 0.8,
            sleep_cost: 0.001,
        }
    }

    /// Energy spent by node `v` over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `stats`.
    pub fn node_energy(&self, stats: &SimStats, v: NodeId) -> f64 {
        // Pre-wake slots are the only sleeping ones; every awake slot is
        // counted by the engine as either transmitting or listening.
        let sleeping = stats.wake_slot[v].min(stats.slots);
        self.tx_cost * stats.tx_slots[v] as f64
            + self.listen_cost * stats.listen_slots[v] as f64
            + self.sleep_cost * sleeping as f64
    }

    /// Total energy over all nodes.
    pub fn total_energy(&self, stats: &SimStats) -> f64 {
        (0..stats.tx_slots.len())
            .map(|v| self.node_energy(stats, v))
            .sum()
    }

    /// The maximum per-node energy — the battery bottleneck.
    pub fn max_node_energy(&self, stats: &SimStats) -> f64 {
        (0..stats.tx_slots.len())
            .map(|v| self.node_energy(stats, v))
            .fold(0.0, f64::max)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::low_power_radio()
    }
}

/// The fraction of awake slots node `v` spent transmitting — the duty
/// cycle of its radio's TX chain.
///
/// Returns 0 for a node that was never awake.
pub fn tx_duty_cycle(stats: &SimStats, v: NodeId) -> f64 {
    let awake = stats.tx_slots[v] + stats.listen_slots[v];
    if awake == 0 {
        0.0
    } else {
        stats.tx_slots[v] as f64 / awake as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        let mut s = SimStats::new(vec![0, 10]);
        s.slots = 100;
        s.tx_slots = vec![20, 5];
        s.listen_slots = vec![80, 85];
        s
    }

    #[test]
    fn node_energy_weighs_activities() {
        let m = EnergyModel {
            tx_cost: 2.0,
            listen_cost: 1.0,
            sleep_cost: 0.0,
        };
        let s = stats();
        assert!((m.node_energy(&s, 0) - (2.0 * 20.0 + 80.0)).abs() < 1e-9);
        assert!((m.node_energy(&s, 1) - (2.0 * 5.0 + 85.0)).abs() < 1e-9);
    }

    #[test]
    fn total_and_max_aggregate() {
        let m = EnergyModel {
            tx_cost: 1.0,
            listen_cost: 0.0,
            sleep_cost: 0.0,
        };
        let s = stats();
        assert!((m.total_energy(&s) - 25.0).abs() < 1e-9);
        assert!((m.max_node_energy(&s) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_is_tx_fraction_of_awake() {
        let s = stats();
        assert!((tx_duty_cycle(&s, 0) - 0.2).abs() < 1e-9);
        let empty = SimStats::new(vec![0]);
        assert_eq!(tx_duty_cycle(&empty, 0), 0.0);
    }

    #[test]
    fn default_is_low_power() {
        assert_eq!(EnergyModel::default(), EnergyModel::low_power_radio());
    }
}
