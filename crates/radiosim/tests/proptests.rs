//! Property-based tests for the simulation engine's invariants.

use proptest::prelude::*;
use sinr_geometry::{NodeId, Point, UnitDiskGraph};
use sinr_model::{GraphModel, IdealModel, SinrConfig, SinrModel};
use sinr_radiosim::{Action, NodeCtx, Protocol, Simulator, SlotRng, WakeupSchedule};

/// A protocol that transmits with a per-node probability and records
/// everything it hears.
#[derive(Debug, Clone)]
struct Chatter {
    p: f64,
    rounds: u64,
    acted: u64,
    heard: Vec<(u64, NodeId)>,
}

impl Protocol for Chatter {
    type Message = u64;
    fn begin_slot(&mut self, ctx: &NodeCtx, rng: &mut dyn SlotRng) -> Action<u64> {
        self.acted += 1;
        if rng.chance(self.p) {
            Action::Transmit(ctx.global_slot)
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, ctx: &NodeCtx, received: &[(NodeId, u64)]) {
        for &(s, slot_stamp) in received {
            // Messages carry the slot they were sent in; delivery must be
            // same-slot.
            assert_eq!(slot_stamp, ctx.global_slot);
            self.heard.push((ctx.global_slot, s));
        }
    }
    fn is_done(&self) -> bool {
        self.acted >= self.rounds
    }
}

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..4.0f64, 0.0..4.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_invariants_hold_for_random_runs(
        pts in arb_points(),
        seed in 0u64..500,
        p in 0.05..0.9f64,
        model_pick in 0usize..3,
        window in 1u64..30,
    ) {
        let cfg = SinrConfig::default_unit();
        let graph = UnitDiskGraph::new(pts, cfg.r_t());
        let n = graph.len();
        let rounds = 25u64;
        let mk = |_: NodeId| Chatter { p, rounds, acted: 0, heard: Vec::new() };
        let schedule = WakeupSchedule::UniformRandom { window };

        let run_once = || {
            let mut sim: Simulator<Chatter, Box<dyn sinr_model::InterferenceModel>> =
                Simulator::new(
                    graph.clone(),
                    match model_pick {
                        0 => Box::new(SinrModel::new(cfg)),
                        1 => Box::new(GraphModel::new()),
                        _ => Box::new(IdealModel::new()),
                    },
                    schedule,
                    seed,
                    mk,
                );
            let outcome = sim.run(10_000);
            (outcome, sim)
        };

        let (outcome, sim) = run_once();
        prop_assert!(outcome.all_done);
        let stats = sim.stats();

        // 1. Activity partition: every awake slot is tx or listen.
        for v in 0..n {
            let awake = outcome.slots.saturating_sub(stats.wake_slot[v]);
            prop_assert_eq!(stats.tx_slots[v] + stats.listen_slots[v], awake);
        }
        // 2. Aggregates match per-node counters.
        prop_assert_eq!(stats.transmissions, stats.tx_slots.iter().sum::<u64>());
        // 3. Channel-load histogram covers every slot exactly once.
        prop_assert_eq!(stats.concurrent_tx().iter().sum::<u64>(), outcome.slots);
        // 4. Receptions only from adjacent senders, never self.
        for v in 0..n {
            for &(_, s) in &sim.node(v).heard {
                prop_assert!(s != v);
                prop_assert!(graph.are_adjacent(v, s));
            }
        }
        // 5. Total receptions match.
        let total_heard: usize = (0..n).map(|v| sim.node(v).heard.len()).sum();
        prop_assert_eq!(stats.receptions, total_heard as u64);

        // 6. Determinism: a second run is identical.
        let (outcome2, sim2) = run_once();
        prop_assert_eq!(outcome, outcome2);
        prop_assert_eq!(stats, sim2.stats());
        for v in 0..n {
            prop_assert_eq!(&sim.node(v).heard, &sim2.node(v).heard);
        }
    }
}
