//! Property-based tests for the simulation engine's invariants.

use proptest::prelude::*;
use sinr_geometry::{NodeId, Point, UnitDiskGraph};
use sinr_model::{GraphModel, IdealModel, SinrConfig, SinrModel};
use sinr_radiosim::{Action, NodeCtx, Protocol, Simulator, SlotRng, WakeupSchedule};

/// A protocol that transmits with a per-node probability and records
/// everything it hears.
#[derive(Debug, Clone)]
struct Chatter {
    p: f64,
    rounds: u64,
    acted: u64,
    heard: Vec<(u64, NodeId)>,
}

impl Protocol for Chatter {
    type Message = u64;
    fn begin_slot<R: SlotRng + ?Sized>(&mut self, ctx: &NodeCtx, rng: &mut R) -> Action<u64> {
        self.acted += 1;
        if rng.chance(self.p) {
            Action::Transmit(ctx.global_slot)
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, ctx: &NodeCtx, received: &[(NodeId, u64)]) {
        for &(s, slot_stamp) in received {
            // Messages carry the slot they were sent in; delivery must be
            // same-slot.
            assert_eq!(slot_stamp, ctx.global_slot);
            self.heard.push((ctx.global_slot, s));
        }
    }
    fn is_done(&self) -> bool {
        self.acted >= self.rounds
    }
}

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..4.0f64, 0.0..4.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_invariants_hold_for_random_runs(
        pts in arb_points(),
        seed in 0u64..500,
        p in 0.05..0.9f64,
        model_pick in 0usize..3,
        window in 1u64..30,
    ) {
        let cfg = SinrConfig::default_unit();
        let graph = UnitDiskGraph::new(pts, cfg.r_t());
        let n = graph.len();
        let rounds = 25u64;
        let mk = |_: NodeId| Chatter { p, rounds, acted: 0, heard: Vec::new() };
        let schedule = WakeupSchedule::UniformRandom { window };

        let run_once = || {
            let mut sim: Simulator<Chatter, Box<dyn sinr_model::InterferenceModel>> =
                Simulator::new(
                    graph.clone(),
                    match model_pick {
                        0 => Box::new(SinrModel::new(cfg)),
                        1 => Box::new(GraphModel::new()),
                        _ => Box::new(IdealModel::new()),
                    },
                    schedule,
                    seed,
                    mk,
                );
            let outcome = sim.run(10_000);
            (outcome, sim)
        };

        let (outcome, sim) = run_once();
        prop_assert!(outcome.all_done);
        let stats = sim.stats();

        // 1. Activity partition: every awake slot is tx or listen.
        for v in 0..n {
            let awake = outcome.slots.saturating_sub(stats.wake_slot[v]);
            prop_assert_eq!(stats.tx_slots[v] + stats.listen_slots[v], awake);
        }
        // 2. Aggregates match per-node counters.
        prop_assert_eq!(stats.transmissions, stats.tx_slots.iter().sum::<u64>());
        // 3. Channel-load histogram covers every slot exactly once.
        prop_assert_eq!(stats.concurrent_tx().iter().sum::<u64>(), outcome.slots);
        // 4. Receptions only from adjacent senders, never self.
        for v in 0..n {
            for &(_, s) in &sim.node(v).heard {
                prop_assert!(s != v);
                prop_assert!(graph.are_adjacent(v, s));
            }
        }
        // 5. Total receptions match.
        let total_heard: usize = (0..n).map(|v| sim.node(v).heard.len()).sum();
        prop_assert_eq!(stats.receptions, total_heard as u64);

        // 6. Determinism: a second run is identical.
        let (outcome2, sim2) = run_once();
        prop_assert_eq!(outcome, outcome2);
        prop_assert_eq!(stats, sim2.stats());
        for v in 0..n {
            prop_assert_eq!(&sim.node(v).heard, &sim2.node(v).heard);
        }
    }

    /// SoA-vs-AoS differential: the fused engine reads activity and done
    /// bits from its packed `NodeFlags` column, while the phased engine
    /// (forced by an enabled recorder) queries the protocol live. Both
    /// must produce byte-identical outcomes, stats, and inbox histories —
    /// including runs that interleave the two paths mid-flight, which
    /// exercises the ACTIVE-column rebuild on every fused re-entry.
    #[test]
    fn fused_flag_column_matches_phased_live_queries(
        pts in arb_points(),
        seed in 0u64..500,
        p in 0.05..0.9f64,
        rounds in 1u64..20,
        stride in 1u64..8,
    ) {
        let cfg = SinrConfig::default_unit();
        let graph = UnitDiskGraph::new(pts, cfg.r_t());
        let n = graph.len();
        let mk_sim = || {
            Simulator::new(
                graph.clone(),
                SinrModel::new(cfg),
                WakeupSchedule::UniformRandom { window: 10 },
                seed,
                |_| Quieting { p, rounds, acted: 0, heard: Vec::new() },
            )
        };

        // Baseline: pure fused run (flags column drives everything).
        let mut fused = mk_sim();
        let fused_out = fused.run(5_000);
        prop_assert!(fused_out.all_done);

        // Pure phased run: an enabled recorder forces the phased
        // sequential loops, which bypass the flags column.
        let mut phased = mk_sim();
        let mut rec = sinr_obs::FullRecorder::new();
        let phased_out = phased.run_recorded(5_000, &mut rec, |_, _, _| {});

        // Interleaved run: alternate fused and phased segments so the
        // flags column goes stale and must be rebuilt.
        let mut mixed = mk_sim();
        let mut mixed_rec = sinr_obs::FullRecorder::new();
        let mut mixed_slots = 0u64;
        while !mixed.all_done() && mixed_slots < 5_000 {
            if (mixed_slots / stride) % 2 == 0 {
                mixed.step();
            } else {
                mixed.step_recorded(&mut mixed_rec);
            }
            mixed_slots += 1;
        }

        prop_assert_eq!(fused_out, phased_out);
        prop_assert_eq!(mixed_slots, fused_out.slots);
        prop_assert_eq!(fused.stats(), phased.stats());
        prop_assert_eq!(fused.stats(), mixed.stats());
        for v in 0..n {
            prop_assert_eq!(&fused.node(v).heard, &phased.node(v).heard);
            prop_assert_eq!(&fused.node(v).heard, &mixed.node(v).heard);
        }
    }
}

/// Like [`Chatter`], but deactivates for good once done: its terminal
/// state is silent, so the engine's activity gates (live `is_active()`
/// on the phased path, the cached ACTIVE flag bit on the fused path)
/// actually discriminate between nodes mid-run.
#[derive(Debug, Clone)]
struct Quieting {
    p: f64,
    rounds: u64,
    acted: u64,
    heard: Vec<(u64, NodeId)>,
}

impl Protocol for Quieting {
    type Message = u64;
    fn begin_slot<R: SlotRng + ?Sized>(&mut self, ctx: &NodeCtx, rng: &mut R) -> Action<u64> {
        self.acted += 1;
        if rng.chance(self.p) {
            Action::Transmit(ctx.global_slot)
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, ctx: &NodeCtx, received: &[(NodeId, u64)]) {
        for &(s, slot_stamp) in received {
            assert_eq!(slot_stamp, ctx.global_slot);
            self.heard.push((ctx.global_slot, s));
        }
    }
    fn is_done(&self) -> bool {
        self.acted >= self.rounds
    }
    fn is_active(&self) -> bool {
        self.acted < self.rounds
    }
    fn empty_end_slot_is_noop(&self) -> bool {
        // `end_slot` only appends receptions, so an empty inbox really is
        // a no-op in every state — this opts the differential test into
        // the fused engine's idle-skip path, which the phased baseline
        // never takes.
        true
    }
}

/// Counts `end_slot` calls and flips its idle report mid-run, so the
/// fused engine's skip decision is directly observable: with nothing
/// ever transmitted, the callback must run exactly while the protocol
/// reports it as meaningful, and on the phased path every slot.
#[derive(Debug)]
struct IdleAware {
    rounds: u64,
    acted: u64,
    end_calls: u64,
}

impl Protocol for IdleAware {
    type Message = u64;
    fn begin_slot<R: SlotRng + ?Sized>(&mut self, _ctx: &NodeCtx, _rng: &mut R) -> Action<u64> {
        self.acted += 1;
        Action::Listen
    }
    fn end_slot(&mut self, _ctx: &NodeCtx, _received: &[(NodeId, u64)]) {
        self.end_calls += 1;
    }
    fn is_done(&self) -> bool {
        self.acted >= self.rounds
    }
    fn empty_end_slot_is_noop(&self) -> bool {
        self.acted > 4
    }
}

#[test]
fn idle_skip_elides_exactly_the_reported_noops() {
    let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
    let cfg = SinrConfig::default_unit();
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let mk = |_: NodeId| IdleAware {
        rounds: 20,
        acted: 0,
        end_calls: 0,
    };

    // Fused path: `end_slot` runs only while the idle report is false —
    // the action pass refreshes the cached bit after `begin_slot`, so the
    // flip after the 5th action (acted > 4) takes effect the same slot.
    let mut fused = Simulator::new(
        graph.clone(),
        IdealModel::new(),
        WakeupSchedule::Synchronous,
        9,
        mk,
    );
    let fused_out = fused.run(100);
    assert!(fused_out.all_done);
    assert_eq!(fused_out.slots, 20);
    for v in 0..graph.len() {
        assert_eq!(fused.node(v).end_calls, 4, "node {v}");
    }

    // Phased path (forced by an enabled recorder): every slot calls
    // `end_slot`, idle report or not — same outcome, full call count.
    let mut phased = Simulator::new(
        graph.clone(),
        IdealModel::new(),
        WakeupSchedule::Synchronous,
        9,
        mk,
    );
    let mut rec = sinr_obs::FullRecorder::new();
    let phased_out = phased.run_recorded(100, &mut rec, |_, _, _| {});
    assert_eq!(fused_out, phased_out);
    for v in 0..graph.len() {
        assert_eq!(phased.node(v).end_calls, 20, "node {v}");
    }
}
