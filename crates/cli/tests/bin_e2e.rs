//! End-to-end tests driving the actual `sinrcolor` binary.

use std::process::Command;

fn sinrcolor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sinrcolor"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sinrcolor-e2e-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = sinrcolor(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = sinrcolor(&["transmogrify"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_color_pipeline() {
    let gen = sinrcolor(&["generate", "--kind", "uniform", "--n", "25", "--seed", "1"]);
    assert!(gen.status.success());
    let pts_file = tmp("pts.txt", &String::from_utf8_lossy(&gen.stdout));

    let color = sinrcolor(&[
        "color",
        "--input",
        pts_file.to_str().unwrap(),
        "--seed",
        "2",
    ]);
    assert!(
        color.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&color.stderr)
    );
    let stdout = String::from_utf8_lossy(&color.stdout);
    assert_eq!(stdout.lines().count(), 25);
    assert!(String::from_utf8_lossy(&color.stderr).contains("0 violations"));

    let _ = std::fs::remove_file(pts_file);
}

#[test]
fn malformed_input_reports_line_number() {
    let bad = tmp("bad.txt", "1 2\nnot numbers\n");
    let out = sinrcolor(&["info", "--input", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = std::fs::remove_file(bad);
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = sinrcolor(&["info", "--input", "/nonexistent/nowhere.txt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn missing_subcommand_exits_2_with_usage() {
    let out = sinrcolor(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing subcommand"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_required_option_names_the_flag() {
    let out = sinrcolor(&["color"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required option --input"));
}

#[test]
fn unparsable_option_value_names_flag_and_value() {
    let gen = sinrcolor(&["generate", "--n", "not-a-number"]);
    assert!(!gen.status.success());
    let stderr = String::from_utf8_lossy(&gen.stderr);
    assert!(stderr.contains("invalid value for --n"));
    assert!(stderr.contains("not-a-number"));
}

#[test]
fn invalid_physical_parameters_are_a_clean_error() {
    // alpha must exceed 2 for the interference sums to converge; the CLI
    // must surface the validation error, not panic.
    let pts = tmp("phys.txt", "0 0\n0.5 0\n");
    let out = sinrcolor(&["info", "--input", pts.to_str().unwrap(), "--alpha", "1.5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid physical parameters"));
    assert!(stderr.contains("path-loss exponent must exceed 2"));
    let _ = std::fs::remove_file(pts);
}

#[test]
fn trace_pipes_valid_chrome_trace_json_to_stdout() {
    let gen = sinrcolor(&["generate", "--kind", "uniform", "--n", "20", "--seed", "4"]);
    assert!(gen.status.success());
    let pts_file = tmp("trace-pts.txt", &String::from_utf8_lossy(&gen.stdout));

    let out = sinrcolor(&[
        "trace",
        "--input",
        pts_file.to_str().unwrap(),
        "--seed",
        "1",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"trace_events\""));
    assert!(doc.contains("\"traceEvents\":["));
    assert!(doc.trim_end().ends_with('}'));

    let _ = std::fs::remove_file(pts_file);
}

#[test]
fn diff_gates_on_findings_and_rejects_bad_policy() {
    let base = tmp(
        "diff-base.json",
        "{\"kind\":\"metrics\",\"v\":{\"value\":10}}",
    );
    let drift = tmp(
        "diff-drift.json",
        "{\"kind\":\"metrics\",\"v\":{\"value\":12}}",
    );

    // Identical documents: exit zero.
    let ok = sinrcolor(&[
        "diff",
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        base.to_str().unwrap(),
    ]);
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("\"count\":0"));

    // A drifted value without tolerance: exit nonzero, finding on stderr.
    let bad = sinrcolor(&[
        "diff",
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        drift.to_str().unwrap(),
    ]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("v/value"));

    // A malformed policy is a friendly error, not a panic.
    let policy = tmp("diff-policy-bad.json", "{\"rules\":[{\"path\":\"v\"}]}");
    let rejected = sinrcolor(&[
        "diff",
        "--baseline",
        base.to_str().unwrap(),
        "--current",
        base.to_str().unwrap(),
        "--policy",
        policy.to_str().unwrap(),
    ]);
    assert_eq!(rejected.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&rejected.stderr).contains("bad diff policy"));

    for f in [base, drift, policy] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn positional_argument_after_command_is_rejected() {
    let out = sinrcolor(&["color", "stray"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected positional argument"));
}
