#![warn(missing_docs)]

//! Library backing the `sinrcolor` command-line tool.
//!
//! Everything is implemented against `Write` sinks and parsed argument
//! structs so the whole tool is unit-testable without a process spawn:
//!
//! * [`args`] — hand-rolled flag parsing (`--key value` pairs).
//! * [`io`] — the plain-text position/color file formats.
//! * [`commands`] — one function per subcommand.
//! * [`obs`] — the `--obs` sink spec and the machine-readable run report.
//! * [`profile`] — the `profile_report` renderer (allocation profiling).
//!
//! # File formats
//!
//! *Positions*: one `x y` pair per line; blank lines and `#` comments are
//! ignored. *Colors / slots*: one `node value` pair per line, same rules.

pub mod args;
pub mod commands;
pub mod io;
pub mod obs;
pub mod profile;

/// The unit-test binary runs under the counting allocator so the
/// `profile` subcommand's end-to-end tests observe real counters — the
/// same installation `src/main.rs` performs for the shipped binary.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: sinr_obs::alloc::CountingAlloc = sinr_obs::alloc::CountingAlloc;

/// Exit status of a subcommand (0 = success).
pub type CliResult = Result<(), CliError>;

/// An error presented to the CLI user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Convenience constructor used across the crate.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}
