//! The `profile` subcommand's machine-readable report.
//!
//! A `profile_report` (`docs/OBS_SCHEMA.md`) attributes heap traffic to
//! the run's phases (`prof.alloc.*` vocabulary), classifies slots into
//! warmup and steady state, lists the heaviest-allocating slots, and
//! records `size_of` for the hot per-node types. It is the one artifact
//! that is **allowed** to vary across builds and allocators — which is
//! exactly why none of its numbers ever feed the deterministic
//! run_report/trace/series outputs.

use sinr_coloring::mw::{MwAllocProfile, MwMessage, MwNode, MwOutcome, MwPhase};
use sinr_model::ReceptionTable;
use sinr_obs::alloc::AllocStats;
use sinr_obs::json::push_f64;
use sinr_obs::OBS_SCHEMA_VERSION;
use sinr_radiosim::StepView;

/// `size_of` readings for the types the hot loop moves around, in bytes.
/// Grows here → more memory traffic per slot everywhere; the committed
/// budget in `tests/struct_sizes.rs` and CI's struct-size ratchet fail
/// on unreviewed growth of `MwNode`.
pub fn struct_sizes() -> [(&'static str, usize); 5] {
    use std::mem::size_of;
    [
        ("MwNode", size_of::<MwNode>()),
        ("MwMessage", size_of::<MwMessage>()),
        ("MwPhase", size_of::<MwPhase>()),
        ("ReceptionTable", size_of::<ReceptionTable>()),
        ("StepView", size_of::<StepView<'static>>()),
    ]
}

fn push_phase(s: &mut String, name: &str, st: &AllocStats) {
    s.push_str(&format!(
        "\"{name}\":{{\"allocs\":{},\"frees\":{},\"bytes_allocated\":{},\"bytes_freed\":{}}}",
        st.allocs, st.frees, st.bytes_allocated, st.bytes_freed,
    ));
}

/// Renders the `profile_report` JSON document.
///
/// `counting` says whether the counting allocator is installed in this
/// process (see [`sinr_obs::alloc::is_counting`]); when false every
/// counter is zero by construction and the report says so instead of
/// claiming an allocation-free run.
pub fn profile_report(
    model: &str,
    seed: u64,
    threads: usize,
    top: usize,
    counting: bool,
    out: &MwOutcome,
    prof: &MwAllocProfile,
) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str(&format!(
        "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"profile_report\","
    ));

    s.push_str(&format!(
        "\"run\":{{\"nodes\":{},\"model\":\"{model}\",\"seed\":{seed},\"threads\":{threads},\
         \"all_done\":{},\"slots\":{}}},",
        out.node_reports.len(),
        out.all_done,
        out.slots,
    ));

    s.push_str(&format!(
        "\"allocator\":{{\"counting\":{counting},\"heap_peak\":{}}},",
        prof.heap_peak,
    ));

    s.push_str("\"phases\":{");
    push_phase(&mut s, "mw.setup", &prof.setup);
    s.push(',');
    push_phase(&mut s, "engine.actions", &prof.engine.actions);
    s.push(',');
    push_phase(&mut s, "engine.resolve", &prof.engine.resolve);
    s.push(',');
    push_phase(&mut s, "engine.delivery", &prof.engine.delivery);
    s.push_str("},");

    let e = &prof.engine;
    let (_, steady_len) = e.steady_window();
    s.push_str(&format!(
        "\"slots\":{{\"sampled\":{},\"dropped\":{},\"warmup\":{},\
         \"steady\":{{\"window\":{steady_len},\"allocs\":{},\"allocs_per_slot\":",
        e.per_slot.len(),
        e.dropped_slots,
        e.warmup_slots(),
        e.steady_allocs(),
    ));
    match e.steady_allocs_per_slot() {
        Some(x) => push_f64(&mut s, x),
        None => s.push_str("null"),
    }
    s.push_str("},\"top\":[");
    for (i, (slot, allocs)) in e.top_allocating_slots(top).iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"slot\":{slot},\"allocs\":{allocs}}}"));
    }
    s.push_str("]},");

    s.push_str("\"struct_sizes\":{");
    for (i, (name, size)) in struct_sizes().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{name}\":{size}"));
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_sizes_cover_the_hot_types_and_are_nonzero() {
        let sizes = struct_sizes();
        assert_eq!(sizes[0].0, "MwNode");
        for (name, size) in sizes {
            assert!(size > 0, "{name} reported zero size");
        }
    }

    #[test]
    fn mw_message_stays_copy_sized() {
        // Delivery clones one MwMessage per granted reception; it must
        // stay a small Copy value, not grow a heap payload.
        assert!(std::mem::size_of::<MwMessage>() <= 64);
    }
}
