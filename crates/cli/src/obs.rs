//! The `--obs` output specification and the machine-readable run report.
//!
//! The spec grammar is a comma-separated list of sinks:
//!
//! ```text
//! --obs jsonl:trace.jsonl,metrics:metrics.json,stderr
//! ```
//!
//! * `jsonl:PATH` — write the recorded event stream as JSON Lines.
//! * `metrics:PATH` — write the metrics registry dump.
//! * `stderr` — additionally mirror events to stderr as they happen.
//!
//! Both file sinks follow the schemas in `docs/OBS_SCHEMA.md`.

use crate::{err, CliError};
use sinr_coloring::mw::MwOutcome;
use sinr_obs::json::push_f64;
use sinr_obs::{keys, FullRecorder, OBS_SCHEMA_VERSION};

/// Parsed `--obs` specification: which sinks to feed during a recorded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSpec {
    /// Write the event stream to this path as JSON Lines.
    pub jsonl: Option<String>,
    /// Write the metrics registry dump to this path.
    pub metrics: Option<String>,
    /// Mirror events to stderr as they are recorded.
    pub stderr: bool,
}

impl ObsSpec {
    /// Parses a comma-separated sink list (`jsonl:PATH`, `metrics:PATH`,
    /// `stderr`).
    ///
    /// # Errors
    ///
    /// Fails on unknown sink kinds, missing paths, or duplicate sinks.
    pub fn parse(spec: &str) -> Result<ObsSpec, CliError> {
        let mut out = ObsSpec::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                return Err(err("empty sink in --obs spec"));
            }
            match item.split_once(':') {
                Some(("jsonl", path)) if !path.is_empty() => {
                    if out.jsonl.replace(path.to_string()).is_some() {
                        return Err(err("duplicate jsonl sink in --obs spec"));
                    }
                }
                Some(("metrics", path)) if !path.is_empty() => {
                    if out.metrics.replace(path.to_string()).is_some() {
                        return Err(err("duplicate metrics sink in --obs spec"));
                    }
                }
                None if item == "stderr" => out.stderr = true,
                _ => {
                    return Err(err(format!(
                        "bad --obs sink {item:?}: expected jsonl:PATH, metrics:PATH, or stderr"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Writes the configured file sinks from a finished recorder.
    ///
    /// # Errors
    ///
    /// Fails when a file cannot be written.
    pub fn write_outputs(&self, rec: &FullRecorder) -> Result<(), CliError> {
        if let Some(path) = &self.jsonl {
            std::fs::write(path, rec.jsonl_string())
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, rec.metrics_json())
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        Ok(())
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => out.push_str(&x.to_string()),
        None => out.push_str("null"),
    }
}

/// Renders the `run_report` JSON document (`docs/OBS_SCHEMA.md`): run
/// summary, full metrics registry, probe verdicts, and event-stream
/// accounting, in one self-describing object.
pub fn run_report(model: &str, seed: u64, out: &MwOutcome, rec: &FullRecorder) -> String {
    let reg = rec.registry();
    let mut s = String::with_capacity(1024);
    s.push_str(&format!(
        "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"run_report\","
    ));

    s.push_str(&format!(
        "\"run\":{{\"nodes\":{},\"model\":\"{model}\",\"seed\":{seed},\"all_done\":{},\
         \"slots\":{},\"colors_used\":{},\"palette\":{},\"leaders\":{},",
        out.node_reports.len(),
        out.all_done,
        out.slots,
        out.colors_used,
        out.palette,
        out.leaders,
    ));
    s.push_str("\"max_latency\":");
    push_opt_u64(&mut s, out.max_latency);
    s.push_str(",\"mean_latency\":");
    match out.mean_latency {
        Some(m) => push_f64(&mut s, m),
        None => s.push_str("null"),
    }
    s.push_str("},");

    s.push_str("\"metrics\":");
    s.push_str(&reg.to_json());
    s.push(',');

    let probe = |key: &str| reg.counter(key).unwrap_or(0);
    s.push_str(&format!(
        "\"probes\":{{\"thm1_violations\":{},\"lemma4_violations\":{},\
         \"lemma6_violations\":{},\"lemma7_violations\":{}}},",
        probe(keys::PROBE_THM1_VIOLATIONS),
        probe(keys::PROBE_LEMMA4_VIOLATIONS),
        probe(keys::PROBE_LEMMA6_VIOLATIONS),
        probe(keys::PROBE_LEMMA7_VIOLATIONS),
    ));

    s.push_str(&format!(
        "\"events\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}}}}",
        rec.events_recorded(),
        rec.events_dropped(),
        rec.ring_capacity(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = ObsSpec::parse("jsonl:/tmp/t.jsonl,metrics:/tmp/m.json,stderr").unwrap();
        assert_eq!(s.jsonl.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(s.metrics.as_deref(), Some("/tmp/m.json"));
        assert!(s.stderr);
    }

    #[test]
    fn parses_single_sink() {
        let s = ObsSpec::parse("metrics:out.json").unwrap();
        assert_eq!(s.metrics.as_deref(), Some("out.json"));
        assert!(s.jsonl.is_none());
        assert!(!s.stderr);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ObsSpec::parse("").is_err());
        assert!(ObsSpec::parse("jsonl:").is_err());
        assert!(ObsSpec::parse("csv:file").is_err());
        assert!(ObsSpec::parse("stderr:loud").is_err());
        assert!(ObsSpec::parse("jsonl:a,jsonl:b").is_err());
        assert!(ObsSpec::parse("metrics:a,,stderr").is_err());
    }

    #[test]
    fn paths_may_contain_colons_after_the_kind() {
        // Windows-style or URL-ish paths keep everything after the first ':'.
        let s = ObsSpec::parse("jsonl:C:/tmp/t.jsonl").unwrap();
        assert_eq!(s.jsonl.as_deref(), Some("C:/tmp/t.jsonl"));
    }
}
