//! The `--obs` output specification and the machine-readable run report.
//!
//! The spec grammar is a comma-separated list of sinks:
//!
//! ```text
//! --obs jsonl:events.jsonl,metrics:metrics.json,trace:trace.json,timeseries:ts.json,stderr
//! ```
//!
//! * `jsonl:PATH` — write the recorded event stream as JSON Lines.
//! * `metrics:PATH` — write the metrics registry dump.
//! * `trace:PATH` — write the span timeline as Chrome trace-event JSON.
//! * `timeseries:PATH` — write the per-slot time series (enables the
//!   sampler; `--series-stride` sets the sampling stride).
//! * `stderr` — additionally mirror events to stderr as they happen.
//!
//! All file sinks follow the schemas in `docs/OBS_SCHEMA.md`.

use crate::{err, CliError};
use sinr_coloring::mw::MwOutcome;
use sinr_obs::json::push_f64;
use sinr_obs::{keys, FullRecorder, OBS_SCHEMA_VERSION};

/// Parsed `--obs` specification: which sinks to feed during a recorded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSpec {
    /// Write the event stream to this path as JSON Lines.
    pub jsonl: Option<String>,
    /// Write the metrics registry dump to this path.
    pub metrics: Option<String>,
    /// Write the span timeline (Chrome trace-event JSON) to this path.
    pub trace: Option<String>,
    /// Write the per-slot time series to this path.
    pub timeseries: Option<String>,
    /// Mirror events to stderr as they are recorded.
    pub stderr: bool,
}

impl ObsSpec {
    /// Parses a comma-separated sink list (`jsonl:PATH`, `metrics:PATH`,
    /// `stderr`).
    ///
    /// # Errors
    ///
    /// Fails on unknown sink kinds, missing paths, or duplicate sinks.
    pub fn parse(spec: &str) -> Result<ObsSpec, CliError> {
        let mut out = ObsSpec::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                return Err(err("empty sink in --obs spec"));
            }
            match item.split_once(':') {
                Some(("jsonl", path)) if !path.is_empty() => {
                    if out.jsonl.replace(path.to_string()).is_some() {
                        return Err(err("duplicate jsonl sink in --obs spec"));
                    }
                }
                Some(("metrics", path)) if !path.is_empty() => {
                    if out.metrics.replace(path.to_string()).is_some() {
                        return Err(err("duplicate metrics sink in --obs spec"));
                    }
                }
                Some(("trace", path)) if !path.is_empty() => {
                    if out.trace.replace(path.to_string()).is_some() {
                        return Err(err("duplicate trace sink in --obs spec"));
                    }
                }
                Some(("timeseries", path)) if !path.is_empty() => {
                    if out.timeseries.replace(path.to_string()).is_some() {
                        return Err(err("duplicate timeseries sink in --obs spec"));
                    }
                }
                None if item == "stderr" => out.stderr = true,
                _ => {
                    return Err(err(format!(
                        "bad --obs sink {item:?}: expected jsonl:PATH, metrics:PATH, \
                         trace:PATH, timeseries:PATH, or stderr"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Writes the configured file sinks from a finished recorder.
    ///
    /// # Errors
    ///
    /// Fails when a file cannot be written.
    pub fn write_outputs(&self, rec: &FullRecorder) -> Result<(), CliError> {
        if let Some(path) = &self.jsonl {
            std::fs::write(path, rec.jsonl_string())
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &self.metrics {
            std::fs::write(path, rec.metrics_json())
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &self.trace {
            std::fs::write(path, rec.trace_json())
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &self.timeseries {
            let doc = rec
                .timeseries_json()
                .ok_or_else(|| err("timeseries sink requested but sampling was not enabled"))?;
            std::fs::write(path, doc).map_err(|e| err(format!("cannot write {path}: {e}")))?;
        }
        Ok(())
    }
}

/// Writes a truncation warning to the log stream when the recorder's
/// bounded buffers evicted anything — so a clipped event stream or span
/// timeline is never mistaken for a complete one.
pub fn warn_truncation(rec: &FullRecorder, log: &mut dyn std::io::Write) -> std::io::Result<()> {
    if rec.events_dropped() > 0 {
        writeln!(
            log,
            "warning: event ring overflowed — {} of {} events dropped (raise --ring)",
            rec.events_dropped(),
            rec.events_recorded(),
        )?;
    }
    if rec.spans_dropped() > 0 {
        writeln!(
            log,
            "warning: span ring overflowed — {} of {} spans dropped (raise --ring)",
            rec.spans_dropped(),
            rec.spans_recorded(),
        )?;
    }
    Ok(())
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => out.push_str(&x.to_string()),
        None => out.push_str("null"),
    }
}

/// Renders the `run_report` JSON document (`docs/OBS_SCHEMA.md`): run
/// summary, full metrics registry, probe verdicts, and event-stream
/// accounting, in one self-describing object.
pub fn run_report(model: &str, seed: u64, out: &MwOutcome, rec: &FullRecorder) -> String {
    // Exported (not live) registry: carries the obs.* retention counters.
    let reg = rec.export_registry();
    let mut s = String::with_capacity(1024);
    s.push_str(&format!(
        "{{\"schema_version\":{OBS_SCHEMA_VERSION},\"kind\":\"run_report\","
    ));

    s.push_str(&format!(
        "\"run\":{{\"nodes\":{},\"model\":\"{model}\",\"seed\":{seed},\"all_done\":{},\
         \"slots\":{},\"colors_used\":{},\"palette\":{},\"leaders\":{},",
        out.node_reports.len(),
        out.all_done,
        out.slots,
        out.colors_used,
        out.palette,
        out.leaders,
    ));
    s.push_str("\"max_latency\":");
    push_opt_u64(&mut s, out.max_latency);
    s.push_str(",\"mean_latency\":");
    match out.mean_latency {
        Some(m) => push_f64(&mut s, m),
        None => s.push_str("null"),
    }
    s.push_str("},");

    s.push_str("\"metrics\":");
    s.push_str(&reg.to_json());
    s.push(',');

    let probe = |key: &str| reg.counter(key).unwrap_or(0);
    s.push_str(&format!(
        "\"probes\":{{\"thm1_violations\":{},\"lemma4_violations\":{},\
         \"lemma6_violations\":{},\"lemma7_violations\":{}}},",
        probe(keys::PROBE_THM1_VIOLATIONS),
        probe(keys::PROBE_LEMMA4_VIOLATIONS),
        probe(keys::PROBE_LEMMA6_VIOLATIONS),
        probe(keys::PROBE_LEMMA7_VIOLATIONS),
    ));

    s.push_str(&format!(
        "\"events\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}},",
        rec.events_recorded(),
        rec.events_dropped(),
        rec.ring_capacity(),
    ));

    s.push_str(&format!(
        "\"spans\":{{\"recorded\":{},\"dropped\":{}}}}}",
        rec.spans_recorded(),
        rec.spans_dropped(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = ObsSpec::parse("jsonl:/tmp/t.jsonl,metrics:/tmp/m.json,stderr").unwrap();
        assert_eq!(s.jsonl.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(s.metrics.as_deref(), Some("/tmp/m.json"));
        assert!(s.stderr);
    }

    #[test]
    fn parses_single_sink() {
        let s = ObsSpec::parse("metrics:out.json").unwrap();
        assert_eq!(s.metrics.as_deref(), Some("out.json"));
        assert!(s.jsonl.is_none());
        assert!(!s.stderr);
    }

    #[test]
    fn parses_trace_and_timeseries_sinks() {
        let s = ObsSpec::parse("trace:t.json,timeseries:ts.json").unwrap();
        assert_eq!(s.trace.as_deref(), Some("t.json"));
        assert_eq!(s.timeseries.as_deref(), Some("ts.json"));
        assert!(ObsSpec::parse("trace:").is_err());
        assert!(ObsSpec::parse("timeseries:").is_err());
        assert!(ObsSpec::parse("trace:a,trace:b").is_err());
        assert!(ObsSpec::parse("timeseries:a,timeseries:b").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ObsSpec::parse("").is_err());
        assert!(ObsSpec::parse("jsonl:").is_err());
        assert!(ObsSpec::parse("csv:file").is_err());
        assert!(ObsSpec::parse("stderr:loud").is_err());
        assert!(ObsSpec::parse("jsonl:a,jsonl:b").is_err());
        assert!(ObsSpec::parse("metrics:a,,stderr").is_err());
    }

    #[test]
    fn paths_may_contain_colons_after_the_kind() {
        // Windows-style or URL-ish paths keep everything after the first ':'.
        let s = ObsSpec::parse("jsonl:C:/tmp/t.jsonl").unwrap();
        assert_eq!(s.jsonl.as_deref(), Some("C:/tmp/t.jsonl"));
    }
}
