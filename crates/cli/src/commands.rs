//! The `sinrcolor` subcommands, implemented against `Write` sinks.

use crate::args::Args;
use crate::io::{format_assignment, format_positions, parse_assignment, parse_positions};
use crate::obs::{run_report, warn_truncation, ObsSpec};
use crate::{err, CliResult};
use sinr_coloring::distance_d::color_at_distance;
use sinr_coloring::mis::run_clustering;
use sinr_coloring::mw::{
    run_mw, run_mw_profiled, run_mw_recorded, MwAllocProfile, MwConfig, MwOutcome, MwProbeConfig,
};
use sinr_coloring::palette::reduce_palette;
use sinr_coloring::params::MwParams;
use sinr_coloring::render::{render_svg, RenderOptions};
use sinr_coloring::verify::distance_violations;
use sinr_geometry::greedy::Coloring;
use sinr_geometry::{placement, Point, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::{BfsLayers, Convergecast, Flooding};
use sinr_mac::srs::{simulate_general_bundled, simulate_uniform};
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_model::{FastSinrModel, GraphModel, IdealModel, InterferenceModel, SinrConfig, SinrModel};
use sinr_obs::{
    diff_documents, render_diff_report, DiffPolicy, FullRecorder, SeriesConfig, StderrSink,
};
use sinr_radiosim::WakeupSchedule;
use std::io::Write;

/// Usage text printed by `help` and on bad invocations.
pub const USAGE: &str = "\
sinrcolor — distributed SINR node coloring toolkit

USAGE: sinrcolor <COMMAND> [OPTIONS]

COMMANDS:
  generate  --kind uniform|grid|cluster|line --n N [--degree D] [--seed S]
            emit a placement (x y per line) on stdout
  info      --input FILE [--alpha A --beta B --rho R]
            print graph statistics for a placement
  color     --input FILE [--seed S] [--model sinr|sinr-fast|sinr-auto|graph|ideal]
            [--distance D] [--threads N] [--obs SPEC] [--seeds A..B]
            run the MW coloring; emit 'node color' per line on stdout.
            --seeds A..B batches one run per seed in the half-open range
            across the worker pool (graph built once; output is '# seed N'
            blocks in seed order, identical at any --threads)
  report    --input FILE [--seed S] [--model sinr|sinr-fast|sinr-auto|graph|ideal]
            [--threads N] [--thm1-stride K] [--ring CAP] [--obs SPEC]
            run a fully observed MW coloring; emit the machine-readable
            run report (docs/OBS_SCHEMA.md) as JSON on stdout
  trace     --input FILE [--seed S] [--model ...] [--threads N] [--ring CAP]
            run a fully observed MW coloring; emit the span timeline as
            Chrome trace-event JSON on stdout (open in Perfetto)
  profile   --input FILE [--seed S] [--model ...] [--threads N] [--top K]
            run the MW coloring under the allocation profiler; emit the
            profile_report JSON (per-phase heap traffic, warmup/steady
            classification, top-K allocating slots, struct sizes)
  diff      --baseline FILE --current FILE [--policy FILE]
            structurally compare two JSON artifacts (run reports, metrics
            dumps, bench reports) under per-key tolerances; emit a
            diff_report on stdout and exit nonzero on any finding
  reduce    --input FILE --colors FILE
            palette-reduce an existing proper coloring to Δ+1 colors
  schedule  --input FILE [--seed S]
            build a Theorem-3 TDMA schedule; emit 'node slot' per line
  render    --input FILE [--colors FILE] [--labels]
            emit an SVG drawing on stdout
  cluster   --input FILE [--seed S]
            elect an MIS of cluster leaders; emit 'node leader' per line
            (a leader's line shows its own id)
  simulate  --input FILE --algorithm flooding|bfs|convergecast [--source V]
            run a message-passing algorithm under SINR via SRS
            (Corollary 1); emit 'node result' per line
  help      show this text

Physical options (all commands): --alpha (4), --beta (1.5), --rho (2);
R_T is normalized to 1.

Models: sinr is the exact reference resolver; sinr-fast adds the
grid-tiled fast path (bit-identical tables); sinr-auto picks between
them by instance size. --threads N (default: SINR_THREADS, else 1)
runs slot resolution on N worker threads — outputs are identical for
every N.

Observability: SPEC is a comma-separated sink list — jsonl:PATH (event
stream as JSON Lines), metrics:PATH (metrics registry dump), trace:PATH
(Chrome trace-event span timeline), timeseries:PATH (per-slot samples;
--series-stride K sets the stride, default 1), stderr (mirror events
live). Schemas: docs/OBS_SCHEMA.md.
";

fn physical_config(args: &Args) -> Result<SinrConfig, crate::CliError> {
    let alpha = args.get_parsed("alpha", 4.0)?;
    let beta = args.get_parsed("beta", 1.5)?;
    let rho = args.get_parsed("rho", 2.0)?;
    SinrConfig::new(1.0, alpha, beta, 1.0 / (2.0 * beta), rho)
        .map_err(|e| err(format!("invalid physical parameters: {e}")))
}

fn read_positions(args: &Args) -> Result<Vec<Point>, crate::CliError> {
    let path = args.require("input")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let pts = parse_positions(&text)?;
    if pts.len() < 2 {
        return Err(err("need at least two nodes"));
    }
    Ok(pts)
}

/// `generate`: emit a placement.
pub fn generate(args: &Args, out: &mut dyn Write) -> CliResult {
    let n: usize = args.get_parsed("n", 100)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let kind = args.get("kind").unwrap_or("uniform");
    let pts = match kind {
        "uniform" => {
            let degree: f64 = args.get_parsed("degree", 12.0)?;
            placement::uniform_with_expected_degree(n, 1.0, degree, seed)
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            let step: f64 = args.get_parsed("step", 0.8)?;
            let jitter: f64 = args.get_parsed("jitter", 0.1)?;
            placement::jittered_grid(side, side, step, jitter, seed)
        }
        "cluster" => {
            let clusters: usize = args.get_parsed("clusters", 8)?;
            let per = n.div_ceil(clusters.max(1));
            placement::clustered(clusters, per, 8.0, 8.0, 0.7, seed)
        }
        "line" => placement::line(n, 0.8, 0.1, seed),
        other => return Err(err(format!("unknown placement kind {other}"))),
    };
    out.write_all(format_positions(&pts).as_bytes())?;
    Ok(())
}

/// `info`: graph statistics.
pub fn info(args: &Args, out: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let g = UnitDiskGraph::new(pts, cfg.r_t());
    writeln!(out, "nodes       : {}", g.len())?;
    writeln!(out, "edges       : {}", g.edge_count())?;
    writeln!(out, "max degree  : {}", g.max_degree())?;
    writeln!(out, "connected   : {}", g.is_connected())?;
    writeln!(out, "diameter    : {:?}", g.diameter())?;
    writeln!(out, "R_T         : {}", cfg.r_t())?;
    writeln!(out, "R_I         : {:.3}", cfg.r_i())?;
    writeln!(out, "guard d     : {:.3}", cfg.guard_distance())?;
    Ok(())
}

/// How [`run_model`] drives a coloring: plain (no instrumentation) or
/// recorded through a [`FullRecorder`] / [`StderrSink`].
enum RunMode {
    Plain,
    Recorded {
        stderr: bool,
        ring: usize,
        probes: MwProbeConfig,
        series: Option<SeriesConfig>,
    },
}

/// Runs the MW coloring under a model named on the command line,
/// optionally with full observability. Returns the recorder when `mode`
/// asked for one.
fn run_model(
    graph: &UnitDiskGraph,
    model: &str,
    cfg: SinrConfig,
    mw_cfg: &MwConfig,
    mode: RunMode,
) -> Result<(MwOutcome, Option<FullRecorder>), crate::CliError> {
    fn go<M: InterferenceModel>(
        graph: &UnitDiskGraph,
        model: M,
        mw_cfg: &MwConfig,
        mode: RunMode,
    ) -> (MwOutcome, Option<FullRecorder>) {
        match mode {
            RunMode::Plain => (
                run_mw(graph, model, mw_cfg, WakeupSchedule::Synchronous),
                None,
            ),
            RunMode::Recorded {
                stderr: true,
                ring,
                probes,
                series,
            } => {
                let mut sink = StderrSink::with_ring_capacity(ring);
                if let Some(cfg) = series {
                    sink.enable_series(cfg);
                }
                let out = run_mw_recorded(
                    graph,
                    model,
                    mw_cfg,
                    WakeupSchedule::Synchronous,
                    probes,
                    &mut sink,
                );
                (out, Some(sink.into_recorder()))
            }
            RunMode::Recorded {
                stderr: false,
                ring,
                probes,
                series,
            } => {
                let mut rec = FullRecorder::with_ring_capacity(ring);
                if let Some(cfg) = series {
                    rec.enable_series(cfg);
                }
                let out = run_mw_recorded(
                    graph,
                    model,
                    mw_cfg,
                    WakeupSchedule::Synchronous,
                    probes,
                    &mut rec,
                );
                (out, Some(rec))
            }
        }
    }
    match model {
        "sinr" => Ok(go(graph, SinrModel::new(cfg), mw_cfg, mode)),
        // Same tables as "sinr" (bit-identical), grid-tiled resolver.
        "sinr-fast" => Ok(go(graph, FastSinrModel::new(cfg), mw_cfg, mode)),
        // Grid-tiled resolver, but the grid is skipped on instances
        // whose expected slot density cannot pay for it.
        "sinr-auto" => Ok(go(graph, FastSinrModel::auto(cfg, graph), mw_cfg, mode)),
        "graph" => Ok(go(graph, GraphModel::new(), mw_cfg, mode)),
        "ideal" => Ok(go(graph, IdealModel::new(), mw_cfg, mode)),
        other => Err(err(format!("unknown model {other}"))),
    }
}

/// Worker-thread count for slot resolution: `--threads` when given,
/// otherwise the `SINR_THREADS` environment variable, otherwise 1.
fn thread_count(args: &Args) -> Result<usize, crate::CliError> {
    let threads: usize = args.get_parsed("threads", sinr_pool::threads_from_env())?;
    if threads == 0 {
        return Err(err("--threads must be at least 1"));
    }
    Ok(threads)
}

/// The `--obs`-derived run mode shared by `color` and `report`.
fn obs_mode(args: &Args, spec: Option<&ObsSpec>) -> Result<RunMode, crate::CliError> {
    let ring: usize = args.get_parsed("ring", sinr_obs::recorder::DEFAULT_RING_CAPACITY)?;
    let stride: u64 = args.get_parsed("thm1-stride", 1)?;
    if stride == 0 {
        return Err(err("--thm1-stride must be at least 1"));
    }
    // Time-series sampling turns on when a timeseries sink is requested
    // or the stride is given explicitly.
    let wants_series = spec.is_some_and(|s| s.timeseries.is_some());
    let series = if wants_series || args.get("series-stride").is_some() {
        let series_stride: u64 = args.get_parsed("series-stride", 1)?;
        if series_stride == 0 {
            return Err(err("--series-stride must be at least 1"));
        }
        Some(SeriesConfig::new(series_stride))
    } else {
        None
    };
    Ok(RunMode::Recorded {
        stderr: spec.is_some_and(|s| s.stderr),
        ring,
        probes: MwProbeConfig::default().with_thm1_stride(stride),
        series,
    })
}

/// Parses a `--seeds` range spec `A..B` (half-open, `A < B`).
fn parse_seed_range(spec: &str) -> Result<std::ops::Range<u64>, crate::CliError> {
    let bad = || err(format!("--seeds expects a range A..B, got {spec:?}"));
    let (a, b) = spec.split_once("..").ok_or_else(bad)?;
    let start: u64 = a.trim().parse().map_err(|_| bad())?;
    let end: u64 = b.trim().parse().map_err(|_| bad())?;
    if start >= end {
        return Err(err(format!(
            "--seeds range {spec} is empty (need start < end)"
        )));
    }
    Ok(start..end)
}

/// `color --seeds A..B`: run the MW coloring once per seed in the
/// half-open range, fanned out across `--threads` workers.
///
/// The placement, unit-disk graph, and derived parameters are built once
/// and shared by every run — the per-seed closure only pays for the
/// coloring itself. Each run executes single-threaded (parallelism is
/// across seeds, not within a slot) and results merge in ascending seed
/// order, so the concatenated output is byte-identical to a sequential
/// `for seed in A..B { color --seed seed }` loop at any thread count.
fn color_seeds(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let seeds = parse_seed_range(args.require("seeds")?)?;
    if args.get("seed").is_some() {
        return Err(err("--seeds and --seed are mutually exclusive"));
    }
    if args.get("obs").is_some() {
        return Err(err(
            "--obs is not supported with --seeds; observe one seed at a time",
        ));
    }
    let distance: f64 = args.get_parsed("distance", 1.0)?;
    if (distance - 1.0).abs() > 1e-12 {
        return Err(err("--distance > 1 is not supported with --seeds"));
    }
    // Validate the model name before the fan-out so a typo fails fast
    // instead of once per seed.
    let model = args.get("model").unwrap_or("sinr");
    if !matches!(
        model,
        "sinr" | "sinr-fast" | "sinr-auto" | "graph" | "ideal"
    ) {
        return Err(err(format!("unknown model {model}")));
    }

    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let pool = sinr_pool::Pool::new(thread_count(args)?);

    let results = pool.par_seeds(seeds, |seed| -> Result<_, String> {
        let mw_cfg = MwConfig::new(params).with_seed(seed);
        let (outcome, _) = run_model(&graph, model, cfg, &mw_cfg, RunMode::Plain)
            .map_err(|e| format!("seed {seed}: {e}"))?;
        let colors = outcome
            .coloring
            .ok_or_else(|| format!("seed {seed}: coloring hit the slot cap"))?
            .as_slice()
            .to_vec();
        let violations = distance_violations(&pts, &colors, cfg.r_t()).len();
        let block = format!("# seed {seed}\n{}", format_assignment(&colors));
        let line = format!(
            "seed {seed}: colored {} nodes in {} slots; {} distinct colors; {} violations",
            graph.len(),
            outcome.slots,
            colors
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            violations
        );
        Ok((block, line, violations))
    });

    let mut total_violations = 0usize;
    let mut first_err = None;
    for res in results {
        match res {
            Ok((block, line, violations)) => {
                out.write_all(block.as_bytes())?;
                writeln!(log, "{line}")?;
                total_violations += violations;
            }
            Err(msg) => {
                if first_err.is_none() {
                    first_err = Some(err(msg));
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    if total_violations > 0 {
        return Err(err(format!(
            "{total_violations} coloring violations across seeds"
        )));
    }
    Ok(())
}

/// `color`: run the MW coloring and emit the assignment.
pub fn color(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    if args.get("seeds").is_some() {
        return color_seeds(args, out, log);
    }
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let distance: f64 = args.get_parsed("distance", 1.0)?;
    let model = args.get("model").unwrap_or("sinr");
    let spec = match args.get("obs") {
        Some(s) => Some(ObsSpec::parse(s)?),
        None => None,
    };

    let (colors, slots, graph) = if (distance - 1.0).abs() > 1e-12 {
        if model != "sinr" {
            return Err(err(
                "--distance > 1 requires the sinr model (power scaling)",
            ));
        }
        if spec.is_some() {
            return Err(err(
                "--obs is not supported with --distance > 1; use the base coloring",
            ));
        }
        let result = color_at_distance(&pts, &cfg, distance, seed, WakeupSchedule::Synchronous);
        let colors = result
            .colors()
            .ok_or_else(|| err("coloring hit the slot cap"))?
            .to_vec();
        let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
        (colors, result.outcome.slots, graph)
    } else {
        let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
        let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
        let mw_cfg = MwConfig::new(params)
            .with_seed(seed)
            .with_threads(thread_count(args)?);
        let mode = match &spec {
            Some(s) => obs_mode(args, Some(s))?,
            None => RunMode::Plain,
        };
        let (outcome, rec) = run_model(&graph, model, cfg, &mw_cfg, mode)?;
        if let (Some(spec), Some(rec)) = (&spec, &rec) {
            spec.write_outputs(rec)?;
        }
        let colors = outcome
            .coloring
            .ok_or_else(|| err("coloring hit the slot cap"))?
            .as_slice()
            .to_vec();
        (colors, outcome.slots, graph)
    };

    let violations = distance_violations(&pts, &colors, distance * cfg.r_t());
    writeln!(
        log,
        "colored {} nodes in {} slots; {} distinct colors; {} violations at distance {:.2}",
        graph.len(),
        slots,
        colors
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        violations.len(),
        distance
    )?;
    out.write_all(format_assignment(&colors).as_bytes())?;
    if violations.is_empty() {
        Ok(())
    } else {
        Err(err(format!("{} coloring violations", violations.len())))
    }
}

/// `report`: run a fully observed coloring and emit the run report.
///
/// Stdout carries exactly one JSON document (schema `run_report`,
/// `docs/OBS_SCHEMA.md`); the human-readable summary goes to the log
/// stream, so the output pipes straight into JSON tooling.
pub fn report(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let model = args.get("model").unwrap_or("sinr-fast");
    let spec = match args.get("obs") {
        Some(s) => Some(ObsSpec::parse(s)?),
        None => None,
    };

    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mw_cfg = MwConfig::new(params)
        .with_seed(seed)
        .with_threads(thread_count(args)?);
    let mode = obs_mode(args, spec.as_ref())?;
    let (outcome, rec) = run_model(&graph, model, cfg, &mw_cfg, mode)?;
    let rec = rec.expect("report always records");
    if let Some(spec) = &spec {
        spec.write_outputs(&rec)?;
    }

    let reg = rec.registry();
    let violations: u64 = [
        sinr_obs::keys::PROBE_THM1_VIOLATIONS,
        sinr_obs::keys::PROBE_LEMMA4_VIOLATIONS,
        sinr_obs::keys::PROBE_LEMMA6_VIOLATIONS,
        sinr_obs::keys::PROBE_LEMMA7_VIOLATIONS,
    ]
    .iter()
    .map(|k| reg.counter(k).unwrap_or(0))
    .sum();
    writeln!(
        log,
        "observed {} nodes for {} slots; {} metrics; {} events ({} dropped); {} probe violations",
        graph.len(),
        outcome.slots,
        reg.len(),
        rec.events_recorded(),
        rec.events_dropped(),
        violations
    )?;
    warn_truncation(&rec, log)?;
    writeln!(out, "{}", run_report(model, seed, &outcome, &rec))?;
    if outcome.all_done {
        Ok(())
    } else {
        Err(err("coloring hit the slot cap"))
    }
}

/// `trace`: run a fully observed coloring and emit the span timeline as
/// Chrome trace-event JSON (load into Perfetto / `chrome://tracing`).
///
/// The timeline is slot-time (1 slot = 1 µs in the viewer) and therefore
/// byte-identical for every `--threads` value.
pub fn trace(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let model = args.get("model").unwrap_or("sinr-fast");

    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mw_cfg = MwConfig::new(params)
        .with_seed(seed)
        .with_threads(thread_count(args)?);
    let mode = obs_mode(args, None)?;
    let (outcome, rec) = run_model(&graph, model, cfg, &mw_cfg, mode)?;
    let rec = rec.expect("trace always records");

    writeln!(
        log,
        "traced {} nodes for {} slots; {} spans ({} dropped)",
        graph.len(),
        outcome.slots,
        rec.spans_recorded(),
        rec.spans_dropped(),
    )?;
    warn_truncation(&rec, log)?;
    writeln!(out, "{}", rec.trace_json())?;
    if outcome.all_done {
        Ok(())
    } else {
        Err(err("coloring hit the slot cap"))
    }
}

/// Runs the MW coloring under the allocation profiler for a model named
/// on the command line — the profiled sibling of [`run_model`].
fn run_profiled_model(
    graph: &UnitDiskGraph,
    model: &str,
    cfg: SinrConfig,
    mw_cfg: &MwConfig,
) -> Result<(MwOutcome, MwAllocProfile), crate::CliError> {
    let s = WakeupSchedule::Synchronous;
    match model {
        "sinr" => Ok(run_mw_profiled(graph, SinrModel::new(cfg), mw_cfg, s)),
        "sinr-fast" => Ok(run_mw_profiled(graph, FastSinrModel::new(cfg), mw_cfg, s)),
        "sinr-auto" => Ok(run_mw_profiled(
            graph,
            FastSinrModel::auto(cfg, graph),
            mw_cfg,
            s,
        )),
        "graph" => Ok(run_mw_profiled(graph, GraphModel::new(), mw_cfg, s)),
        "ideal" => Ok(run_mw_profiled(graph, IdealModel::new(), mw_cfg, s)),
        other => Err(err(format!("unknown model {other}"))),
    }
}

/// `profile`: run the MW coloring under the allocation profiler and emit
/// the `profile_report` JSON document.
///
/// The run itself is byte-identical to an unprofiled `color` run with
/// the same inputs — profiling only reads allocator counters. The report
/// is the one artifact allowed to vary across builds and allocators, so
/// it never mixes into run_report/trace/series outputs.
pub fn profile(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let model = args.get("model").unwrap_or("sinr-fast");
    let top: usize = args.get_parsed("top", 8)?;
    let threads = thread_count(args)?;

    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mw_cfg = MwConfig::new(params).with_seed(seed).with_threads(threads);
    let counting = sinr_obs::alloc::is_counting();
    let (outcome, prof) = run_profiled_model(&graph, model, cfg, &mw_cfg)?;

    if !counting {
        writeln!(
            log,
            "warning: counting allocator not installed — all alloc counters read zero"
        )?;
    }
    writeln!(
        log,
        "profiled {} nodes for {} slots; warmup {} slots; steady-state {:.3} allocs/slot; \
         heap peak {} bytes",
        graph.len(),
        outcome.slots,
        prof.engine.warmup_slots(),
        prof.engine.steady_allocs_per_slot().unwrap_or(0.0),
        prof.heap_peak,
    )?;
    writeln!(
        out,
        "{}",
        crate::profile::profile_report(model, seed, threads, top, counting, &outcome, &prof)
    )?;
    if outcome.all_done {
        Ok(())
    } else {
        Err(err("coloring hit the slot cap"))
    }
}

/// `diff`: structurally compare two JSON artifacts under a tolerance
/// policy; any finding is a regression and fails the command.
pub fn diff(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let baseline_path = args.require("baseline")?;
    let current_path = args.require("current")?;
    let load = |path: &str| -> Result<sinr_obs::json::Json, crate::CliError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        sinr_obs::json::parse_value(text.trim())
            .ok_or_else(|| err(format!("{path} is not valid JSON")))
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let policy = match args.get("policy") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            DiffPolicy::parse(&text).map_err(|e| err(format!("bad diff policy {path}: {e}")))?
        }
        None => DiffPolicy::empty(),
    };

    let findings = diff_documents(&baseline, &current, &policy);
    writeln!(
        out,
        "{}",
        render_diff_report(baseline_path, current_path, policy.rules.len(), &findings)
    )?;
    writeln!(
        log,
        "compared {current_path} against {baseline_path}: {} findings under {} rules",
        findings.len(),
        policy.rules.len(),
    )?;
    for f in &findings {
        writeln!(log, "  {}: {} ({})", f.path, f.kind, f.detail)?;
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(err(format!(
            "{} regressions against {baseline_path}",
            findings.len()
        )))
    }
}

/// `reduce`: palette-reduce an existing coloring.
pub fn reduce(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let colors_path = args.require("colors")?;
    let text = std::fs::read_to_string(colors_path)
        .map_err(|e| err(format!("cannot read {colors_path}: {e}")))?;
    let colors = parse_assignment(&text, graph.len())?;
    let coloring = Coloring::from_vec(colors);
    if !coloring.is_proper(&graph) {
        return Err(err("input coloring is not proper"));
    }
    let reduced = reduce_palette(&graph, &coloring);
    writeln!(
        log,
        "reduced palette {} -> {} (Δ+1 = {})",
        coloring.palette_size(),
        reduced.palette_size(),
        graph.max_degree() + 1
    )?;
    out.write_all(format_assignment(reduced.as_slice()).as_bytes())?;
    Ok(())
}

/// `schedule`: build a Theorem-3 TDMA schedule and audit it.
pub fn schedule(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let factor = theorem3_distance_factor(&cfg);
    let result = color_at_distance(&pts, &cfg, factor, seed, WakeupSchedule::Synchronous);
    let colors = result
        .colors()
        .ok_or_else(|| err("coloring hit the slot cap"))?;
    let schedule = TdmaSchedule::from_colors(colors);
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let audit = broadcast_audit(&graph, &cfg, &schedule);
    writeln!(
        log,
        "frame = {} slots; link success = {:.1}%; interference-free = {}",
        schedule.frame_len(),
        100.0 * audit.link_success_rate(),
        audit.is_interference_free()
    )?;
    let slots: Vec<usize> = (0..graph.len()).map(|v| schedule.slot_of(v)).collect();
    out.write_all(format_assignment(&slots).as_bytes())?;
    if audit.is_interference_free() {
        Ok(())
    } else {
        Err(err("schedule leaked interference"))
    }
}

/// `render`: emit an SVG drawing.
pub fn render(args: &Args, out: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let colors = match args.get("colors") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            Some(parse_assignment(&text, graph.len())?)
        }
        None => None,
    };
    let opts = RenderOptions {
        draw_labels: args.has_flag("labels"),
        ..RenderOptions::default()
    };
    let svg = render_svg(&graph, colors.as_deref(), &opts);
    out.write_all(svg.as_bytes())?;
    Ok(())
}

/// `cluster`: run only the MIS/clustering stage.
pub fn cluster(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let outcome = run_clustering(
        &graph,
        SinrModel::new(cfg),
        &MwConfig::new(params).with_seed(seed),
        WakeupSchedule::Synchronous,
    );
    if !outcome.all_clustered {
        return Err(err("clustering hit the slot cap"));
    }
    writeln!(
        log,
        "elected {} leaders in {} slots; maximal independent = {}",
        outcome.leaders.len(),
        outcome.slots,
        outcome.is_maximal_independent(&graph)
    )?;
    let leaders: Vec<usize> = (0..graph.len())
        .map(|v| outcome.assignment[v].unwrap_or(v))
        .collect();
    out.write_all(format_assignment(&leaders).as_bytes())?;
    Ok(())
}

/// `simulate`: run a message-passing workload under SINR over a
/// Theorem-3 TDMA schedule (Corollary 1 end to end).
pub fn simulate(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    let cfg = physical_config(args)?;
    let pts = read_positions(args)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let source: usize = args.get_parsed("source", 0)?;
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    if source >= graph.len() {
        return Err(err(format!("--source {source} out of range")));
    }

    let factor = theorem3_distance_factor(&cfg);
    let colored = color_at_distance(&pts, &cfg, factor, seed, WakeupSchedule::Synchronous);
    let schedule = TdmaSchedule::from_colors(
        colored
            .colors()
            .ok_or_else(|| err("coloring hit the slot cap"))?,
    );
    let max_rounds = 10 * graph.len().max(1);

    let algorithm = args.require("algorithm")?;
    let (results, run): (Vec<String>, sinr_mac::SrsRun) = match algorithm {
        "flooding" => {
            let mut nodes: Vec<Flooding> = (0..graph.len())
                .map(|v| Flooding::new(v == source))
                .collect();
            let run = simulate_uniform(&graph, &cfg, &schedule, &mut nodes, max_rounds);
            (
                nodes
                    .iter()
                    .map(|n| {
                        if n.informed() {
                            "informed"
                        } else {
                            "unreached"
                        }
                        .to_string()
                    })
                    .collect(),
                run,
            )
        }
        "bfs" => {
            let mut nodes: Vec<BfsLayers> = (0..graph.len())
                .map(|v| BfsLayers::new(v == source))
                .collect();
            let run = simulate_uniform(&graph, &cfg, &schedule, &mut nodes, max_rounds);
            (
                nodes
                    .iter()
                    .map(|n| {
                        n.distance()
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "unreached".to_string())
                    })
                    .collect(),
                run,
            )
        }
        "convergecast" => {
            let values = vec![1u64; graph.len()];
            let mut nodes = Convergecast::build_tree(&graph, source, &values);
            let run = simulate_general_bundled(&graph, &cfg, &schedule, &mut nodes, max_rounds);
            (
                nodes.iter().map(|n| n.aggregate().to_string()).collect(),
                run,
            )
        }
        other => return Err(err(format!("unknown algorithm {other}"))),
    };

    writeln!(
        log,
        "{algorithm}: {} rounds x {} slots = {} slots; faithful = {}; setup = {} slots",
        run.rounds,
        schedule.frame_len(),
        run.slots,
        run.is_faithful(),
        colored.outcome.slots
    )?;
    for (v, r) in results.iter().enumerate() {
        writeln!(out, "{v} {r}")?;
    }
    Ok(())
}

/// Dispatches a parsed invocation.
pub fn dispatch(args: &Args, out: &mut dyn Write, log: &mut dyn Write) -> CliResult {
    match args.command.as_str() {
        "generate" => generate(args, out),
        "info" => info(args, out),
        "color" => color(args, out, log),
        "report" => report(args, out, log),
        "trace" => trace(args, out, log),
        "profile" => profile(args, out, log),
        "diff" => diff(args, out, log),
        "reduce" => reduce(args, out, log),
        "schedule" => schedule(args, out, log),
        "render" => render(args, out),
        "cluster" => cluster(args, out, log),
        "simulate" => simulate(args, out, log),
        "help" => {
            out.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        other => Err(err(format!("unknown command {other}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> (CliResult, String, String) {
        let args = Args::parse(tokens.iter().map(|s| s.to_string())).unwrap();
        let mut out = Vec::new();
        let mut log = Vec::new();
        let r = dispatch(&args, &mut out, &mut log);
        (
            r,
            String::from_utf8(out).unwrap(),
            String::from_utf8(log).unwrap(),
        )
    }

    fn tmp_positions(n: usize) -> tempfile::TempPath {
        let mut out = Vec::new();
        // Generate via the command itself for a realistic file.
        let parsed = Args::parse(
            [
                "generate",
                "--kind",
                "uniform",
                "--n",
                &n.to_string(),
                "--seed",
                "5",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        generate(&parsed, &mut out).unwrap();
        tempfile::write(&out)
    }

    /// Minimal temp-file helper (std-only).
    mod tempfile {
        use std::path::PathBuf;

        pub struct TempPath(pub PathBuf);
        impl TempPath {
            pub fn path(&self) -> &str {
                self.0.to_str().unwrap()
            }
        }
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write(bytes: &[u8]) -> TempPath {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let id = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("sinrcolor-test-{}-{id}.txt", std::process::id()));
            std::fs::write(&path, bytes).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn generate_emits_parseable_positions() {
        let (r, out, _) = run(&["generate", "--kind", "uniform", "--n", "30", "--seed", "1"]);
        assert!(r.is_ok());
        let pts = crate::io::parse_positions(&out).unwrap();
        assert_eq!(pts.len(), 30);
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        let (r, _, _) = run(&["generate", "--kind", "donut"]);
        assert!(r.is_err());
    }

    #[test]
    fn info_reports_graph_stats() {
        let f = tmp_positions(25);
        let (r, out, _) = run(&["info", "--input", f.path()]);
        assert!(r.is_ok());
        assert!(out.contains("nodes       : 25"));
        assert!(out.contains("max degree"));
        assert!(out.contains("guard d"));
    }

    #[test]
    fn color_produces_proper_assignment() {
        let f = tmp_positions(25);
        let (r, out, log) = run(&["color", "--input", f.path(), "--seed", "2"]);
        assert!(r.is_ok(), "{log}");
        let colors = crate::io::parse_assignment(&out, 25).unwrap();
        assert_eq!(colors.len(), 25);
        assert!(log.contains("0 violations"));
    }

    #[test]
    fn color_seeds_concatenates_per_seed_blocks_in_order() {
        let f = tmp_positions(25);
        let (r, out, log) = run(&["color", "--input", f.path(), "--seeds", "2..5"]);
        assert!(r.is_ok(), "{log}");
        // One block per seed, in ascending seed order, each a complete
        // assignment identical to the corresponding single-seed run.
        let mut rest = out.as_str();
        for seed in 2..5u64 {
            let header = format!("# seed {seed}\n");
            assert!(rest.starts_with(&header), "expected {header:?} in {rest:?}");
            rest = &rest[header.len()..];
            let block_len = rest.find("# seed").unwrap_or(rest.len());
            let (block, tail) = rest.split_at(block_len);
            let (r1, single, _) = run(&["color", "--input", f.path(), "--seed", &seed.to_string()]);
            assert!(r1.is_ok());
            assert_eq!(block, single, "seed {seed} block differs");
            rest = tail;
        }
        assert!(rest.is_empty());
        for seed in 2..5u64 {
            assert!(log.contains(&format!("seed {seed}: colored 25 nodes")));
        }
    }

    #[test]
    fn color_seeds_output_is_thread_invariant() {
        let f = tmp_positions(20);
        let (r1, base, log) = run(&[
            "color",
            "--input",
            f.path(),
            "--seeds",
            "0..4",
            "--threads",
            "1",
        ]);
        assert!(r1.is_ok(), "{log}");
        for threads in ["2", "4"] {
            let (r, out, log_t) = run(&[
                "color",
                "--input",
                f.path(),
                "--seeds",
                "0..4",
                "--threads",
                threads,
            ]);
            assert!(r.is_ok());
            assert_eq!(out, base, "--threads {threads} changed the output");
            assert_eq!(log_t, log, "--threads {threads} changed the log");
        }
    }

    #[test]
    fn color_seeds_rejects_conflicting_flags_and_bad_ranges() {
        let f = tmp_positions(10);
        for extra in [
            ["--seed", "1"].as_slice(),
            ["--obs", "stderr"].as_slice(),
            ["--distance", "2"].as_slice(),
            ["--model", "donut"].as_slice(),
        ] {
            let mut tokens = vec!["color", "--input", f.path(), "--seeds", "0..2"];
            tokens.extend_from_slice(extra);
            let (r, _, _) = run(&tokens);
            assert!(r.is_err(), "expected rejection with {extra:?}");
        }
        for bad in ["3", "5..5", "7..2", "a..b"] {
            let (r, _, _) = run(&["color", "--input", f.path(), "--seeds", bad]);
            assert!(r.is_err(), "expected rejection of --seeds {bad}");
        }
    }

    #[test]
    fn color_then_reduce_roundtrips_through_files() {
        let f = tmp_positions(25);
        let (r, colors_text, _) = run(&["color", "--input", f.path(), "--seed", "3"]);
        assert!(r.is_ok());
        let cf = tempfile::write(colors_text.as_bytes());
        let (r, reduced_text, log) = run(&["reduce", "--input", f.path(), "--colors", cf.path()]);
        assert!(r.is_ok(), "{log}");
        let reduced = crate::io::parse_assignment(&reduced_text, 25).unwrap();
        assert_eq!(reduced.len(), 25);
        assert!(log.contains("reduced palette"));
    }

    #[test]
    fn schedule_emits_frame_and_audit() {
        let f = tmp_positions(20);
        let (r, out, log) = run(&["schedule", "--input", f.path()]);
        assert!(r.is_ok(), "{log}");
        assert!(log.contains("interference-free = true"));
        let slots = crate::io::parse_assignment(&out, 20).unwrap();
        assert_eq!(slots.len(), 20);
    }

    #[test]
    fn render_emits_svg() {
        let f = tmp_positions(15);
        let (r, out, _) = run(&["render", "--input", f.path(), "--labels"]);
        assert!(r.is_ok());
        assert!(out.starts_with("<svg"));
        assert!(out.contains("<text"));
    }

    #[test]
    fn cluster_elects_leaders() {
        let f = tmp_positions(25);
        let (r, out, log) = run(&["cluster", "--input", f.path(), "--seed", "1"]);
        assert!(r.is_ok(), "{log}");
        assert!(log.contains("maximal independent = true"));
        let assignment = crate::io::parse_assignment(&out, 25).unwrap();
        // Every node points at a leader; leaders point at themselves.
        for (v, &l) in assignment.iter().enumerate() {
            assert_eq!(assignment[l], l, "leader of node {v} must self-point");
        }
    }

    #[test]
    fn simulate_flooding_and_convergecast() {
        let f = tmp_positions(20);
        let (r, out, log) = run(&[
            "simulate",
            "--input",
            f.path(),
            "--algorithm",
            "flooding",
            "--source",
            "0",
        ]);
        assert!(r.is_ok(), "{log}");
        assert!(log.contains("faithful = true"));
        assert_eq!(out.lines().count(), 20);
        let (r, out, log) = run(&[
            "simulate",
            "--input",
            f.path(),
            "--algorithm",
            "convergecast",
        ]);
        assert!(r.is_ok(), "{log}");
        // The source aggregates its whole component (values are all 1).
        let first = out.lines().next().unwrap();
        let agg: u64 = first.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(agg >= 1);
    }

    #[test]
    fn simulate_rejects_unknown_algorithm_and_bad_source() {
        let f = tmp_positions(10);
        let (r, _, _) = run(&["simulate", "--input", f.path(), "--algorithm", "magic"]);
        assert!(r.is_err());
        let (r, _, _) = run(&[
            "simulate",
            "--input",
            f.path(),
            "--algorithm",
            "bfs",
            "--source",
            "99",
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn help_and_unknown_commands() {
        let (r, out, _) = run(&["help"]);
        assert!(r.is_ok());
        assert!(out.contains("USAGE"));
        let (r, _, _) = run(&["frobnicate"]);
        assert!(r.is_err());
    }

    #[test]
    fn color_rejects_unknown_model() {
        let f = tmp_positions(10);
        let (r, _, _) = run(&["color", "--input", f.path(), "--model", "psychic"]);
        assert!(r.is_err());
    }

    #[test]
    fn color_obs_writes_jsonl_and_metrics_files() {
        let f = tmp_positions(20);
        let jf = tempfile::write(b"");
        let mf = tempfile::write(b"");
        let spec = format!("jsonl:{},metrics:{}", jf.path(), mf.path());
        let (r, out, log) = run(&["color", "--input", f.path(), "--seed", "1", "--obs", &spec]);
        assert!(r.is_ok(), "{log}");
        assert_eq!(crate::io::parse_assignment(&out, 20).unwrap().len(), 20);

        let jsonl = std::fs::read_to_string(jf.path()).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(
                sinr_obs::json::parse_flat_object(line).is_some(),
                "JSONL line parses: {line}"
            );
        }
        let metrics = std::fs::read_to_string(mf.path()).unwrap();
        assert!(metrics.starts_with("{\"schema_version\":2,\"kind\":\"metrics\""));
        assert!(metrics.contains("\"sim.slots\""));
        assert!(metrics.contains("\"obs.events.dropped\""));
    }

    #[test]
    fn color_obs_writes_trace_and_timeseries_files() {
        let f = tmp_positions(20);
        let tf = tempfile::write(b"");
        let sf = tempfile::write(b"");
        let spec = format!("trace:{},timeseries:{}", tf.path(), sf.path());
        let (r, _, log) = run(&[
            "color",
            "--input",
            f.path(),
            "--seed",
            "1",
            "--obs",
            &spec,
            "--series-stride",
            "2",
        ]);
        assert!(r.is_ok(), "{log}");

        let trace = std::fs::read_to_string(tf.path()).unwrap();
        assert!(trace.starts_with("{\"schema_version\":2,\"kind\":\"trace_events\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"slot-time\""));
        let series = std::fs::read_to_string(sf.path()).unwrap();
        assert!(series.starts_with("{\"schema_version\":2,\"kind\":\"timeseries\""));
        assert!(series.contains("\"stride\":2"));
        assert!(series.contains("\"sim.slot.transmitters\""));

        let (r, _, _) = run(&[
            "color",
            "--input",
            f.path(),
            "--obs",
            &spec,
            "--series-stride",
            "0",
        ]);
        assert!(r.is_err(), "stride 0 is rejected");
    }

    #[test]
    fn color_obs_matches_unobserved_run() {
        let f = tmp_positions(20);
        let mf = tempfile::write(b"");
        let spec = format!("metrics:{}", mf.path());
        let (r1, plain, _) = run(&["color", "--input", f.path(), "--seed", "4"]);
        let (r2, observed, _) = run(&["color", "--input", f.path(), "--seed", "4", "--obs", &spec]);
        assert!(r1.is_ok() && r2.is_ok());
        assert_eq!(plain, observed, "recording must not perturb the run");
    }

    #[test]
    fn color_rejects_bad_obs_spec_and_distance_combo() {
        let f = tmp_positions(10);
        let (r, _, _) = run(&["color", "--input", f.path(), "--obs", "csv:x"]);
        assert!(r.is_err());
        let (r, _, _) = run(&[
            "color",
            "--input",
            f.path(),
            "--distance",
            "2",
            "--obs",
            "stderr",
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn report_emits_schema_documented_json() {
        let f = tmp_positions(20);
        let (r, out, log) = run(&["report", "--input", f.path(), "--seed", "2"]);
        assert!(r.is_ok(), "{log}");
        let doc = out.trim();
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"run_report\","));
        assert!(doc.contains("\"run\":{\"nodes\":20,\"model\":\"sinr-fast\",\"seed\":2,"));
        assert!(doc.contains("\"metrics\":{"));
        // The paper's invariants hold on every e2e run: all probes quiet.
        assert!(doc.contains(
            "\"probes\":{\"thm1_violations\":0,\"lemma4_violations\":0,\
             \"lemma6_violations\":0,\"lemma7_violations\":0}"
        ));
        assert!(doc.contains("\"events\":{\"recorded\":"));
        assert!(doc.contains("\"spans\":{\"recorded\":"));
        assert!(doc.contains("\"obs.events.dropped\""));
        assert!(doc.ends_with('}'));
        assert!(log.contains("0 probe violations"));
    }

    #[test]
    fn profile_emits_schema_documented_json() {
        let f = tmp_positions(20);
        let (r, out, log) = run(&["profile", "--input", f.path(), "--seed", "2"]);
        assert!(r.is_ok(), "{log}");
        let doc = out.trim();
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"profile_report\","));
        assert!(doc.contains("\"run\":{\"nodes\":20,\"model\":\"sinr-fast\",\"seed\":2,"));
        // The test binary installs CountingAlloc (see lib.rs), so the
        // report must mark itself instrumented and see real traffic.
        assert!(
            doc.contains("\"allocator\":{\"counting\":true,\"heap_peak\":"),
            "{doc}"
        );
        assert!(doc.contains("\"mw.setup\":{\"allocs\":"));
        assert!(doc.contains("\"engine.actions\":{\"allocs\":"));
        assert!(doc.contains("\"engine.resolve\":{\"allocs\":"));
        assert!(doc.contains("\"engine.delivery\":{\"allocs\":"));
        assert!(doc.contains("\"steady\":{\"window\":"));
        assert!(doc.contains("\"struct_sizes\":{\"MwNode\":"));
        assert!(doc.ends_with('}'));
        assert!(log.contains("profiled 20 nodes"));
        // Setup always allocates (graph clone + node construction).
        let setup_allocs: u64 = doc
            .split("\"mw.setup\":{\"allocs\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(setup_allocs > 0, "setup should allocate: {doc}");
        // Friendly failures: missing input, unknown model.
        let (r, _, _) = run(&["profile"]);
        assert!(r.is_err());
        let (r, _, _) = run(&["profile", "--input", f.path(), "--model", "psychic"]);
        assert!(r.is_err());
    }

    #[test]
    fn profile_does_not_change_the_coloring() {
        // A profiled run and a plain run are the same run: profiling
        // reads allocator counters but never steers the engine.
        let f = tmp_positions(20);
        let (r1, colors, _) = run(&["color", "--input", f.path(), "--seed", "7"]);
        assert!(r1.is_ok());
        let (r2, doc, _) = run(&[
            "profile",
            "--input",
            f.path(),
            "--seed",
            "7",
            "--model",
            "sinr",
        ]);
        assert!(r2.is_ok());
        let (r3, colors2, _) = run(&["color", "--input", f.path(), "--seed", "7"]);
        assert!(r3.is_ok());
        assert_eq!(colors, colors2);
        assert!(doc.contains("\"all_done\":true"));
    }

    #[test]
    fn trace_emits_chrome_trace_json() {
        let f = tmp_positions(20);
        let (r, out, log) = run(&["trace", "--input", f.path(), "--seed", "2"]);
        assert!(r.is_ok(), "{log}");
        let doc = out.trim();
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"trace_events\""));
        assert!(doc.contains("\"traceEvents\":["));
        // Engine phases, resolver internals, and node residencies all land
        // on the timeline.
        assert!(doc.contains("\"name\":\"actions\""));
        assert!(doc.contains("\"name\":\"resolve\""));
        assert!(doc.contains("\"name\":\"delivery\""));
        assert!(doc.contains("\"cat\":\"node\""));
        assert!(log.contains("traced 20 nodes"));
        // Friendly failures: missing input, unknown model.
        let (r, _, _) = run(&["trace"]);
        assert!(r.is_err());
        let (r, _, _) = run(&["trace", "--input", f.path(), "--model", "psychic"]);
        assert!(r.is_err());
    }

    #[test]
    fn trace_is_identical_across_thread_counts() {
        let f = tmp_positions(20);
        let (r1, base, _) = run(&["trace", "--input", f.path(), "--seed", "3"]);
        assert!(r1.is_ok());
        for threads in ["2", "4"] {
            let (r2, threaded, _) = run(&[
                "trace",
                "--input",
                f.path(),
                "--seed",
                "3",
                "--threads",
                threads,
            ]);
            assert!(r2.is_ok());
            assert_eq!(base, threaded, "trace must not depend on thread count");
        }
    }

    #[test]
    fn diff_of_a_run_against_itself_is_clean() {
        let f = tmp_positions(20);
        let (r, report_doc, _) = run(&["report", "--input", f.path(), "--seed", "2"]);
        assert!(r.is_ok());
        let a = tempfile::write(report_doc.as_bytes());
        let b = tempfile::write(report_doc.as_bytes());
        let (r, out, log) = run(&["diff", "--baseline", a.path(), "--current", b.path()]);
        assert!(r.is_ok(), "{log}");
        assert!(out.starts_with("{\"schema_version\":2,\"kind\":\"diff_report\""));
        assert!(out.contains("\"count\":0"));
        assert!(log.contains("0 findings"));
    }

    #[test]
    fn diff_flags_regressions_and_honors_the_policy() {
        let a = tempfile::write(b"{\"kind\":\"metrics\",\"v\":{\"value\":10}}");
        let b = tempfile::write(b"{\"kind\":\"metrics\",\"v\":{\"value\":11}}");
        let (r, out, _) = run(&["diff", "--baseline", a.path(), "--current", b.path()]);
        assert!(r.is_err(), "a changed value without tolerance fails");
        assert!(out.contains("\"path\":\"v/value\""));

        let policy = tempfile::write(
            b"{\"kind\":\"diff_policy\",\"rules\":[{\"path\":\"v/**\",\"mode\":\"rel\",\"value\":0.2}]}",
        );
        let (r, out, log) = run(&[
            "diff",
            "--baseline",
            a.path(),
            "--current",
            b.path(),
            "--policy",
            policy.path(),
        ]);
        assert!(r.is_ok(), "{log}");
        assert!(out.contains("\"count\":0"));
    }

    #[test]
    fn diff_rejects_malformed_inputs_with_friendly_errors() {
        let good = tempfile::write(b"{\"a\":1}");
        let bad = tempfile::write(b"not json at all");
        let (r, _, _) = run(&["diff", "--baseline", good.path()]);
        assert!(r.is_err(), "missing --current");
        let (r, _, _) = run(&["diff", "--baseline", bad.path(), "--current", good.path()]);
        let msg = format!("{}", r.unwrap_err());
        assert!(msg.contains("not valid JSON"), "{msg}");
        let (r, _, _) = run(&[
            "diff",
            "--baseline",
            good.path(),
            "--current",
            good.path(),
            "--policy",
            bad.path(),
        ]);
        let msg = format!("{}", r.unwrap_err());
        assert!(msg.contains("bad diff policy"), "{msg}");
        let (r, _, _) = run(&[
            "diff",
            "--baseline",
            good.path(),
            "--current",
            good.path(),
            "--policy",
            "/nonexistent/policy.json",
        ]);
        let msg = format!("{}", r.unwrap_err());
        assert!(msg.contains("cannot read"), "{msg}");
    }

    #[test]
    fn report_honors_ring_and_stride_options() {
        let f = tmp_positions(15);
        let (r, out, _) = run(&[
            "report",
            "--input",
            f.path(),
            "--ring",
            "8",
            "--thm1-stride",
            "16",
        ]);
        assert!(r.is_ok());
        assert!(out.contains("\"capacity\":8"));
        let (r, _, _) = run(&["report", "--input", f.path(), "--thm1-stride", "0"]);
        assert!(r.is_err(), "stride 0 is rejected");
    }

    #[test]
    fn color_sinr_fast_matches_sinr() {
        let f = tmp_positions(25);
        let (r1, naive, _) = run(&["color", "--input", f.path(), "--model", "sinr"]);
        let (r2, fast, _) = run(&["color", "--input", f.path(), "--model", "sinr-fast"]);
        assert!(r1.is_ok() && r2.is_ok());
        assert_eq!(naive, fast, "fast resolver yields the identical coloring");
    }

    #[test]
    fn color_sinr_auto_matches_sinr() {
        let f = tmp_positions(25);
        let (r1, naive, _) = run(&["color", "--input", f.path(), "--model", "sinr"]);
        let (r2, auto, _) = run(&["color", "--input", f.path(), "--model", "sinr-auto"]);
        assert!(r1.is_ok() && r2.is_ok());
        assert_eq!(naive, auto, "auto resolver yields the identical coloring");
    }

    #[test]
    fn color_threads_do_not_change_the_output() {
        let f = tmp_positions(30);
        for model in ["sinr", "sinr-fast"] {
            let (r1, base, _) = run(&["color", "--input", f.path(), "--model", model]);
            assert!(r1.is_ok());
            for threads in ["2", "4"] {
                let (r2, threaded, _) = run(&[
                    "color",
                    "--input",
                    f.path(),
                    "--model",
                    model,
                    "--threads",
                    threads,
                ]);
                assert!(r2.is_ok());
                assert_eq!(base, threaded, "{model} with {threads} threads diverged");
            }
        }
    }

    #[test]
    fn report_threads_emit_identical_json() {
        let f = tmp_positions(20);
        let (r1, base, _) = run(&["report", "--input", f.path(), "--seed", "2"]);
        let (r2, threaded, _) = run(&[
            "report",
            "--input",
            f.path(),
            "--seed",
            "2",
            "--threads",
            "4",
        ]);
        assert!(r1.is_ok() && r2.is_ok());
        assert_eq!(base, threaded, "run report must not depend on thread count");
    }

    #[test]
    fn color_rejects_zero_threads() {
        let f = tmp_positions(10);
        let (r, _, _) = run(&["color", "--input", f.path(), "--threads", "0"]);
        assert!(r.is_err());
    }
}
