//! Plain-text file formats: positions (`x y` per line) and per-node
//! integer assignments (`node value` per line).

use crate::{err, CliError};
use sinr_geometry::Point;

/// Parses a positions document: one `x y` pair per line; blank lines and
/// `#`-comments ignored.
///
/// # Errors
///
/// Fails on malformed lines or non-finite coordinates, citing the line
/// number.
pub fn parse_positions(text: &str) -> Result<Vec<Point>, CliError> {
    let mut pts = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(xs), Some(ys), None) = (it.next(), it.next(), it.next()) else {
            return Err(err(format!(
                "line {}: expected 'x y', got {raw:?}",
                lineno + 1
            )));
        };
        let x: f64 = xs
            .parse()
            .map_err(|_| err(format!("line {}: bad x {xs:?}", lineno + 1)))?;
        let y: f64 = ys
            .parse()
            .map_err(|_| err(format!("line {}: bad y {ys:?}", lineno + 1)))?;
        if !x.is_finite() || !y.is_finite() {
            return Err(err(format!("line {}: non-finite coordinate", lineno + 1)));
        }
        pts.push(Point::new(x, y));
    }
    Ok(pts)
}

/// Renders positions in the same format `parse_positions` reads.
pub fn format_positions(pts: &[Point]) -> String {
    let mut out = String::with_capacity(pts.len() * 24);
    for p in pts {
        out.push_str(&format!("{} {}\n", p.x, p.y));
    }
    out
}

/// Parses a per-node assignment document: `node value` per line.
///
/// Returns the assignment as a dense vector; every node in `0..n` must
/// appear exactly once.
///
/// # Errors
///
/// Fails on malformed lines, duplicates, or missing nodes.
pub fn parse_assignment(text: &str, n: usize) -> Result<Vec<usize>, CliError> {
    let mut values: Vec<Option<usize>> = vec![None; n];
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(vs), Some(cs), None) = (it.next(), it.next(), it.next()) else {
            return Err(err(format!(
                "line {}: expected 'node value', got {raw:?}",
                lineno + 1
            )));
        };
        let v: usize = vs
            .parse()
            .map_err(|_| err(format!("line {}: bad node id {vs:?}", lineno + 1)))?;
        let c: usize = cs
            .parse()
            .map_err(|_| err(format!("line {}: bad value {cs:?}", lineno + 1)))?;
        if v >= n {
            return Err(err(format!("line {}: node {v} out of range", lineno + 1)));
        }
        if values[v].is_some() {
            return Err(err(format!("line {}: duplicate node {v}", lineno + 1)));
        }
        values[v] = Some(c);
    }
    values
        .into_iter()
        .enumerate()
        .map(|(v, c)| c.ok_or_else(|| err(format!("node {v} missing from assignment"))))
        .collect()
}

/// Renders a per-node assignment in the format `parse_assignment` reads.
pub fn format_assignment(values: &[usize]) -> String {
    let mut out = String::with_capacity(values.len() * 8);
    for (v, c) in values.iter().enumerate() {
        out.push_str(&format!("{v} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_roundtrip() {
        let pts = vec![Point::new(1.5, -2.0), Point::new(0.0, 3.25)];
        let text = format_positions(&pts);
        assert_eq!(parse_positions(&text).unwrap(), pts);
    }

    #[test]
    fn positions_allow_comments_and_blanks() {
        let text = "# header\n1 2\n\n3 4  # inline\n";
        let pts = parse_positions(text).unwrap();
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
    }

    #[test]
    fn positions_reject_malformed() {
        assert!(parse_positions("1\n").is_err());
        assert!(parse_positions("1 2 3\n").is_err());
        assert!(parse_positions("a b\n").is_err());
        assert!(parse_positions("inf 0\n").is_err());
    }

    #[test]
    fn assignment_roundtrip() {
        let values = vec![3, 0, 7];
        let text = format_assignment(&values);
        assert_eq!(parse_assignment(&text, 3).unwrap(), values);
    }

    #[test]
    fn assignment_rejects_gaps_and_dupes() {
        assert!(parse_assignment("0 1\n0 2\n", 2).is_err()); // dup
        assert!(parse_assignment("0 1\n", 2).is_err()); // missing node 1
        assert!(parse_assignment("5 1\n", 2).is_err()); // out of range
    }
}
