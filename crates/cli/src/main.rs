//! `sinrcolor` binary entry point: parse, dispatch, report.

use sinr_cli::args::Args;
use sinr_cli::commands::{dispatch, USAGE};

/// Count every heap event through the observability allocator so the
/// `profile` subcommand reports real numbers. The wrapper forwards to
/// the system allocator with a handful of relaxed counter updates — see
/// `docs/PERFORMANCE.md` for its measured cost on the other subcommands.
#[global_allocator]
static ALLOC: sinr_obs::alloc::CountingAlloc = sinr_obs::alloc::CountingAlloc;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout().lock();
    let mut log = std::io::stderr().lock();
    if let Err(e) = dispatch(&args, &mut out, &mut log) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
