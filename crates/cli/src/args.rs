//! Minimal `--key value` argument parsing (no external dependencies).

use crate::{err, CliError};
use std::collections::BTreeMap;

/// Parsed arguments: a subcommand name plus `--key value` options and
/// bare `--flag` switches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the binary name).
    ///
    /// Grammar: `COMMAND (--key VALUE | --switch)*` where a `--switch` is
    /// any `--name` immediately followed by another `--…` or the end.
    ///
    /// # Errors
    ///
    /// Fails if no subcommand is present or a positional argument appears
    /// after the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        match iter.next() {
            Some(cmd) if !cmd.starts_with("--") => args.command = cmd,
            Some(other) => return Err(err(format!("expected a subcommand, got {other}"))),
            None => return Err(err("missing subcommand")),
        }
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument {token}")));
            };
            if let Some(value) = iter.next_if(|v| !v.starts_with("--")) {
                args.options.insert(name.to_string(), value);
            } else {
                args.flags.push(name.to_string());
            }
        }
        Ok(args)
    }

    /// The string value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The string value of `--name` or an error naming the flag.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required option --{name}")))
    }

    /// Whether the bare switch `--name` was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--name` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Fails when the value is present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid value for --{name}: {v}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, CliError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["color", "--input", "pts.txt", "--seed", "7", "--quiet"]).unwrap();
        assert_eq!(a.command, "color");
        assert_eq!(a.get("input"), Some("pts.txt"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(a.has_flag("quiet"));
        assert!(!a.has_flag("loud"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["color"]).unwrap();
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
        assert!(a.get("input").is_none());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["color"]).unwrap();
        let e = a.require("input").unwrap_err();
        assert!(e.0.contains("--input"));
    }

    #[test]
    fn bad_numeric_value_is_an_error() {
        let a = parse(&["color", "--seed", "abc"]).unwrap();
        assert!(a.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--input", "x"]).is_err());
    }

    #[test]
    fn positional_after_command_is_an_error() {
        assert!(parse(&["color", "stray"]).is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // "-3" does not start with "--", so it binds as a value.
        let a = parse(&["gen", "--offset", "-3"]).unwrap();
        assert_eq!(a.get_parsed("offset", 0i64).unwrap(), -3);
    }
}
