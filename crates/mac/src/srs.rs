//! Single Round Simulation (SRS): executing message-passing algorithms in
//! the SINR model over a TDMA schedule — the machinery behind Corollary 1.
//!
//! Each message-passing *round* is expanded into one TDMA *frame*: in its
//! slot, every node with a pending round-message broadcasts it; after the
//! frame, all nodes advance to the next round together. With a Theorem-3
//! compliant schedule every delivery succeeds, so the simulation is a
//! faithful lock-step execution using `τ · V` slots (`V = O(Δ)` colors ⇒
//! `O(Δτ)` slots, plus the `O(Δ log n)` coloring setup = Corollary 1).

use crate::mp::{GeneralAlgorithm, UniformAlgorithm};
use crate::tdma::TdmaSchedule;
use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::{InterferenceModel, SinrConfig, SinrModel};

/// Statistics from an SRS execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrsRun {
    /// Message-passing rounds executed.
    pub rounds: usize,
    /// SINR slots consumed (`rounds × frame_len`).
    pub slots: u64,
    /// Point-to-point deliveries the ideal channel would have made.
    pub deliveries_expected: u64,
    /// Deliveries that actually succeeded under SINR.
    pub deliveries_made: u64,
    /// Radio transmissions spent (one per sender per occupied slot) —
    /// with a per-message bit size this yields the Corollary-1
    /// bandwidth figures (bundled: `O(sΔ log n)` bits each; unicast:
    /// `O(s log n)` bits each).
    pub transmissions: u64,
    /// Whether every node reported done.
    pub all_done: bool,
}

impl SrsRun {
    /// Whether the SINR execution delivered every message the ideal
    /// channel would have — lock-step faithfulness.
    pub fn is_faithful(&self) -> bool {
        self.deliveries_made == self.deliveries_expected
    }
}

/// Simulates a *uniform* algorithm in the SINR model over `schedule`.
///
/// Runs until all nodes are done or `max_rounds` rounds elapse.
///
/// # Panics
///
/// Panics if `nodes`/`schedule` do not cover exactly the nodes of `g`.
pub fn simulate_uniform<A: UniformAlgorithm>(
    g: &UnitDiskGraph,
    cfg: &SinrConfig,
    schedule: &TdmaSchedule,
    nodes: &mut [A],
    max_rounds: usize,
) -> SrsRun {
    assert_eq!(nodes.len(), g.len(), "one algorithm instance per node");
    assert_eq!(schedule.len(), g.len(), "schedule must cover every node");
    let model = SinrModel::new(*cfg);
    let mut run = SrsRun {
        rounds: 0,
        slots: 0,
        deliveries_expected: 0,
        deliveries_made: 0,
        transmissions: 0,
        all_done: false,
    };

    for round in 0..max_rounds {
        if nodes.iter().all(|n| n.is_done()) {
            run.all_done = true;
            return run;
        }
        run.rounds = round + 1;
        // Collect this round's broadcasts.
        let outgoing: Vec<Option<A::Msg>> = nodes.iter_mut().map(|n| n.send(round)).collect();
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); g.len()];

        // One TDMA frame: slot t carries the senders colored t.
        for t in 0..schedule.frame_len() {
            run.slots += 1;
            let tx: Vec<NodeId> = schedule
                .transmitters_in(t)
                .into_iter()
                .filter(|&v| outgoing[v].is_some())
                .collect();
            if tx.is_empty() {
                continue;
            }
            run.transmissions += tx.len() as u64;
            for &v in &tx {
                run.deliveries_expected += g.degree(v) as u64;
            }
            let table = model.resolve(g, &tx);
            for (receiver, sender) in table.iter() {
                let msg = outgoing[sender]
                    .as_ref()
                    .expect("scheduled sender has a message")
                    .clone();
                inboxes[receiver].push((sender, msg));
                run.deliveries_made += 1;
            }
        }

        for v in 0..g.len() {
            inboxes[v].sort_unstable_by_key(|&(s, _)| s);
            nodes[v].receive(round, &inboxes[v]);
        }
    }
    run.all_done = nodes.iter().all(|n| n.is_done());
    run
}

/// Simulates a *general* algorithm by bundling all per-neighbor messages
/// of a round into one broadcast (the `O(Δ(log n + τ))`-time,
/// `O(sΔ log n)`-bit variant of Corollary 1); receivers extract the part
/// addressed to them.
///
/// # Panics
///
/// Panics if `nodes`/`schedule` do not cover exactly the nodes of `g`, or
/// an algorithm sends to a non-neighbor.
pub fn simulate_general_bundled<A: GeneralAlgorithm>(
    g: &UnitDiskGraph,
    cfg: &SinrConfig,
    schedule: &TdmaSchedule,
    nodes: &mut [A],
    max_rounds: usize,
) -> SrsRun {
    assert_eq!(nodes.len(), g.len(), "one algorithm instance per node");
    assert_eq!(schedule.len(), g.len(), "schedule must cover every node");
    let model = SinrModel::new(*cfg);
    let mut run = SrsRun {
        rounds: 0,
        slots: 0,
        deliveries_expected: 0,
        deliveries_made: 0,
        transmissions: 0,
        all_done: false,
    };

    for round in 0..max_rounds {
        if nodes.iter().all(|n| n.is_done()) {
            run.all_done = true;
            return run;
        }
        run.rounds = round + 1;
        // The bundle is the full addressed list; the radio broadcasts it.
        let bundles: Vec<Vec<(NodeId, A::Msg)>> = nodes.iter_mut().map(|n| n.send(round)).collect();
        for (sender, bundle) in bundles.iter().enumerate() {
            for &(to, _) in bundle {
                assert!(
                    g.are_adjacent(sender, to),
                    "node {sender} sent to non-neighbor {to}"
                );
            }
        }
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); g.len()];

        for t in 0..schedule.frame_len() {
            run.slots += 1;
            let tx: Vec<NodeId> = schedule
                .transmitters_in(t)
                .into_iter()
                .filter(|&v| !bundles[v].is_empty())
                .collect();
            if tx.is_empty() {
                continue;
            }
            run.transmissions += tx.len() as u64;
            for &v in &tx {
                run.deliveries_expected += bundles[v].len() as u64;
            }
            let table = model.resolve(g, &tx);
            for (receiver, sender) in table.iter() {
                // The receiver decodes the whole bundle and keeps its part.
                for &(to, ref msg) in &bundles[sender] {
                    if to == receiver {
                        inboxes[receiver].push((sender, msg.clone()));
                        run.deliveries_made += 1;
                    }
                }
            }
        }

        for v in 0..g.len() {
            inboxes[v].sort_unstable_by_key(|&(s, _)| s);
            nodes[v].receive(round, &inboxes[v]);
        }
    }
    run.all_done = nodes.iter().all(|n| n.is_done());
    run
}

/// Simulates a *general* algorithm with per-neighbor *unicast* slots: each
/// round uses as many TDMA frames as the longest pending list (≤ Δ),
/// sending one small addressed message per frame — the `O(Δ²τ)`-time,
/// `O(s log n)`-bit variant of Corollary 1.
///
/// # Panics
///
/// Panics if `nodes`/`schedule` do not cover exactly the nodes of `g`, or
/// an algorithm sends to a non-neighbor.
pub fn simulate_general_unicast<A: GeneralAlgorithm>(
    g: &UnitDiskGraph,
    cfg: &SinrConfig,
    schedule: &TdmaSchedule,
    nodes: &mut [A],
    max_rounds: usize,
) -> SrsRun {
    assert_eq!(nodes.len(), g.len(), "one algorithm instance per node");
    assert_eq!(schedule.len(), g.len(), "schedule must cover every node");
    let model = SinrModel::new(*cfg);
    let mut run = SrsRun {
        rounds: 0,
        slots: 0,
        deliveries_expected: 0,
        deliveries_made: 0,
        transmissions: 0,
        all_done: false,
    };

    for round in 0..max_rounds {
        if nodes.iter().all(|n| n.is_done()) {
            run.all_done = true;
            return run;
        }
        run.rounds = round + 1;
        let mut pending: Vec<Vec<(NodeId, A::Msg)>> =
            nodes.iter_mut().map(|n| n.send(round)).collect();
        for (sender, list) in pending.iter().enumerate() {
            for &(to, _) in list {
                assert!(
                    g.are_adjacent(sender, to),
                    "node {sender} sent to non-neighbor {to}"
                );
            }
            run.deliveries_expected += list.len() as u64;
        }
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); g.len()];

        // Sub-rounds: one frame per pending message index.
        while pending.iter().any(|l| !l.is_empty()) {
            for t in 0..schedule.frame_len() {
                run.slots += 1;
                let tx: Vec<NodeId> = schedule
                    .transmitters_in(t)
                    .into_iter()
                    .filter(|&v| !pending[v].is_empty())
                    .collect();
                if tx.is_empty() {
                    continue;
                }
                run.transmissions += tx.len() as u64;
                let table = model.resolve(g, &tx);
                for &v in &tx {
                    // The head-of-line message is transmitted and consumed
                    // whether or not it got through (senders have no
                    // feedback channel; Theorem-3 schedules never lose it).
                    let (to, msg) = pending[v].remove(0);
                    if table.heard_by(to).iter().any(|&(_, s)| s == v) {
                        inboxes[to].push((v, msg));
                        run.deliveries_made += 1;
                    }
                }
            }
        }

        for v in 0..g.len() {
            inboxes[v].sort_unstable_by_key(|&(s, _)| s);
            nodes[v].receive(round, &inboxes[v]);
        }
    }
    run.all_done = nodes.iter().all(|n| n.is_done());
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mp::{run_uniform_ideal, BfsLayers, EchoDegrees, Flooding, MaxIdElection};
    use sinr_coloring::distance_d::color_at_distance;
    use sinr_geometry::{placement, Point};
    use sinr_radiosim::WakeupSchedule;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    /// A Theorem-3 compliant schedule for the given points.
    fn guarded_schedule(pts: &[Point]) -> TdmaSchedule {
        let factor = crate::guard::theorem3_distance_factor(&cfg());
        let result = color_at_distance(pts, &cfg(), factor, 11, WakeupSchedule::Synchronous);
        TdmaSchedule::from_colors(result.colors().expect("coloring completed"))
    }

    #[test]
    fn srs_flooding_is_faithful_and_matches_ideal_rounds() {
        let pts = placement::uniform(24, 3.0, 3.0, 8);
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        if !g.is_connected() {
            // The fixed seed gives a connected instance; guard anyway.
            return;
        }
        let schedule = guarded_schedule(&pts);

        let mut ideal: Vec<Flooding> = (0..g.len()).map(|v| Flooding::new(v == 0)).collect();
        let ideal_run = run_uniform_ideal(&g, &mut ideal, 100);

        let mut sinr: Vec<Flooding> = (0..g.len()).map(|v| Flooding::new(v == 0)).collect();
        let run = simulate_uniform(&g, &cfg(), &schedule, &mut sinr, 100);

        assert!(run.all_done);
        assert!(run.is_faithful(), "{run:?}");
        assert_eq!(run.rounds, ideal_run.rounds, "lock-step round count");
        assert_eq!(run.slots, run.rounds as u64 * schedule.frame_len() as u64);
    }

    #[test]
    fn srs_bfs_matches_graph_distances() {
        let pts = placement::uniform(20, 2.5, 2.5, 4);
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        let schedule = guarded_schedule(&pts);
        let mut nodes: Vec<BfsLayers> = (0..g.len()).map(|v| BfsLayers::new(v == 0)).collect();
        let run = simulate_uniform(&g, &cfg(), &schedule, &mut nodes, 100);
        assert!(run.is_faithful());
        let expect = g.bfs_distances(0);
        for v in 0..g.len() {
            if expect[v].is_some() {
                assert_eq!(nodes[v].distance(), expect[v], "node {v}");
            }
        }
    }

    #[test]
    fn srs_election_agrees_on_max_id() {
        let pts: Vec<Point> = (0..12).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect();
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        let schedule = guarded_schedule(&pts);
        let diam = g.diameter().unwrap();
        let mut nodes: Vec<MaxIdElection> = (0..g.len())
            .map(|v| MaxIdElection::new(v, diam + 1))
            .collect();
        let run = simulate_uniform(&g, &cfg(), &schedule, &mut nodes, diam + 2);
        assert!(run.all_done);
        assert!(run.is_faithful());
        assert!(nodes.iter().all(|n| n.leader() == g.len() - 1));
    }

    #[test]
    fn srs_general_bundled_delivers_addressed_messages() {
        let pts = placement::uniform(16, 2.0, 2.0, 9);
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        let schedule = guarded_schedule(&pts);
        let mut nodes: Vec<EchoDegrees> = (0..g.len())
            .map(|v| EchoDegrees::new(v, g.neighbors(v).to_vec()))
            .collect();
        let run = simulate_general_bundled(&g, &cfg(), &schedule, &mut nodes, 10);
        assert!(run.all_done, "{run:?}");
        assert!(run.is_faithful());
        for (v, node) in nodes.iter().enumerate() {
            let expect: Vec<(NodeId, usize)> =
                g.neighbors(v).iter().map(|&u| (u, g.degree(u))).collect();
            assert_eq!(node.received, expect, "node {v}");
        }
    }

    #[test]
    fn srs_general_unicast_matches_bundled_results() {
        let pts = placement::uniform(16, 2.0, 2.0, 9);
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        let schedule = guarded_schedule(&pts);
        let mk = || -> Vec<EchoDegrees> {
            (0..g.len())
                .map(|v| EchoDegrees::new(v, g.neighbors(v).to_vec()))
                .collect()
        };
        let mut a = mk();
        let run_a = simulate_general_bundled(&g, &cfg(), &schedule, &mut a, 10);
        let mut b = mk();
        let run_b = simulate_general_unicast(&g, &cfg(), &schedule, &mut b, 10);
        assert!(run_a.is_faithful() && run_b.is_faithful());
        for v in 0..g.len() {
            assert_eq!(a[v].received, b[v].received, "node {v}");
        }
        // Unicast pays more slots: one frame per pending message index
        // (Δ frames per round) vs one frame per round.
        assert!(run_b.slots >= run_a.slots);
    }

    #[test]
    fn srs_with_improper_schedule_loses_messages() {
        // Everyone in the same slot: massive collisions, flooding stalls
        // far short of full faithfulness.
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 0.5, 0.0)).collect();
        let g = UnitDiskGraph::new(pts, cfg().r_t());
        let schedule = TdmaSchedule::from_colors(&[0; 10]);
        let mut nodes: Vec<Flooding> = (0..10).map(|v| Flooding::new(v == 0)).collect();
        let run = simulate_uniform(&g, &cfg(), &schedule, &mut nodes, 5);
        assert!(!run.is_faithful());
    }

    #[test]
    fn srs_slot_accounting() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 0.8, 0.0)).collect();
        let g = UnitDiskGraph::new(pts.clone(), cfg().r_t());
        let schedule = guarded_schedule(&pts);
        let mut nodes: Vec<Flooding> = (0..6).map(|v| Flooding::new(v == 0)).collect();
        let run = simulate_uniform(&g, &cfg(), &schedule, &mut nodes, 100);
        assert_eq!(run.slots, run.rounds as u64 * schedule.frame_len() as u64);
        // Corollary 1 shape: slots ≤ frame_len × (ideal rounds).
        let mut ideal: Vec<Flooding> = (0..6).map(|v| Flooding::new(v == 0)).collect();
        let ideal_run = run_uniform_ideal(&g, &mut ideal, 100);
        assert!(run.slots <= (schedule.frame_len() * ideal_run.rounds.max(1)) as u64);
    }
}
