//! The Theorem-3 guard distance and helpers for building compliant
//! colorings.

use sinr_model::config::THEOREM3_PROOF_FACTOR;
use sinr_model::SinrConfig;

/// The guard distance `d = (32·(α−1)/(α−2)·β)^{1/α}` of Theorem 3.
///
/// A `(d+1, V)`-coloring scheduled as TDMA is interference-free under
/// SINR. Re-exported from [`SinrConfig::guard_distance`] for discoverability
/// next to the MAC machinery.
pub fn theorem3_d(cfg: &SinrConfig) -> f64 {
    cfg.guard_distance()
}

/// The distance factor `d + 1` a coloring must satisfy for Theorem 3
/// (colors must differ within `(d+1)·R_T`).
pub fn theorem3_distance_factor(cfg: &SinrConfig) -> f64 {
    cfg.guard_distance() + 1.0
}

/// The residual-interference bound from the proof of Theorem 3: with
/// same-color transmitters at pairwise distance `> d·R_T` from the
/// receiver's sender, the interference at any receiver is at most
/// `16·P/((d·R_T)^α)·(α−1)/(α−2) ≤ P/(2βR_T^α)`.
pub fn theorem3_interference_bound(cfg: &SinrConfig, d: f64) -> f64 {
    THEOREM3_PROOF_FACTOR * cfg.power() / (d * cfg.r_t()).powf(cfg.alpha()) * (cfg.alpha() - 1.0)
        / (cfg.alpha() - 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_distance_matches_config() {
        let cfg = SinrConfig::default_unit();
        assert_eq!(theorem3_d(&cfg), cfg.guard_distance());
        assert_eq!(theorem3_distance_factor(&cfg), cfg.guard_distance() + 1.0);
    }

    #[test]
    fn interference_bound_closes_the_proof() {
        // The proof needs Φ ≤ P/(2βR_T^α) at the Theorem-3 d; check the
        // inequality numerically for several physical configurations.
        for &(alpha, beta) in &[(2.5, 1.0), (3.0, 1.5), (4.0, 1.5), (5.0, 3.0)] {
            let cfg = SinrConfig::with_unit_range(alpha, beta, 2.0);
            let d = theorem3_d(&cfg);
            let phi = theorem3_interference_bound(&cfg, d);
            let budget = cfg.power() / (2.0 * cfg.beta() * cfg.r_t().powf(cfg.alpha()));
            assert!(
                phi <= budget * (1.0 + 1e-9),
                "alpha={alpha} beta={beta}: {phi} > {budget}"
            );
        }
    }

    #[test]
    fn guard_distance_grows_with_beta() {
        let lo = SinrConfig::with_unit_range(4.0, 1.0, 2.0);
        let hi = SinrConfig::with_unit_range(4.0, 4.0, 2.0);
        assert!(theorem3_d(&hi) > theorem3_d(&lo));
    }

    #[test]
    fn guard_distance_shrinks_with_alpha() {
        let lo = SinrConfig::with_unit_range(3.0, 1.5, 2.0);
        let hi = SinrConfig::with_unit_range(6.0, 1.5, 2.0);
        assert!(theorem3_d(&hi) < theorem3_d(&lo));
    }
}
