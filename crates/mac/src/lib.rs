#![warn(missing_docs)]

//! TDMA MAC scheduling and message-passing simulation on top of SINR
//! colorings — §V of the paper.
//!
//! Two results are implemented here:
//!
//! * **Theorem 3.** For `d = (32·(α−1)/(α−2)·β)^{1/α}`, a
//!   `(d+1, V)`-coloring used as a TDMA schedule (each color ↔ one slot of
//!   a frame of `V` slots) is *interference-free under SINR*: in its slot,
//!   every node reaches all of its neighbors. See [`tdma`] and [`guard`].
//! * **Corollary 1.** Any uniform point-to-point message-passing algorithm
//!   with round complexity `τ` can be simulated in the SINR model in
//!   `O(Δ(log n + τ))` slots (general algorithms: one frame per round with
//!   `O(sΔ log n)`-bit bundled messages, or `O(Δ²τ)` slots with small
//!   messages). See [`srs`] and the sample algorithms in [`mp`].
//!
//! # Example
//!
//! ```
//! use sinr_coloring::distance_d::color_at_distance;
//! use sinr_geometry::placement;
//! use sinr_mac::guard::theorem3_distance_factor;
//! use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
//! use sinr_model::SinrConfig;
//! use sinr_radiosim::WakeupSchedule;
//!
//! let cfg = SinrConfig::default_unit();
//! let pts = placement::uniform(20, 5.0, 5.0, 3);
//! // Build a (d+1, V)-coloring as Theorem 3 requires.
//! let d1 = theorem3_distance_factor(&cfg);
//! let result = color_at_distance(&pts, &cfg, d1, 7, WakeupSchedule::Synchronous);
//! let schedule = TdmaSchedule::from_colors(result.colors().expect("colored"));
//! let audit = broadcast_audit(&sinr_geometry::UnitDiskGraph::new(pts, cfg.r_t()), &cfg, &schedule);
//! assert!(audit.is_interference_free()); // Theorem 3 holds
//! ```

pub mod aloha;
pub mod guard;
pub mod localcast;
pub mod mp;
pub mod srs;
pub mod tdma;

pub use srs::{simulate_general_bundled, simulate_general_unicast, simulate_uniform, SrsRun};
pub use tdma::{broadcast_audit, BroadcastAudit, TdmaSchedule};
