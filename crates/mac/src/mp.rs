//! Point-to-point message-passing algorithms (the substrate Corollary 1
//! simulates) and an ideal-channel reference executor.
//!
//! §V: "In the classical point-to-point message passing model neighboring
//! nodes are connected by a private channel … any algorithm proceeds into
//! rounds. In each round, a node can receive messages, do some local
//! computations and send messages." Two classes: *uniform* (same message to
//! all neighbors — broadcast-based) and *general* (a different message per
//! neighbor).

use sinr_geometry::{NodeId, UnitDiskGraph};

/// A round-based *uniform* algorithm: one broadcast message per round.
pub trait UniformAlgorithm {
    /// The message type.
    type Msg: Clone;

    /// The message to broadcast to all neighbors this round (`None` =
    /// silent round).
    fn send(&mut self, round: usize) -> Option<Self::Msg>;

    /// Delivers every message received this round as `(sender, message)`.
    fn receive(&mut self, round: usize, msgs: &[(NodeId, Self::Msg)]);

    /// Whether this node's output is fixed.
    fn is_done(&self) -> bool;
}

/// A round-based *general* algorithm: one message per neighbor per round.
pub trait GeneralAlgorithm {
    /// The message type.
    type Msg: Clone;

    /// The `(neighbor, message)` pairs to send this round.
    fn send(&mut self, round: usize) -> Vec<(NodeId, Self::Msg)>;

    /// Delivers every message addressed to this node this round.
    fn receive(&mut self, round: usize, msgs: &[(NodeId, Self::Msg)]);

    /// Whether this node's output is fixed.
    fn is_done(&self) -> bool;
}

/// Outcome of an ideal-channel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealRun {
    /// Rounds executed.
    pub rounds: usize,
    /// Whether every node reported done.
    pub all_done: bool,
}

/// Executes a uniform algorithm over perfect point-to-point channels —
/// the reference the SINR simulation must reproduce, and the round-count
/// floor `τ` of Corollary 1.
pub fn run_uniform_ideal<A: UniformAlgorithm>(
    g: &UnitDiskGraph,
    nodes: &mut [A],
    max_rounds: usize,
) -> IdealRun {
    assert_eq!(nodes.len(), g.len(), "one algorithm instance per node");
    for round in 0..max_rounds {
        if nodes.iter().all(|n| n.is_done()) {
            return IdealRun {
                rounds: round,
                all_done: true,
            };
        }
        let outgoing: Vec<Option<A::Msg>> = nodes.iter_mut().map(|n| n.send(round)).collect();
        for (v, node) in nodes.iter_mut().enumerate() {
            let inbox: Vec<(NodeId, A::Msg)> = g
                .neighbors(v)
                .iter()
                .filter_map(|&u| outgoing[u].clone().map(|m| (u, m)))
                .collect();
            node.receive(round, &inbox);
        }
    }
    IdealRun {
        rounds: max_rounds,
        all_done: nodes.iter().all(|n| n.is_done()),
    }
}

/// Executes a general algorithm over perfect point-to-point channels.
pub fn run_general_ideal<A: GeneralAlgorithm>(
    g: &UnitDiskGraph,
    nodes: &mut [A],
    max_rounds: usize,
) -> IdealRun {
    assert_eq!(nodes.len(), g.len(), "one algorithm instance per node");
    for round in 0..max_rounds {
        if nodes.iter().all(|n| n.is_done()) {
            return IdealRun {
                rounds: round,
                all_done: true,
            };
        }
        let outgoing: Vec<Vec<(NodeId, A::Msg)>> =
            nodes.iter_mut().map(|n| n.send(round)).collect();
        let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); g.len()];
        for (sender, out) in outgoing.into_iter().enumerate() {
            for (to, msg) in out {
                assert!(
                    g.are_adjacent(sender, to),
                    "node {sender} sent to non-neighbor {to}"
                );
                inboxes[to].push((sender, msg));
            }
        }
        for v in 0..g.len() {
            nodes[v].receive(round, &inboxes[v]);
        }
    }
    IdealRun {
        rounds: max_rounds,
        all_done: nodes.iter().all(|n| n.is_done()),
    }
}

/// Flooding: the source broadcasts a token; every node re-broadcasts it
/// once after first hearing it. A node is done once informed.
///
/// Round complexity over ideal channels: eccentricity of the source.
#[derive(Debug, Clone)]
pub struct Flooding {
    informed: bool,
    should_send: bool,
}

impl Flooding {
    /// Creates the per-node instance; `is_source` marks the initiator.
    pub fn new(is_source: bool) -> Self {
        Flooding {
            informed: is_source,
            should_send: is_source,
        }
    }

    /// Whether this node has received (or originated) the token.
    pub fn informed(&self) -> bool {
        self.informed
    }
}

impl UniformAlgorithm for Flooding {
    type Msg = ();

    fn send(&mut self, _round: usize) -> Option<()> {
        if self.should_send {
            self.should_send = false;
            Some(())
        } else {
            None
        }
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, ())]) {
        if !msgs.is_empty() && !self.informed {
            self.informed = true;
            self.should_send = true;
        }
    }

    fn is_done(&self) -> bool {
        self.informed
    }
}

/// BFS layering: like flooding but messages carry the hop distance; each
/// node records its distance from the root.
#[derive(Debug, Clone)]
pub struct BfsLayers {
    dist: Option<usize>,
    pending: Option<usize>,
}

impl BfsLayers {
    /// Creates the per-node instance; `is_root` marks distance-0.
    pub fn new(is_root: bool) -> Self {
        BfsLayers {
            dist: if is_root { Some(0) } else { None },
            pending: if is_root { Some(0) } else { None },
        }
    }

    /// The computed hop distance from the root, once known.
    pub fn distance(&self) -> Option<usize> {
        self.dist
    }
}

impl UniformAlgorithm for BfsLayers {
    type Msg = usize;

    fn send(&mut self, _round: usize) -> Option<usize> {
        self.pending.take()
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, usize)]) {
        if self.dist.is_none() {
            if let Some(&(_, d)) = msgs.iter().min_by_key(|&&(_, d)| d) {
                self.dist = Some(d + 1);
                self.pending = Some(d + 1);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

/// Max-id leader election by flooding the largest id seen for a fixed
/// number of rounds (≥ diameter). Uniform; every node ends up agreeing on
/// the maximum id in its connected component.
#[derive(Debug, Clone)]
pub struct MaxIdElection {
    best: NodeId,
    rounds_needed: usize,
    rounds_run: usize,
    changed: bool,
}

impl MaxIdElection {
    /// Creates the per-node instance for node `id`, running `rounds_needed`
    /// rounds (use the graph diameter or an upper bound).
    pub fn new(id: NodeId, rounds_needed: usize) -> Self {
        MaxIdElection {
            best: id,
            rounds_needed,
            rounds_run: 0,
            changed: true,
        }
    }

    /// The winner this node currently believes in.
    pub fn leader(&self) -> NodeId {
        self.best
    }
}

impl UniformAlgorithm for MaxIdElection {
    type Msg = NodeId;

    fn send(&mut self, _round: usize) -> Option<NodeId> {
        // Only forward when the belief changed (standard flooding
        // optimization; keeps message counts linear per change).
        if self.changed {
            self.changed = false;
            Some(self.best)
        } else {
            None
        }
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, NodeId)]) {
        for &(_, candidate) in msgs {
            if candidate > self.best {
                self.best = candidate;
                self.changed = true;
            }
        }
        self.rounds_run += 1;
    }

    fn is_done(&self) -> bool {
        self.rounds_run >= self.rounds_needed
    }
}

/// Messages of [`JohanssonColoring`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JohanssonMsg {
    /// The sender tentatively picked this color for the current round.
    Candidate(usize),
    /// The sender has permanently decided this color.
    Decided(usize),
}

/// Johansson's randomized distributed `(Δ+1)`-coloring in the uniform
/// message-passing model: every undecided node picks a random color from
/// its remaining palette each round, broadcasts it, and keeps it if no
/// conflicting neighbor tie-breaks above it.
///
/// A classical `O(log n)`-round algorithm for the *ideal* model — exactly
/// the kind of algorithm Corollary 1 lets one run under SINR unchanged.
/// Experiment E17 compares this (simulated through SRS) against the
/// paper's native SINR coloring.
#[derive(Debug, Clone)]
pub struct JohanssonColoring {
    id: NodeId,
    palette_size: usize,
    rng: sinr_rng::rngs::StdRng,
    forbidden: Vec<bool>,
    decided: Option<usize>,
    announced: bool,
    candidate: Option<usize>,
}

impl JohanssonColoring {
    /// Creates the instance for node `id` with palette `{0, …, degree}`
    /// (its own degree suffices for a greedy-style argument), seeded
    /// deterministically from `seed ^ id`.
    pub fn new(id: NodeId, degree: usize, seed: u64) -> Self {
        use sinr_rng::SeedableRng;
        JohanssonColoring {
            id,
            palette_size: degree + 1,
            rng: sinr_rng::rngs::StdRng::seed_from_u64(seed.rotate_left(17) ^ id as u64),
            forbidden: vec![false; degree + 1],
            decided: None,
            announced: false,
            candidate: None,
        }
    }

    /// The decided color, once fixed.
    pub fn color(&self) -> Option<usize> {
        self.decided
    }

    fn pick_candidate(&mut self) -> usize {
        use sinr_rng::Rng;
        let available: Vec<usize> = (0..self.palette_size)
            .filter(|&c| !self.forbidden[c])
            .collect();
        // Palette has degree+1 colors and at most degree neighbors can
        // forbid one each, so the palette is never exhausted.
        available[self.rng.random_range(0..available.len())]
    }
}

impl UniformAlgorithm for JohanssonColoring {
    type Msg = JohanssonMsg;

    fn send(&mut self, _round: usize) -> Option<JohanssonMsg> {
        match self.decided {
            Some(c) if !self.announced => {
                self.announced = true;
                Some(JohanssonMsg::Decided(c))
            }
            Some(_) => None,
            None => {
                let c = self.pick_candidate();
                self.candidate = Some(c);
                Some(JohanssonMsg::Candidate(c))
            }
        }
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, JohanssonMsg)]) {
        for &(_, msg) in msgs {
            if let JohanssonMsg::Decided(c) = msg {
                if c < self.forbidden.len() {
                    self.forbidden[c] = true;
                }
            }
        }
        if self.decided.is_some() {
            return;
        }
        let Some(mine) = self.candidate.take() else {
            return;
        };
        if self.forbidden[mine] {
            return; // a neighbor decided this color this round
        }
        // Tie-break by id: keep the candidate unless a *lower-id* neighbor
        // proposed the same color.
        let beaten = msgs
            .iter()
            .any(|&(u, m)| matches!(m, JohanssonMsg::Candidate(c) if c == mine && u < self.id));
        if !beaten {
            self.decided = Some(mine);
        }
    }

    fn is_done(&self) -> bool {
        // Done once the color is decided *and* announced to the neighbors.
        self.decided.is_some() && self.announced
    }
}

/// A general-model algorithm: every node sends each neighbor that
/// neighbor's id plus its own degree, and records what it received —
/// exercises per-neighbor addressed delivery.
#[derive(Debug, Clone)]
pub struct EchoDegrees {
    id: NodeId,
    neighbors: Vec<NodeId>,
    degree: usize,
    /// `(neighbor, value)` pairs received.
    pub received: Vec<(NodeId, usize)>,
    sent: bool,
}

impl EchoDegrees {
    /// Creates the per-node instance knowing its neighbor list (as the
    /// message-passing model allows).
    pub fn new(id: NodeId, neighbors: Vec<NodeId>) -> Self {
        let degree = neighbors.len();
        EchoDegrees {
            id,
            neighbors,
            degree,
            received: Vec::new(),
            sent: false,
        }
    }
}

impl GeneralAlgorithm for EchoDegrees {
    type Msg = usize;

    fn send(&mut self, _round: usize) -> Vec<(NodeId, usize)> {
        if self.sent {
            return Vec::new();
        }
        self.sent = true;
        let _ = self.id;
        self.neighbors.iter().map(|&u| (u, self.degree)).collect()
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, usize)]) {
        self.received.extend_from_slice(msgs);
        self.received.sort_unstable();
    }

    fn is_done(&self) -> bool {
        self.sent && self.received.len() == self.degree
    }
}

/// Convergecast (data collection): every node holds a measurement; values
/// are aggregated up a precomputed BFS tree to the root — the canonical
/// sensor-network workload the paper's MAC layer exists to serve.
///
/// A *general-model* algorithm: the aggregate goes to the parent only.
/// Each node waits for all of its tree children, adds its own value, and
/// forwards the sum. Completes in `depth` rounds over reliable channels.
#[derive(Debug, Clone)]
pub struct Convergecast {
    parent: Option<NodeId>,
    pending_children: usize,
    accumulated: u64,
    sent: bool,
}

impl Convergecast {
    /// Creates the per-node instance.
    ///
    /// `parent` is `None` for the root; `children` is the number of tree
    /// children whose reports must arrive before forwarding; `value` is
    /// this node's own measurement.
    pub fn new(parent: Option<NodeId>, children: usize, value: u64) -> Self {
        Convergecast {
            parent,
            pending_children: children,
            accumulated: value,
            sent: false,
        }
    }

    /// Builds instances for a whole graph from BFS parents of `root`,
    /// with `values[v]` as node `v`'s measurement.
    ///
    /// Nodes unreachable from the root become isolated roots of their own
    /// (they aggregate only themselves).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != g.len()` or `root` is out of range.
    pub fn build_tree(
        g: &sinr_geometry::UnitDiskGraph,
        root: NodeId,
        values: &[u64],
    ) -> Vec<Convergecast> {
        assert_eq!(values.len(), g.len(), "one value per node");
        let dist = g.bfs_distances(root);
        // Parent = the lowest-id neighbor one hop closer to the root.
        let parent_of = |v: NodeId| -> Option<NodeId> {
            let d = dist[v]?;
            if d == 0 {
                return None;
            }
            g.neighbors(v)
                .iter()
                .copied()
                .find(|&u| dist[u] == Some(d - 1))
        };
        let parents: Vec<Option<NodeId>> = (0..g.len()).map(parent_of).collect();
        let mut children = vec![0usize; g.len()];
        for p in parents.iter().flatten() {
            children[*p] += 1;
        }
        (0..g.len())
            .map(|v| Convergecast::new(parents[v], children[v], values[v]))
            .collect()
    }

    /// The aggregate this node has collected so far (at the root after
    /// completion: the total over its component).
    pub fn aggregate(&self) -> u64 {
        self.accumulated
    }

    /// Whether this node is a root (has no parent).
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

impl GeneralAlgorithm for Convergecast {
    type Msg = u64;

    fn send(&mut self, _round: usize) -> Vec<(NodeId, u64)> {
        if self.sent || self.pending_children > 0 {
            return Vec::new();
        }
        match self.parent {
            Some(p) => {
                self.sent = true;
                vec![(p, self.accumulated)]
            }
            None => {
                self.sent = true; // root: nothing to forward
                Vec::new()
            }
        }
    }

    fn receive(&mut self, _round: usize, msgs: &[(NodeId, u64)]) {
        for &(_, value) in msgs {
            self.accumulated += value;
            self.pending_children = self.pending_children.saturating_sub(1);
        }
    }

    fn is_done(&self) -> bool {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::{placement, Point};

    fn line_graph(n: usize) -> UnitDiskGraph {
        UnitDiskGraph::new(
            (0..n).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect(),
            1.0,
        )
    }

    #[test]
    fn flooding_informs_line_in_eccentricity_rounds() {
        let g = line_graph(10);
        let mut nodes: Vec<Flooding> = (0..10).map(|v| Flooding::new(v == 0)).collect();
        let run = run_uniform_ideal(&g, &mut nodes, 100);
        assert!(run.all_done);
        assert_eq!(run.rounds, 9); // 9 hops from node 0 to node 9
        assert!(nodes.iter().all(Flooding::informed));
    }

    #[test]
    fn flooding_never_reaches_disconnected_component() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)], 1.0);
        let mut nodes = vec![Flooding::new(true), Flooding::new(false)];
        let run = run_uniform_ideal(&g, &mut nodes, 50);
        assert!(!run.all_done);
        assert!(!nodes[1].informed());
    }

    #[test]
    fn bfs_layers_match_graph_distances() {
        let g = UnitDiskGraph::new(placement::uniform(40, 3.0, 3.0, 5), 1.0);
        let mut nodes: Vec<BfsLayers> = (0..40).map(|v| BfsLayers::new(v == 0)).collect();
        let _ = run_uniform_ideal(&g, &mut nodes, 200);
        let expect = g.bfs_distances(0);
        for v in 0..40 {
            assert_eq!(nodes[v].distance(), expect[v], "node {v}");
        }
    }

    #[test]
    fn max_id_election_agrees_on_maximum() {
        let g = line_graph(8);
        let diam = g.diameter().unwrap();
        let mut nodes: Vec<MaxIdElection> =
            (0..8).map(|v| MaxIdElection::new(v, diam + 1)).collect();
        let run = run_uniform_ideal(&g, &mut nodes, diam + 2);
        assert!(run.all_done);
        assert!(nodes.iter().all(|n| n.leader() == 7));
    }

    #[test]
    fn johansson_colors_properly_on_ideal_channel() {
        for seed in 0..4 {
            let g = UnitDiskGraph::new(placement::uniform(50, 3.5, 3.5, seed), 1.0);
            let mut nodes: Vec<JohanssonColoring> = (0..g.len())
                .map(|v| JohanssonColoring::new(v, g.degree(v), seed))
                .collect();
            let run = run_uniform_ideal(&g, &mut nodes, 10_000);
            assert!(run.all_done, "seed {seed}");
            for (u, v) in g.edges() {
                assert_ne!(
                    nodes[u].color(),
                    nodes[v].color(),
                    "seed {seed}: edge ({u},{v}) monochromatic"
                );
            }
            // Each node used its own palette {0..deg}.
            for (v, node) in nodes.iter().enumerate() {
                assert!(node.color().unwrap() <= g.degree(v));
            }
        }
    }

    #[test]
    fn johansson_converges_quickly() {
        let g = UnitDiskGraph::new(placement::uniform(80, 4.0, 4.0, 11), 1.0);
        let mut nodes: Vec<JohanssonColoring> = (0..g.len())
            .map(|v| JohanssonColoring::new(v, g.degree(v), 3))
            .collect();
        let run = run_uniform_ideal(&g, &mut nodes, 200);
        assert!(run.all_done);
        // O(log n) expected rounds; generous cap.
        assert!(run.rounds < 60, "took {} rounds", run.rounds);
    }

    #[test]
    fn johansson_isolated_node_takes_color_zero() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0)], 1.0);
        let mut nodes = vec![JohanssonColoring::new(0, 0, 0)];
        let run = run_uniform_ideal(&g, &mut nodes, 10);
        assert!(run.all_done);
        assert_eq!(nodes[0].color(), Some(0));
    }

    #[test]
    fn johansson_adjacent_tie_breaks_to_lower_id() {
        // Both nodes have degree 1 -> palette {0, 1}. Force the conflict
        // case by iterating until they pick the same candidate; the lower
        // id must win that round.
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0);
        let mut nodes = vec![
            JohanssonColoring::new(0, 1, 7),
            JohanssonColoring::new(1, 1, 7),
        ];
        let run = run_uniform_ideal(&g, &mut nodes, 100);
        assert!(run.all_done);
        assert_ne!(nodes[0].color(), nodes[1].color());
    }

    #[test]
    fn echo_degrees_collects_neighbor_degrees() {
        let g = line_graph(4);
        let mut nodes: Vec<EchoDegrees> = (0..4)
            .map(|v| EchoDegrees::new(v, g.neighbors(v).to_vec()))
            .collect();
        let run = run_general_ideal(&g, &mut nodes, 10);
        assert!(run.all_done);
        // Node 1 hears from 0 (deg 1) and 2 (deg 2).
        assert_eq!(nodes[1].received, vec![(0, 1), (2, 2)]);
        // End nodes hear one message.
        assert_eq!(nodes[0].received, vec![(1, 2)]);
    }

    #[test]
    fn convergecast_sums_the_whole_component() {
        let g = UnitDiskGraph::new(placement::uniform(40, 3.0, 3.0, 6), 1.0);
        let values: Vec<u64> = (0..40).map(|v| v as u64 + 1).collect();
        let mut nodes = Convergecast::build_tree(&g, 0, &values);
        let run = run_general_ideal(&g, &mut nodes, 200);
        assert!(run.all_done);
        // The root's aggregate equals the sum over its BFS component.
        let dist = g.bfs_distances(0);
        let expect: u64 = (0..40)
            .filter(|&v| dist[v].is_some())
            .map(|v| values[v])
            .sum();
        assert_eq!(nodes[0].aggregate(), expect);
        assert!(nodes[0].is_root());
    }

    #[test]
    fn convergecast_completes_in_depth_rounds() {
        let g = line_graph(8); // depth 7 from node 0
        let values = vec![1u64; 8];
        let mut nodes = Convergecast::build_tree(&g, 0, &values);
        let run = run_general_ideal(&g, &mut nodes, 100);
        assert!(run.all_done);
        assert_eq!(nodes[0].aggregate(), 8);
        // Leaf sends round 0; each hop adds one round; done-check happens
        // at the start of the next round.
        assert!(run.rounds <= 9, "took {} rounds", run.rounds);
    }

    #[test]
    fn convergecast_unreachable_nodes_form_their_own_roots() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(9.0, 0.0),
            ],
            1.0,
        );
        let mut nodes = Convergecast::build_tree(&g, 0, &[10, 20, 30]);
        let run = run_general_ideal(&g, &mut nodes, 20);
        assert!(run.all_done);
        assert_eq!(nodes[0].aggregate(), 30);
        assert!(nodes[2].is_root());
        assert_eq!(nodes[2].aggregate(), 30);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn general_executor_rejects_non_neighbor_sends() {
        struct Bad;
        impl GeneralAlgorithm for Bad {
            type Msg = ();
            fn send(&mut self, _r: usize) -> Vec<(NodeId, ())> {
                vec![(1, ())] // nodes are not adjacent
            }
            fn receive(&mut self, _r: usize, _m: &[(NodeId, ())]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)], 1.0);
        let mut nodes = vec![Bad, Bad];
        let _ = run_general_ideal(&g, &mut nodes, 1);
    }
}
