//! Unstructured local broadcasting (the paper's reference \[21],
//! Goussevskaia–Moscibroda–Wattenhofer style): every node repeats its
//! token with probability `c/Δ` for `O(Δ log n)` slots, with no
//! coordination structure at all.
//!
//! This is the *zero-setup* alternative to the coloring-based MAC: it
//! needs no leaders, no colors, no schedule — but every broadcast round
//! costs `Θ(Δ log n)` slots instead of the TDMA frame's `Θ(Δ)`, forever.
//! The receiving-side dual of [`crate::aloha`]'s sender-side oracle.

use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::InterferenceModel;
use sinr_radiosim::{Action, NodeCtx, Protocol, Simulator, SlotRng, WakeupSchedule};
use std::collections::BTreeSet;

/// The per-node automaton: repeat the own token with fixed probability
/// for a fixed number of slots, collecting every token heard.
#[derive(Debug, Clone)]
pub struct LocalBroadcastNode {
    probability: f64,
    duration: u64,
    heard: BTreeSet<NodeId>,
}

impl LocalBroadcastNode {
    /// Creates the automaton: transmit w.p. `probability` for `duration`
    /// slots.
    pub fn new(probability: f64, duration: u64) -> Self {
        LocalBroadcastNode {
            probability,
            duration,
            heard: BTreeSet::new(),
        }
    }

    /// The senders heard so far.
    pub fn heard(&self) -> &BTreeSet<NodeId> {
        &self.heard
    }
}

impl Protocol for LocalBroadcastNode {
    type Message = NodeId;

    fn begin_slot<R: SlotRng + ?Sized>(&mut self, ctx: &NodeCtx, rng: &mut R) -> Action<NodeId> {
        if ctx.local_slot < self.duration && rng.chance(self.probability) {
            Action::Transmit(ctx.id)
        } else {
            Action::Listen
        }
    }

    fn end_slot(&mut self, _ctx: &NodeCtx, received: &[(NodeId, NodeId)]) {
        for &(sender, _) in received {
            self.heard.insert(sender);
        }
    }

    fn is_done(&self) -> bool {
        false // runs for the fixed duration; completion is external
    }
}

/// Result of a local-broadcast window.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalBroadcastReport {
    /// Slots executed (the window length).
    pub slots: u64,
    /// Per-node fraction of neighbors whose token was received.
    pub coverage: Vec<f64>,
    /// Total transmissions spent.
    pub transmissions: u64,
}

impl LocalBroadcastReport {
    /// Whether every node heard every neighbor.
    pub fn is_complete(&self) -> bool {
        self.coverage.iter().all(|&c| c >= 1.0)
    }

    /// Mean coverage over nodes with at least one neighbor.
    pub fn mean_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            1.0
        } else {
            self.coverage.iter().sum::<f64>() / self.coverage.len() as f64
        }
    }
}

/// Runs one local-broadcast window of `duration` slots with per-slot
/// transmit probability `probability` under the given interference model.
///
/// The GMW guarantee shape: `probability = c/Δ` and
/// `duration = Ω(Δ ln n)` yields complete coverage w.h.p.
///
/// # Panics
///
/// Panics if `probability` is not in `(0, 1]`.
pub fn run_local_broadcast<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    probability: f64,
    duration: u64,
    seed: u64,
) -> LocalBroadcastReport {
    assert!(
        probability > 0.0 && probability <= 1.0,
        "transmit probability must be in (0, 1]"
    );
    let mut sim = Simulator::new(
        graph.clone(),
        model,
        WakeupSchedule::Synchronous,
        seed,
        |_| LocalBroadcastNode::new(probability, duration),
    );
    let outcome = sim.run(duration);
    let coverage = (0..graph.len())
        .map(|v| {
            let deg = graph.degree(v);
            if deg == 0 {
                1.0
            } else {
                sim.node(v).heard().len() as f64 / deg as f64
            }
        })
        .collect();
    LocalBroadcastReport {
        slots: outcome.slots,
        coverage,
        transmissions: sim.stats().transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::{placement, Point};
    use sinr_model::{GraphModel, SinrConfig, SinrModel};

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    fn instance(n: usize) -> UnitDiskGraph {
        let pts = placement::uniform_with_expected_degree(n, cfg().r_t(), 10.0, 77);
        UnitDiskGraph::new(pts, cfg().r_t())
    }

    #[test]
    fn long_window_reaches_full_coverage_under_sinr() {
        let g = instance(50);
        let delta = g.max_degree().max(1) as f64;
        let duration = (12.0 * delta * (g.len() as f64).ln()) as u64;
        let report = run_local_broadcast(&g, SinrModel::new(cfg()), 0.5 / delta, duration, 3);
        assert!(
            report.is_complete(),
            "coverage = {:.3}",
            report.mean_coverage()
        );
        assert_eq!(report.slots, duration);
    }

    #[test]
    fn short_window_leaves_gaps() {
        let g = instance(50);
        let delta = g.max_degree().max(1) as f64;
        let report = run_local_broadcast(&g, SinrModel::new(cfg()), 0.5 / delta, 5, 3);
        assert!(!report.is_complete());
        assert!(report.mean_coverage() < 1.0);
        assert!(report.mean_coverage() > 0.0);
    }

    #[test]
    fn coverage_grows_with_duration() {
        let g = instance(40);
        let delta = g.max_degree().max(1) as f64;
        let p = 0.5 / delta;
        let short = run_local_broadcast(&g, GraphModel::new(), p, 20, 1);
        let long = run_local_broadcast(&g, GraphModel::new(), p, 400, 1);
        assert!(long.mean_coverage() >= short.mean_coverage());
    }

    #[test]
    fn isolated_node_is_trivially_covered() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0)], cfg().r_t());
        let report = run_local_broadcast(&g, SinrModel::new(cfg()), 0.5, 10, 0);
        assert!(report.is_complete());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = instance(25);
        let a = run_local_broadcast(&g, SinrModel::new(cfg()), 0.05, 200, 9);
        let b = run_local_broadcast(&g, SinrModel::new(cfg()), 0.05, 200, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let g = instance(5);
        let _ = run_local_broadcast(&g, GraphModel::new(), 0.0, 10, 0);
    }
}
