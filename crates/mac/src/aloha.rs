//! Slotted-ALOHA baseline MAC.
//!
//! The natural contender to a coloring-based TDMA schedule is contention:
//! every node transmits with a fixed probability each slot and hopes. This
//! module measures how long slotted ALOHA needs until every node has
//! achieved one *successful local broadcast* (reached all neighbors in a
//! single slot) under the SINR model — the job a Theorem-3 TDMA frame
//! finishes in exactly `V` slots, deterministically. Experiment E13
//! compares the two.

use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::{InterferenceModel, SinrConfig, SinrModel};
use sinr_rng::rngs::StdRng;
use sinr_rng::{Rng, SeedableRng};

/// Result of an ALOHA broadcast race.
#[derive(Debug, Clone, PartialEq)]
pub struct AlohaRun {
    /// Slots simulated.
    pub slots: u64,
    /// Nodes that completed a full local broadcast at least once.
    pub completed: usize,
    /// Slot at which each node first broadcast successfully (`None` if it
    /// never did within the budget).
    pub first_success: Vec<Option<u64>>,
    /// Total transmissions spent.
    pub transmissions: u64,
}

impl AlohaRun {
    /// Whether every node with neighbors succeeded at least once.
    pub fn all_completed(&self) -> bool {
        self.first_success.iter().all(|s| s.is_some())
    }

    /// The worst first-success slot, if all completed.
    pub fn makespan(&self) -> Option<u64> {
        self.first_success
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }
}

/// Runs slotted ALOHA with per-slot transmit probability `p` until every
/// node has achieved one successful local broadcast or `max_slots` elapse.
///
/// Nodes with no neighbors are counted as trivially successful at slot 0.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn aloha_until_broadcast(
    g: &UnitDiskGraph,
    cfg: &SinrConfig,
    p: f64,
    max_slots: u64,
    seed: u64,
) -> AlohaRun {
    assert!(p > 0.0 && p <= 1.0, "ALOHA probability must be in (0, 1]");
    let model = SinrModel::new(*cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut first_success: Vec<Option<u64>> = (0..g.len())
        .map(|v| if g.degree(v) == 0 { Some(0) } else { None })
        .collect();
    let mut transmissions = 0u64;
    let mut slots = 0u64;

    while slots < max_slots && first_success.iter().any(|s| s.is_none()) {
        let tx: Vec<NodeId> = (0..g.len()).filter(|_| rng.random::<f64>() < p).collect();
        transmissions += tx.len() as u64;
        if !tx.is_empty() {
            let table = model.resolve(g, &tx);
            for &v in &tx {
                if first_success[v].is_none() && table.is_successful_broadcast(g, v) {
                    first_success[v] = Some(slots);
                }
            }
        }
        slots += 1;
    }
    let completed = first_success.iter().filter(|s| s.is_some()).count();
    AlohaRun {
        slots,
        completed,
        first_success,
        transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::{placement, Point};

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn sparse_pair_succeeds_quickly() {
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)],
            cfg().r_t(),
        );
        let run = aloha_until_broadcast(&g, &cfg(), 0.3, 10_000, 1);
        assert!(run.all_completed());
        assert!(run.makespan().unwrap() < 200);
    }

    #[test]
    fn isolated_nodes_are_trivially_done() {
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(9.0, 0.0)],
            cfg().r_t(),
        );
        let run = aloha_until_broadcast(&g, &cfg(), 0.5, 10, 0);
        assert!(run.all_completed());
        assert_eq!(run.makespan(), Some(0));
        assert_eq!(run.slots, 0, "no slot needed when all are isolated");
    }

    #[test]
    fn budget_caps_hopeless_probability() {
        // p = 1: everyone always transmits; no one ever receives.
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)],
            cfg().r_t(),
        );
        let run = aloha_until_broadcast(&g, &cfg(), 1.0, 50, 0);
        assert!(!run.all_completed());
        assert_eq!(run.slots, 50);
        assert_eq!(run.completed, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = UnitDiskGraph::new(placement::uniform(25, 3.0, 3.0, 3), cfg().r_t());
        let a = aloha_until_broadcast(&g, &cfg(), 0.1, 5_000, 7);
        let b = aloha_until_broadcast(&g, &cfg(), 0.1, 5_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn moderate_density_eventually_completes() {
        let g = UnitDiskGraph::new(placement::uniform(20, 3.0, 3.0, 5), cfg().r_t());
        let delta = g.max_degree().max(1);
        let run = aloha_until_broadcast(&g, &cfg(), 1.0 / (2.0 * delta as f64), 200_000, 2);
        assert!(run.all_completed(), "{:?}", run.completed);
    }
}
