//! TDMA frames from colorings, and the SINR broadcast audit.

use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::{InterferenceModel, SinrConfig, SinrModel};
use std::collections::BTreeMap;

/// A TDMA schedule: each node owns one slot of a repeating frame,
/// derived from its color ("associating each color `c` with a time slot
/// `t_c` where nodes colored `c` can transmit", §V).
///
/// Colors are compacted to a dense `0..frame_len` range (the MW palette is
/// sparse); compaction preserves the "same slot ⇒ same color" property that
/// Theorem 3's proof needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmaSchedule {
    slot_of: Vec<usize>,
    frame_len: usize,
}

impl TdmaSchedule {
    /// Builds the schedule from a color assignment (`colors[v]` = color of
    /// node `v`).
    ///
    /// # Panics
    ///
    /// Panics if `colors` is empty.
    pub fn from_colors(colors: &[usize]) -> Self {
        assert!(!colors.is_empty(), "cannot schedule zero nodes");
        let mut distinct: Vec<usize> = colors.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let index: BTreeMap<usize, usize> =
            distinct.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let slot_of = colors.iter().map(|c| index[c]).collect();
        TdmaSchedule {
            slot_of,
            frame_len: distinct.len(),
        }
    }

    /// Number of slots per frame (`V`, the number of distinct colors).
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether the schedule covers zero nodes (never true for constructed
    /// schedules).
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// The frame slot assigned to node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn slot_of(&self, v: NodeId) -> usize {
        self.slot_of[v]
    }

    /// All nodes transmitting in frame slot `t`, ascending.
    pub fn transmitters_in(&self, t: usize) -> Vec<NodeId> {
        (0..self.slot_of.len())
            .filter(|&v| self.slot_of[v] == t)
            .collect()
    }
}

/// Result of driving one full TDMA frame through the SINR model with
/// *every* node transmitting in its slot.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastAudit {
    /// Sender→neighbor links attempted (`Σ_v deg(v)`).
    pub links_attempted: u64,
    /// Links on which the neighbor decoded the sender.
    pub links_delivered: u64,
    /// Nodes whose broadcast reached *all* neighbors (the paper's
    /// "successful transmission").
    pub full_broadcasts: usize,
    /// Total nodes with at least one neighbor.
    pub broadcasters: usize,
}

impl BroadcastAudit {
    /// Fraction of links delivered (1.0 when nothing was attempted).
    pub fn link_success_rate(&self) -> f64 {
        if self.links_attempted == 0 {
            1.0
        } else {
            self.links_delivered as f64 / self.links_attempted as f64
        }
    }

    /// Whether every node's broadcast reached every neighbor — the
    /// Theorem-3 guarantee.
    pub fn is_interference_free(&self) -> bool {
        self.links_delivered == self.links_attempted
    }

    /// Exports the audit as Theorem-3 probe metrics (`probe.thm3.*`): the
    /// audited link count, failed links as violations, and the link
    /// success rate — same violations-as-metrics discipline as the MW
    /// probes.
    pub fn export_into(&self, rec: &mut dyn sinr_obs::Recorder) {
        use sinr_obs::keys;
        rec.counter_add(keys::PROBE_THM3_LINKS, self.links_attempted);
        rec.counter_add(
            keys::PROBE_THM3_VIOLATIONS,
            self.links_attempted - self.links_delivered,
        );
        rec.gauge_set(keys::PROBE_THM3_LINK_SUCCESS_RATE, self.link_success_rate());
    }
}

/// Runs one TDMA frame under the SINR model: in slot `t` all nodes with
/// that slot transmit simultaneously; counts which neighbors decode them.
///
/// Theorem 3: if the schedule came from a `(d+1, V)`-coloring with
/// `d = (32·(α−1)/(α−2)·β)^{1/α}`, the audit reports 100% delivery.
///
/// # Panics
///
/// Panics if the schedule does not cover exactly the nodes of `g`, or the
/// graph radius does not match `cfg.r_t()`.
pub fn broadcast_audit(
    g: &UnitDiskGraph,
    cfg: &SinrConfig,
    schedule: &TdmaSchedule,
) -> BroadcastAudit {
    assert_eq!(schedule.len(), g.len(), "schedule must cover every node");
    let model = SinrModel::new(*cfg);
    let mut links_attempted = 0u64;
    let mut links_delivered = 0u64;
    let mut full_broadcasts = 0usize;
    let mut broadcasters = 0usize;

    for t in 0..schedule.frame_len() {
        let tx = schedule.transmitters_in(t);
        if tx.is_empty() {
            continue;
        }
        let table = model.resolve(g, &tx);
        for &v in &tx {
            let degree = g.degree(v) as u64;
            if degree == 0 {
                continue;
            }
            broadcasters += 1;
            links_attempted += degree;
            let delivered = g
                .neighbors(v)
                .iter()
                .filter(|&&u| table.heard_by(u).iter().any(|&(_, s)| s == v))
                .count() as u64;
            links_delivered += delivered;
            if delivered == degree {
                full_broadcasts += 1;
            }
        }
    }
    BroadcastAudit {
        links_attempted,
        links_delivered,
        full_broadcasts,
        broadcasters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::{placement, Point};

    #[test]
    fn compaction_preserves_classes() {
        let s = TdmaSchedule::from_colors(&[0, 52, 0, 104, 52]);
        assert_eq!(s.frame_len(), 3);
        assert_eq!(s.slot_of(0), s.slot_of(2));
        assert_eq!(s.slot_of(1), s.slot_of(4));
        assert_ne!(s.slot_of(0), s.slot_of(3));
        assert_eq!(s.transmitters_in(0), vec![0, 2]);
        assert_eq!(s.transmitters_in(1), vec![1, 4]);
        assert_eq!(s.transmitters_in(2), vec![3]);
    }

    #[test]
    fn compaction_keeps_color_order() {
        let s = TdmaSchedule::from_colors(&[7, 3, 9]);
        assert_eq!(s.slot_of(1), 0); // color 3 -> slot 0
        assert_eq!(s.slot_of(0), 1);
        assert_eq!(s.slot_of(2), 2);
    }

    #[test]
    fn lone_pair_schedule_is_clean() {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], cfg.r_t());
        let s = TdmaSchedule::from_colors(&[0, 1]);
        let audit = broadcast_audit(&g, &cfg, &s);
        assert!(audit.is_interference_free());
        assert_eq!(audit.links_attempted, 2);
        assert_eq!(audit.full_broadcasts, 2);
    }

    #[test]
    fn same_slot_neighbors_collide() {
        let cfg = SinrConfig::default_unit();
        // Receiver node 1 sits between two same-slot transmitters: the
        // strongest-signal tie gives SINR ~1 < beta, nothing decodes.
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(1.8, 0.0),
            ],
            cfg.r_t(),
        );
        // Improper "coloring": ends share a slot.
        let s = TdmaSchedule::from_colors(&[0, 1, 0]);
        let audit = broadcast_audit(&g, &cfg, &s);
        assert!(!audit.is_interference_free());
        assert!(audit.link_success_rate() < 1.0);
    }

    #[test]
    fn distance2_coloring_is_not_enough_under_sinr() {
        // The §V observation: "under the SINR additive constraints such a
        // [distance-2] coloring does not allow us to avoid interferences."
        // Construction: a sender with a receiver near the edge of its
        // range, plus six same-color transmitters on a ring of radius 2.05
        // around the sender — pairwise distances all exceed 2·R_T, so the
        // coloring is distance-2 proper, yet the additive interference at
        // the receiver breaks the link.
        let cfg = SinrConfig::default_unit(); // R_T = 1
        let mut pts = vec![Point::new(0.0, 0.0), Point::new(0.98, 0.0)];
        for k in 0..6 {
            let theta = (30.0 + 60.0 * k as f64).to_radians();
            pts.push(Point::new(2.05 * theta.cos(), 2.05 * theta.sin()));
        }
        // Color 0 = sender + ring (all pairwise > 2·R_T apart); receiver 1.
        let colors = vec![0, 1, 0, 0, 0, 0, 0, 0];
        assert!(sinr_coloring::verify::is_distance_coloring(
            &pts,
            &colors,
            2.0 * cfg.r_t()
        ));
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        assert!(g.are_adjacent(0, 1), "receiver must be in range of sender");
        let audit = broadcast_audit(&g, &cfg, &TdmaSchedule::from_colors(&colors));
        assert!(
            !audit.is_interference_free(),
            "distance-2 TDMA unexpectedly survived SINR: {audit:?}"
        );
        // Sanity: in the *graph-based* model the ring is invisible to the
        // receiver (not neighbors), so the same slot assignment would work —
        // this is precisely the gap between the two models.
        let table = sinr_model::GraphModel::new().resolve(&g, &[0, 2, 3, 4, 5, 6, 7]);
        assert_eq!(table.unique_sender(1), Some(0));
    }

    #[test]
    fn audit_counts_links_exactly() {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(placement::uniform(25, 4.0, 4.0, 2), cfg.r_t());
        // Rainbow schedule: every node alone in its slot -> no interference.
        let colors: Vec<usize> = (0..25).collect();
        let audit = broadcast_audit(&g, &cfg, &TdmaSchedule::from_colors(&colors));
        let total_links: u64 = (0..25).map(|v| g.degree(v) as u64).sum();
        assert_eq!(audit.links_attempted, total_links);
        assert!(audit.is_interference_free());
        assert_eq!(
            audit.broadcasters,
            (0..25).filter(|&v| g.degree(v) > 0).count()
        );
    }

    #[test]
    fn audit_exports_thm3_probe_metrics() {
        let audit = BroadcastAudit {
            links_attempted: 10,
            links_delivered: 8,
            full_broadcasts: 3,
            broadcasters: 5,
        };
        let mut rec = sinr_obs::FullRecorder::new();
        audit.export_into(&mut rec);
        let reg = rec.registry();
        assert_eq!(reg.counter("probe.thm3.links"), Some(10));
        assert_eq!(reg.counter("probe.thm3.violations"), Some(2));
        let rate = reg.gauge("probe.thm3.link_success_rate").unwrap();
        assert!((rate - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn mismatched_schedule_panics() {
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(vec![Point::ORIGIN], cfg.r_t());
        let s = TdmaSchedule::from_colors(&[0, 1]);
        let _ = broadcast_audit(&g, &cfg, &s);
    }
}
