//! Property-based tests for TDMA scheduling and the MAC substrate.

use proptest::prelude::*;
use sinr_geometry::{Point, UnitDiskGraph};
use sinr_mac::mp::{run_uniform_ideal, Flooding, JohanssonColoring};
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_model::SinrConfig;

fn arb_colors(max_n: usize, max_color: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..max_color, 1..max_n)
}

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..4.0f64, 0.0..4.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..max_n,
    )
}

proptest! {
    #[test]
    fn schedule_partitions_nodes(colors in arb_colors(40, 10)) {
        let s = TdmaSchedule::from_colors(&colors);
        // Every node appears in exactly one slot's transmitter list.
        let mut seen = vec![0usize; colors.len()];
        for t in 0..s.frame_len() {
            for v in s.transmitters_in(t) {
                prop_assert_eq!(s.slot_of(v), t);
                seen[v] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&k| k == 1));
        // Frame length equals the number of distinct colors.
        let mut distinct = colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(s.frame_len(), distinct.len());
    }

    #[test]
    fn compaction_preserves_color_equality(colors in arb_colors(40, 200)) {
        let s = TdmaSchedule::from_colors(&colors);
        for u in 0..colors.len() {
            for v in 0..colors.len() {
                prop_assert_eq!(
                    colors[u] == colors[v],
                    s.slot_of(u) == s.slot_of(v),
                    "slot equality must mirror color equality"
                );
            }
        }
    }

    #[test]
    fn compaction_preserves_color_order(colors in arb_colors(30, 100)) {
        let s = TdmaSchedule::from_colors(&colors);
        for u in 0..colors.len() {
            for v in 0..colors.len() {
                if colors[u] < colors[v] {
                    prop_assert!(s.slot_of(u) < s.slot_of(v));
                }
            }
        }
    }

    #[test]
    fn rainbow_schedule_is_always_interference_free(pts in arb_points(25)) {
        // One node per slot: a lone transmitter always reaches all
        // neighbors under SINR (no simultaneous interference).
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let colors: Vec<usize> = (0..g.len()).collect();
        let audit = broadcast_audit(&g, &cfg, &TdmaSchedule::from_colors(&colors));
        prop_assert!(audit.is_interference_free(), "{:?}", audit);
    }

    #[test]
    fn flooding_informs_exactly_the_source_component(pts in arb_points(30)) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let mut nodes: Vec<Flooding> = (0..g.len()).map(|v| Flooding::new(v == 0)).collect();
        let _ = run_uniform_ideal(&g, &mut nodes, 10 * g.len().max(1));
        let reach = g.bfs_distances(0);
        for v in 0..g.len() {
            prop_assert_eq!(nodes[v].informed(), reach[v].is_some(), "node {}", v);
        }
    }

    #[test]
    fn johansson_is_proper_on_random_instances(
        pts in arb_points(30),
        seed in 0u64..100,
    ) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let mut nodes: Vec<JohanssonColoring> = (0..g.len())
            .map(|v| JohanssonColoring::new(v, g.degree(v), seed))
            .collect();
        let run = run_uniform_ideal(&g, &mut nodes, 50_000);
        prop_assert!(run.all_done);
        for (u, v) in g.edges() {
            prop_assert_ne!(nodes[u].color(), nodes[v].color());
        }
        for (v, node) in nodes.iter().enumerate() {
            prop_assert!(node.color().unwrap() <= g.degree(v));
        }
    }
}
