//! Property-based tests for the interference models.

use proptest::prelude::*;
use sinr_geometry::{NodeId, Point, UnitDiskGraph};
use sinr_model::interference::{decodes, received_power, total_received_power};
use sinr_model::{FastSinrModel, GraphModel, IdealModel, InterferenceModel, SinrConfig, SinrModel};

fn arb_points(max_n: usize, extent: f64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..extent, 0.0..extent).prop_map(|(x, y)| Point::new(x, y)),
        1..max_n,
    )
}

/// A placement plus a subset of transmitting node ids.
fn arb_scenario() -> impl Strategy<Value = (Vec<Point>, Vec<NodeId>)> {
    arb_points(30, 5.0).prop_flat_map(|pts| {
        let n = pts.len();
        (Just(pts), prop::collection::btree_set(0..n, 0..=n.min(10)))
            .prop_map(|(pts, set)| (pts, set.into_iter().collect()))
    })
}

/// A denser scenario whose transmit sets routinely exceed the fast
/// resolver's small-slot cutoff, over a range of placement densities.
fn arb_dense_scenario() -> impl Strategy<Value = (Vec<Point>, Vec<NodeId>)> {
    (2.0..10.0f64)
        .prop_flat_map(|extent| arb_points(80, extent))
        .prop_flat_map(|pts| {
            let n = pts.len();
            (Just(pts), prop::collection::btree_set(0..n, 0..=n))
                .prop_map(|(pts, set)| (pts, set.into_iter().collect()))
        })
}

proptest! {
    #[test]
    fn received_power_is_monotone_decreasing(
        d1 in 0.01..50.0f64,
        d2 in 0.01..50.0f64,
        alpha in 2.1..6.0f64,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(received_power(1.0, lo, alpha) >= received_power(1.0, hi, alpha));
    }

    #[test]
    fn total_power_is_additive(pts in arb_points(20, 5.0)) {
        let cfg = SinrConfig::default_unit();
        let at = Point::new(-1.0, -1.0);
        let total = total_received_power(&cfg, at, &pts);
        let sum: f64 = pts
            .iter()
            .map(|&p| total_received_power(&cfg, at, &[p]))
            .sum();
        prop_assert!((total - sum).abs() <= 1e-9 * sum.max(1.0));
    }

    #[test]
    fn adding_interferers_never_enables_decoding(
        pts in arb_points(15, 4.0),
        extra in (0.0..4.0f64, 0.0..4.0f64).prop_map(|(x, y)| Point::new(x, y)),
    ) {
        let cfg = SinrConfig::default_unit();
        let rx = Point::new(2.0, 2.0);
        let tx = Point::new(2.5, 2.0);
        let without = decodes(&cfg, rx, tx, &pts);
        let mut more = pts.clone();
        more.push(extra);
        let with = decodes(&cfg, rx, tx, &more);
        // with == true implies without == true.
        prop_assert!(!with || without);
    }

    #[test]
    fn models_agree_on_lone_transmitter((pts, _) in arb_scenario(), t_raw in 0usize..30) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let t = t_raw % g.len();
        let sinr = SinrModel::new(SinrConfig::default_unit()).resolve(&g, &[t]);
        let graph = GraphModel::new().resolve(&g, &[t]);
        let ideal = IdealModel::new().resolve(&g, &[t]);
        // With one transmitter there is no interference: all three models
        // deliver to exactly the neighbor set.
        let expect: Vec<(NodeId, NodeId)> =
            g.neighbors(t).iter().map(|&u| (u, t)).collect();
        let got_s: Vec<_> = sinr.iter().collect();
        let got_g: Vec<_> = graph.iter().collect();
        let got_i: Vec<_> = ideal.iter().collect();
        prop_assert_eq!(&got_s, &expect);
        prop_assert_eq!(&got_g, &expect);
        prop_assert_eq!(&got_i, &expect);
    }

    #[test]
    fn sinr_receptions_subset_of_ideal((pts, tx) in arb_scenario()) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let sinr = SinrModel::new(SinrConfig::default_unit()).resolve(&g, &tx);
        let ideal = IdealModel::new().resolve(&g, &tx);
        let ideal_pairs: std::collections::BTreeSet<_> = ideal.iter().collect();
        for pair in sinr.iter() {
            prop_assert!(ideal_pairs.contains(&pair));
        }
    }

    #[test]
    fn graph_receptions_subset_of_ideal((pts, tx) in arb_scenario()) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let graph = GraphModel::new().resolve(&g, &tx);
        let ideal = IdealModel::new().resolve(&g, &tx);
        let ideal_pairs: std::collections::BTreeSet<_> = ideal.iter().collect();
        for pair in graph.iter() {
            prop_assert!(ideal_pairs.contains(&pair));
        }
    }

    #[test]
    fn no_model_delivers_to_transmitters((pts, tx) in arb_scenario()) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let txset: std::collections::BTreeSet<_> = tx.iter().copied().collect();
        for model in [
            Box::new(SinrModel::new(SinrConfig::default_unit())) as Box<dyn InterferenceModel>,
            Box::new(GraphModel::new()),
            Box::new(IdealModel::new()),
        ] {
            for (r, s) in model.resolve(&g, &tx).iter() {
                prop_assert!(!txset.contains(&r), "{} delivered to transmitter", model.name());
                prop_assert!(txset.contains(&s));
                prop_assert!(g.are_adjacent(r, s));
            }
        }
    }

    #[test]
    fn fast_resolver_is_bit_identical_to_naive(
        (pts, tx) in arb_dense_scenario(),
        alpha_idx in 0usize..4,
        reach_raw in 0usize..5,
    ) {
        // α sweep covers the powi fast paths (3, 4, 6) and the powf
        // fallback (2.5); reach sweeps the near/far split from the tightest
        // window to one far larger than the default.
        let alpha = [2.5f64, 3.0, 4.0, 6.0][alpha_idx];
        let cfg = SinrConfig::with_unit_range(alpha, 1.5, 2.0);
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let reach = 1 + reach_raw as i64;
        let naive = SinrModel::new(cfg).resolve(&g, &tx);
        let fast_model = FastSinrModel::with_near_reach(cfg, reach);
        let fast = fast_model.resolve(&g, &tx);
        prop_assert_eq!(&fast, &naive, "tables must be bit-identical");
        // Resolving the same slot again (scratch reuse) must not drift.
        prop_assert_eq!(&fast_model.resolve(&g, &tx), &naive);
    }

    #[test]
    fn parallel_resolution_matches_sequential((pts, tx) in arb_dense_scenario()) {
        // Any thread count yields the sequential tables — for the naive
        // resolver, the grid-tiled one, and the size-gated auto variant.
        let cfg = SinrConfig::default_unit();
        let g = UnitDiskGraph::new(pts, cfg.r_t());
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let baseline = SinrModel::new(cfg).resolve(&g, &tx);
        for threads in [2usize, 4] {
            let pool = sinr_pool::Pool::new(threads);
            let naive = SinrModel::with_pool(cfg, pool.clone()).resolve(&g, &tx);
            prop_assert_eq!(&naive, &baseline, "naive, {} threads", threads);
            let fast = FastSinrModel::with_pool(cfg, pool.clone());
            prop_assert_eq!(&fast.resolve(&g, &tx), &baseline, "fast, {} threads", threads);
            let mut auto = FastSinrModel::auto(cfg, &g);
            auto.set_pool(&pool);
            prop_assert_eq!(&auto.resolve(&g, &tx), &baseline, "auto, {} threads", threads);
        }
    }

    #[test]
    fn sinr_delivers_at_most_one_per_receiver((pts, tx) in arb_scenario()) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let tx: Vec<NodeId> = tx.into_iter().filter(|&t| t < g.len()).collect();
        let table = SinrModel::new(SinrConfig::default_unit()).resolve(&g, &tx);
        for u in 0..g.len() {
            prop_assert!(table.heard_by(u).len() <= 1);
        }
    }
}
