//! A fast **exact** SINR resolver: incrementally maintained grid-tiled
//! near/far interference bounds with a certified fast path and a
//! bit-identical exact fallback.
//!
//! [`FastSinrModel`] resolves the same reception tables as
//! [`SinrModel`](crate::SinrModel) — provably, and checked by differential
//! proptests — while doing far less work per slot:
//!
//! 1. The model binds a dense [`CellGrid`] (cell side `R_T`) to the graph's
//!    point set **once**, and from then on maintains the transmitter set
//!    *incrementally*: each slot applies only the start/stop **delta**
//!    against the previous slot — either handed in by the driver via
//!    [`InterferenceModel::resolve_delta`] (the slot engine computes the
//!    delta for free during its action phase) or self-diffed against the
//!    previous transmitter list. Membership updates are `O(1)` swap
//!    insert/removals into packed per-cell entry lists; there is no
//!    per-slot clear-and-refill and no hashing.
//! 2. Near/far classification is shared per *cell* instead of recomputed
//!    per candidate: each occupied transmitter cell stamps itself into the
//!    near lists of the candidate cells inside its `(2·reach+1)²` window
//!    (pure dense-index arithmetic). A candidate receiver then walks its
//!    cell's near list, streaming each near cell's packed
//!    `(x, y, id)` entries for the exact near sum; everything not in the
//!    list is *far* and only counted. The far tail is bounded by
//!    `|far| · P / (reach·R_T)^α` — a Lemma-3-style conservative ring
//!    bound: every far transmitter sits strictly beyond `reach · R_T`, so
//!    its true contribution is strictly below the per-node cap (see
//!    `Distributed Node Coloring in the SINR Model`, Lemma 3, and the
//!    uniform-power tail bounds of Avin et al., arXiv:0906.2311).
//! 3. A sender is decoded on the fast path only when the *pessimistic*
//!    SINR (far tail fully charged) already clears `β` **and** no other
//!    sender clears `β` even *optimistically* (far tail zero). A slot
//!    verdict of "nothing decodable" requires every sender to fail
//!    optimistically. The bounds carry a relative slack of [`SUM_SLACK`]
//!    so they bracket the naive resolver's floating-point sum (not just
//!    the real-valued one) regardless of summation order — which also
//!    makes the verdicts independent of the grid's *entry order*, so the
//!    incremental membership history cannot influence results. Whenever
//!    the bounds disagree, the resolver falls back to the full
//!    interference sum **in the same iteration order as the naive
//!    resolver**, so the produced [`ReceptionTable`] is bit-identical in
//!    every case — the fast path is a pure strength reduction, never an
//!    approximation.
//!
//! The persistent state is defensively certified: an externally supplied
//! delta is validated element-by-element against the grid's own membership
//! (plus a full `O(k)` containment sweep), and any inconsistency triggers
//! a certified full rebuild of the batch state — a wrong delta can cost
//! time, never correctness. A periodic epoch rebuild
//! (every [`EPOCH_REBUILD_SLOTS`] slots) re-canonicalizes the packed
//! entry lists and compacts the occupied-cell index, bounding any drift
//! in layout quality over arbitrarily long runs.
//!
//! All scratch state (transmitter bitmap, candidate marks, the transmitter
//! grid, the stamped near lists) lives behind a `RefCell` and is reused
//! across slots, so steady-state resolution performs no allocation beyond
//! the returned table.

use crate::config::SinrConfig;
use crate::interference::{received_power, received_power_d2, sinr_from_total};
use crate::model::{InterferenceModel, ReceptionTable, TxDelta, PAR_CANDIDATE_CUTOFF};
use sinr_geometry::{CellGrid, NodeId, UnitDiskGraph};
use sinr_pool::{PerThread, Pool};
use std::cell::RefCell;

/// Default near-window half-width, in grid cells (cell side = `R_T`).
///
/// Transmitters beyond `4·R_T` contribute at most `P/(4·R_T)^α` each —
/// under the default profile (`α = 4`, `R_T = 1`, `N = 1/(2β)`) that is
/// `< 1.2%` of the ambient noise per transmitter, so the optimistic and
/// pessimistic SINR bounds almost always agree and the exact fallback is
/// rare (the `ResolverStats` hit rate makes this observable).
pub const DEFAULT_NEAR_REACH_CELLS: i64 = 4;

/// Below this many transmitters the naive `O(k)` sum is cheaper than
/// stamping the slot's candidate cells, so small slots skip the fast path
/// (grid membership is still maintained so later slots stay incremental).
pub const SMALL_SLOT_EXACT_CUTOFF: usize = 12;

/// Calibration constant of [`FastSinrModel::auto`]: across MW runs the
/// steady-state slot carries about `0.18 · n / mean_degree` simultaneous
/// transmitters (measured 31.3 at `n = 2048`, mean degree 12.2 — factor
/// 0.186 — and 231.5 at `n = 16384`, factor 0.17; the protocol's
/// transmission probability scales as `1/degree`, so the fraction falls
/// with density). `auto` enables the grid only when that estimate clears
/// [`SMALL_SLOT_EXACT_CUTOFF`], i.e. when typical slots would actually
/// take the fast path.
pub const AUTO_TX_DENSITY_FACTOR: f64 = 0.18;

/// Slots between defensive full rebuilds of the persistent transmitter
/// grid. A rebuild re-inserts the current set in `transmitting` order,
/// re-canonicalizing packed entry order and compacting the occupied-cell
/// index; correctness never depends on it (verdicts are order-independent
/// by the [`SUM_SLACK`] bracket), it only bounds layout drift.
pub const EPOCH_REBUILD_SLOTS: u64 = 1024;

/// Relative slack applied to the interference bounds so they bracket the
/// naive resolver's *floating-point* sum, not just the real-valued one:
/// the near sum is accumulated in near-list/entry order (and from squared
/// distances) while the fallback sums in `transmitting` order, so the two
/// can differ by accumulated rounding of roughly `k·ε` relative
/// (`ε = 2⁻⁵²`; below `10⁻⁹` for any realistic `k ≤ 10⁶`). Only
/// candidates whose SINR sits within the slack of `β` lose the fast path.
pub const SUM_SLACK: f64 = 1e-9;

/// Cumulative counters exposed by resolvers that track their fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Candidate receivers decided purely from the certified bounds.
    pub fast_path_hits: u64,
    /// Candidate receivers that needed the full exact interference sum
    /// (bound disagreement, or a small slot below the grid cutoff).
    pub exact_fallbacks: u64,
    /// Near-list entries examined during interference summation (one per
    /// near transmitter cell per fast-path candidate).
    pub cells_scanned: u64,
    /// Transmitters incrementally inserted into the persistent grid
    /// (nodes that started transmitting relative to the previous slot).
    pub delta_started: u64,
    /// Transmitters incrementally removed from the persistent grid
    /// (nodes that stopped transmitting relative to the previous slot).
    pub delta_stopped: u64,
    /// Scheduled epoch rebuilds of the persistent grid (see
    /// [`EPOCH_REBUILD_SLOTS`]).
    pub epoch_rebuilds: u64,
    /// Certified full rebuilds forced by an externally supplied delta
    /// that failed validation against the grid's own membership. Always
    /// zero when the driver's deltas are consistent.
    pub full_rebuilds: u64,
}

impl ResolverStats {
    /// Fraction of candidates decided on the fast path (`None` before any
    /// candidate was resolved).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.fast_path_hits + self.exact_fallbacks;
        if total == 0 {
            None
        } else {
            Some(self.fast_path_hits as f64 / total as f64)
        }
    }

    /// Adds another stats snapshot into this one (for aggregating across
    /// runs or seeds).
    pub fn merge(&mut self, other: &ResolverStats) {
        self.fast_path_hits += other.fast_path_hits;
        self.exact_fallbacks += other.exact_fallbacks;
        self.cells_scanned += other.cells_scanned;
        self.delta_started += other.delta_started;
        self.delta_stopped += other.delta_stopped;
        self.epoch_rebuilds += other.epoch_rebuilds;
        self.full_rebuilds += other.full_rebuilds;
    }

    /// Exports the counters (and the derived hit rate, when defined) into
    /// a recorder under the canonical `resolver.*` keys.
    pub fn export_into(&self, rec: &mut dyn sinr_obs::Recorder) {
        use sinr_obs::keys;
        rec.counter_add(keys::RESOLVER_FAST_PATH_HITS, self.fast_path_hits);
        rec.counter_add(keys::RESOLVER_EXACT_FALLBACKS, self.exact_fallbacks);
        rec.counter_add(keys::RESOLVER_CELLS_SCANNED, self.cells_scanned);
        rec.counter_add(keys::RESOLVER_DELTA_STARTED, self.delta_started);
        rec.counter_add(keys::RESOLVER_DELTA_STOPPED, self.delta_stopped);
        rec.counter_add(keys::RESOLVER_DELTA_EPOCH_REBUILDS, self.epoch_rebuilds);
        rec.counter_add(keys::RESOLVER_DELTA_FULL_REBUILDS, self.full_rebuilds);
        if let Some(rate) = self.hit_rate() {
            rec.gauge_set(keys::RESOLVER_HIT_RATE, rate);
        }
    }
}

/// "Not stamped this slot" marker in `GridState::cand_cell_idx`.
const NOT_STAMPED: u32 = u32::MAX;

/// One near cell of a candidate cell: the transmitter cell's dense index
/// plus whether it is close enough (Chebyshev ≤ 1) to hold decodable
/// senders for receivers in the candidate cell.
#[derive(Debug, Clone, Copy)]
struct NearRef {
    cell: u32,
    sender: bool,
}

/// The persistent incremental state: the bound transmitter grid, the
/// previous slot's transmitter list (for self-diffing), the epoch clock,
/// and the per-slot candidate-cell stamping scratch.
#[derive(Debug, Clone)]
struct GridState {
    /// Dense grid bound to the current graph's point set; `None` before
    /// the first bind or when binding was refused (see `bind_failed`).
    grid: Option<CellGrid>,
    /// The bound point set was too scattered for a dense grid
    /// ([`CellGrid::try_bind`] returned `None`); resolve exactly until
    /// the graph changes.
    bind_failed: bool,
    /// Bind fingerprint: the positions slice pointer, its length, and the
    /// graph radius. [`UnitDiskGraph`]s are immutable, so a matching
    /// fingerprint (re-verified with [`CellGrid::binds`]'s endpoint spot
    /// check each slot) identifies the bound graph.
    bound_ptr: usize,
    bound_len: usize,
    bound_radius: f64,
    /// The transmitter list of the previously resolved slot, for
    /// self-diffing when the driver supplies no delta.
    prev_tx: Vec<NodeId>,
    /// Slots resolved since the last full (re)build of the grid.
    slots_since_epoch: u64,
    /// Per-cell stamp: index into `near_refs` when the cell holds
    /// candidates this slot, [`NOT_STAMPED`] otherwise.
    cand_cell_idx: Vec<u32>,
    /// Candidate cells stamped this slot (indices into `cand_cell_idx`,
    /// unstamped at the start of the next slot).
    stamped: Vec<u32>,
    /// Near list per stamped candidate cell; pooled and reused.
    near_refs: Vec<Vec<NearRef>>,
}

impl GridState {
    fn empty() -> Self {
        GridState {
            grid: None,
            bind_failed: false,
            bound_ptr: 0,
            bound_len: 0,
            bound_radius: 0.0,
            prev_tx: Vec::new(),
            slots_since_epoch: 0,
            cand_cell_idx: Vec::new(),
            stamped: Vec::new(),
            near_refs: Vec::new(),
        }
    }
}

/// Reusable per-slot working state (interior mutability keeps
/// [`InterferenceModel::resolve`]'s `&self` signature).
#[derive(Debug, Clone)]
struct Scratch {
    /// Persistent incremental grid state (see [`GridState`]).
    gs: GridState,
    /// Dense transmitter bitmap, unmarked after every slot.
    is_tx: Vec<bool>,
    /// Dense candidate-receiver marks, unmarked after every slot.
    candidate_mark: Vec<bool>,
    /// Candidate receivers in naive discovery order.
    candidates: Vec<NodeId>,
    /// One scratch slot per pool thread; slot 0 doubles as the
    /// sequential path's buffers.
    thread: PerThread<ChunkScratch>,
    stats: ResolverStats,
}

/// Per-thread (per-chunk) working state for one slot.
#[derive(Debug, Clone, Default)]
struct ChunkScratch {
    /// Potential senders of the current candidate (reused).
    sender_buf: Vec<NodeId>,
    /// Receptions decoded by this chunk, in candidate order.
    pairs: Vec<(NodeId, NodeId)>,
    fast_hits: u64,
    fallbacks: u64,
    cells: u64,
}

impl ChunkScratch {
    /// Resets the per-slot outputs (buffers keep their capacity).
    fn begin_slot(&mut self) {
        self.pairs.clear();
        self.fast_hits = 0;
        self.fallbacks = 0;
        self.cells = 0;
    }
}

/// Immutable per-slot context shared by every chunk: the graph, the
/// transmitter set, the stamped near lists, and the precomputed bounds.
struct SlotCtx<'a> {
    cfg: &'a SinrConfig,
    g: &'a UnitDiskGraph,
    transmitting: &'a [NodeId],
    /// `Some` iff this slot takes the grid fast path.
    grid: Option<&'a CellGrid>,
    cand_cell_idx: &'a [u32],
    near_refs: &'a [Vec<NearRef>],
    far_cap: f64,
    adjacency_r2: f64,
    power: f64,
    alpha: f64,
    beta: f64,
    k: usize,
}

/// Resolves one candidate receiver into `cs` (pairs + counters).
///
/// Pure in `(ctx, u)`: the same candidate produces the same reception and
/// counter increments on any thread, which together with static chunking
/// and chunk-order merging keeps parallel runs bit-identical.
// lint:hot — resolver inner loop, runs once per candidate per slot
fn resolve_candidate(ctx: &SlotCtx<'_>, u: NodeId, cs: &mut ChunkScratch) {
    let positions = ctx.g.positions();
    let pu = positions[u];
    let mut resolved = false;
    if let Some(grid) = ctx.grid {
        // The near/far split was already computed per *cell* during
        // stamping: this candidate's cell carries the list of occupied
        // transmitter cells within `reach`. Stream each near cell's
        // packed entries for the exact near sum; everything else is far
        // and only counted. Senders must lie within R_T = one cell side,
        // so they live in cells flagged `sender` (Chebyshev ≤ 1) and are
        // collected for the SINR evaluation below.
        let refs = &ctx.near_refs[ctx.cand_cell_idx[grid.cell_of(u) as usize] as usize];
        let mut near_sum = 0.0f64;
        let mut near_count = 0usize;
        cs.sender_buf.clear();
        for r in refs {
            let entries = grid.entries(r.cell);
            for e in entries {
                let dx = pu.x - e.x;
                let dy = pu.y - e.y;
                near_sum += received_power_d2(ctx.power, dx * dx + dy * dy, ctx.alpha);
                if r.sender {
                    cs.sender_buf.push(e.id);
                }
            }
            near_count += entries.len();
        }
        cs.cells += refs.len() as u64;
        let far_tail = (ctx.k - near_count) as f64 * ctx.far_cap;
        // [total_low, total_high] brackets the naive resolver's
        // floating-point interference sum; SUM_SLACK absorbs the
        // different summation order (see its docs).
        let total_low = near_sum * (1.0 - SUM_SLACK);
        let total_high = (near_sum + far_tail) * (1.0 + SUM_SLACK);

        // `certified` clears β even pessimistically; `possible` counts
        // senders clearing β optimistically.
        let mut certified: Option<NodeId> = None;
        let mut possible = 0u64;
        for &v in &cs.sender_buf {
            if positions[v].distance_squared(pu) <= ctx.adjacency_r2 {
                let optimistic = sinr_from_total(ctx.cfg, pu, positions[v], total_low);
                if optimistic >= ctx.beta {
                    possible += 1;
                    let pessimistic = sinr_from_total(ctx.cfg, pu, positions[v], total_high);
                    if pessimistic >= ctx.beta && certified.is_none() {
                        certified = Some(v);
                    }
                }
            }
        }
        if let Some(v) = certified {
            if possible == 1 {
                // v decodes even with the tail fully charged and no
                // other sender can reach β: the naive resolver
                // necessarily picks exactly v.
                cs.pairs.push((u, v));
                resolved = true;
            }
        } else if possible == 0 {
            // No sender reaches β even with zero far tail.
            resolved = true;
        }
        if resolved {
            cs.fast_hits += 1;
        }
    }
    if !resolved {
        // Exact fallback — bitwise identical to `SinrModel`: same
        // summation order over `transmitting`, same power/SINR
        // functions, same best-sender tie-breaking.
        cs.fallbacks += 1;
        let total: f64 = ctx
            .transmitting
            .iter()
            .map(|&w| received_power(ctx.power, pu.distance(positions[w]), ctx.alpha))
            .sum();
        let mut best: Option<(f64, NodeId)> = None;
        for &v in ctx.transmitting {
            // UDG adjacency is by construction exactly `dist² ≤ R_T²`
            // (same squared-distance expression the graph builder uses),
            // so test the geometry directly — the positions are already
            // streaming through cache from the sum above — instead of
            // binary-searching the adjacency list per transmitter.
            if v != u && positions[v].distance_squared(pu) <= ctx.adjacency_r2 {
                let s = sinr_from_total(ctx.cfg, pu, positions[v], total);
                if s >= ctx.beta && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, v));
                }
            }
        }
        if let Some((_, v)) = best {
            cs.pairs.push((u, v));
        }
    }
}

/// Stamps this slot's candidate cells and builds their near lists: every
/// occupied transmitter cell registers itself (with its sender flag) in
/// each stamped candidate cell inside its `(2·reach+1)²` window.
///
/// `near_refs` must hold at least as many pooled lists as there are
/// distinct candidate cells (the caller grows the pool beforehand, so
/// this stays allocation-free apart from amortized list growth).
// lint:hot — cell-stamping pass, runs once per grid slot
fn stamp_candidate_cells(
    grid: &CellGrid,
    candidates: &[NodeId],
    reach: i64,
    cand_cell_idx: &mut [u32],
    stamped: &mut Vec<u32>,
    near_refs: &mut [Vec<NearRef>],
) {
    for &u in candidates {
        let c = grid.cell_of(u);
        if cand_cell_idx[c as usize] == NOT_STAMPED {
            let idx = stamped.len() as u32;
            cand_cell_idx[c as usize] = idx;
            stamped.push(c);
            near_refs[idx as usize].clear();
        }
    }
    for &c in grid.occupied() {
        if grid.entries(c).is_empty() {
            continue; // stale occupied entry
        }
        grid.for_each_window_cell(c, reach, |w, cheb| {
            let idx = cand_cell_idx[w as usize];
            if idx != NOT_STAMPED {
                near_refs[idx as usize].push(NearRef {
                    cell: c,
                    sender: cheb <= 1,
                });
            }
        });
    }
}

/// The grid-tiled exact SINR resolver (drop-in replacement for
/// [`SinrModel`](crate::SinrModel): identical tables, much faster slots).
///
/// # Example
///
/// ```
/// use sinr_geometry::{Point, UnitDiskGraph};
/// use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig, SinrModel};
///
/// let g = UnitDiskGraph::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(2.5, 0.0)],
///     1.0,
/// );
/// let cfg = SinrConfig::default_unit();
/// let fast = FastSinrModel::new(cfg);
/// let naive = SinrModel::new(cfg);
/// assert_eq!(fast.resolve(&g, &[0, 2]), naive.resolve(&g, &[0, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct FastSinrModel {
    cfg: SinrConfig,
    near_reach: i64,
    grid_enabled: bool,
    epoch_interval: u64,
    pool: Pool,
    scratch: RefCell<Scratch>,
}

impl FastSinrModel {
    /// Creates the resolver with [`DEFAULT_NEAR_REACH_CELLS`].
    pub fn new(cfg: SinrConfig) -> Self {
        Self::with_near_reach(cfg, DEFAULT_NEAR_REACH_CELLS)
    }

    /// Creates the resolver with an explicit near-window half-width (in
    /// cells of side `R_T`). Larger windows tighten the far-tail bound
    /// (fewer exact fallbacks) at the cost of summing more transmitters
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `near_reach_cells < 1` (the window must at least cover
    /// the `R_T` disk so every decodable sender is scanned).
    pub fn with_near_reach(cfg: SinrConfig, near_reach_cells: i64) -> Self {
        assert!(
            near_reach_cells >= 1,
            "near window must cover at least the R_T disk"
        );
        FastSinrModel {
            cfg,
            near_reach: near_reach_cells,
            grid_enabled: true,
            epoch_interval: EPOCH_REBUILD_SLOTS,
            pool: Pool::sequential(),
            scratch: RefCell::new(Scratch {
                gs: GridState::empty(),
                is_tx: Vec::new(),
                candidate_mark: Vec::new(),
                candidates: Vec::new(),
                thread: PerThread::new(1, |_| ChunkScratch::default()),
                stats: ResolverStats::default(),
            }),
        }
    }

    /// Creates the resolver with a worker pool for parallel resolution.
    pub fn with_pool(cfg: SinrConfig, pool: Pool) -> Self {
        let mut model = Self::new(cfg);
        model.set_pool(&pool);
        model
    }

    /// Creates the resolver with the grid heuristic sized for the given
    /// instance's *slot density*: the grid is enabled only when the
    /// expected per-slot transmitter count
    /// (`AUTO_TX_DENSITY_FACTOR · n / mean_degree`, see
    /// [`AUTO_TX_DENSITY_FACTOR`]) clears [`SMALL_SLOT_EXACT_CUTOFF`].
    /// On instances below that — few nodes, or so dense that the
    /// protocol's `1/degree` transmission probability keeps slots tiny —
    /// almost every slot would skip the fast path anyway, and the exact
    /// loop over reused scratch is strictly faster than maintaining grid
    /// state that never certifies. Tables are bit-identical either way.
    pub fn auto(cfg: SinrConfig, g: &UnitDiskGraph) -> Self {
        let mut model = Self::new(cfg);
        let expected_tx = AUTO_TX_DENSITY_FACTOR * g.len() as f64 / g.mean_degree().max(1.0);
        model.grid_enabled = expected_tx > SMALL_SLOT_EXACT_CUTOFF as f64;
        model
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SinrConfig {
        &self.cfg
    }

    /// The near-window half-width in cells.
    pub fn near_reach_cells(&self) -> i64 {
        self.near_reach
    }

    /// Whether the grid fast path is active (see [`FastSinrModel::auto`]).
    pub fn grid_enabled(&self) -> bool {
        self.grid_enabled
    }

    /// Overrides the epoch rebuild interval (default
    /// [`EPOCH_REBUILD_SLOTS`]); mainly for tests that want to force
    /// frequent rebuilds. An interval of 1 rebuilds every slot.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn set_epoch_interval(&mut self, slots: u64) {
        assert!(slots > 0, "epoch interval must be at least 1 slot");
        self.epoch_interval = slots;
    }

    /// Snapshot of the cumulative fast-path statistics.
    pub fn stats(&self) -> ResolverStats {
        self.scratch.borrow().stats
    }

    /// Resets the cumulative statistics to zero.
    pub fn reset_stats(&self) {
        self.scratch.borrow_mut().stats = ResolverStats::default();
    }

    /// Shared implementation of `resolve` / `resolve_delta` /
    /// `resolve_delta_into`: fills `pairs` (cleared first) with the
    /// slot's receptions in candidate discovery order. The caller owns
    /// the buffer so a driver that recycles one table performs no
    /// allocation here once scratch capacities have grown to the
    /// instance's working size — the module contract above.
    fn resolve_inner(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: Option<TxDelta<'_>>,
        pairs: &mut Vec<(NodeId, NodeId)>,
    ) {
        debug_assert!(
            (g.radius() - self.cfg.r_t()).abs() < 1e-9 * self.cfg.r_t().max(1.0),
            "graph radius {} does not match configured R_T {}",
            g.radius(),
            self.cfg.r_t()
        );
        let n = g.len();
        let k = transmitting.len();
        let mut scratch = self.scratch.borrow_mut();
        let Scratch {
            gs,
            is_tx,
            candidate_mark,
            candidates,
            thread,
            stats,
        } = &mut *scratch;
        if is_tx.len() < n {
            is_tx.resize(n, false);
            candidate_mark.resize(n, false);
            // At most every node is a candidate; one up-front reservation
            // keeps the per-slot candidate scan allocation-free no matter
            // how dense a later slot gets. The per-thread reception
            // buffers get the same hard bound (one decoded pair per
            // candidate), so a record-reception slot late in a run never
            // has to grow them.
            candidates.reserve(n);
            for cs in thread.iter_mut() {
                cs.pairs.reserve(n);
            }
        }

        for &t in transmitting {
            debug_assert!(!is_tx[t], "node {t} transmits twice in one slot");
            is_tx[t] = true;
        }

        // Candidate receivers in naive discovery order: non-transmitting
        // neighbors of any transmitter, first-touch wins.
        candidates.clear();
        for &t in transmitting {
            for &u in g.neighbors(t) {
                if !is_tx[u] && !candidate_mark[u] {
                    candidate_mark[u] = true;
                    candidates.push(u);
                }
            }
        }

        if self.grid_enabled {
            self.update_grid(gs, stats, g, transmitting, is_tx, delta);
        }

        // Stamp candidate cells only when the slot is worth the fast
        // path; membership above was maintained regardless, so skipped
        // slots keep the incremental state current.
        let use_grid = k > SMALL_SLOT_EXACT_CUTOFF && gs.grid.is_some();
        if use_grid {
            // A candidate's sender scan yields at most the bound-node
            // population of its 3×3 cell window; size every thread's
            // collection buffer to that bind-time bound once so a
            // record-density window late in the run cannot grow it.
            // (`reserve` on an already-sized buffer is a single branch.)
            if let Some(grid) = &gs.grid {
                let senders_cap = grid.max_window_population();
                for cs in thread.iter_mut() {
                    if cs.sender_buf.capacity() < senders_cap {
                        cs.sender_buf.reserve(senders_cap);
                    }
                }
            }
            for &c in &gs.stamped {
                gs.cand_cell_idx[c as usize] = NOT_STAMPED;
            }
            gs.stamped.clear();
            // Safety net only: the pool built at bind time already holds
            // one list per possibly-stamped cell, and lists are indexed
            // by stamped order (distinct candidate cells), never by raw
            // candidate count. A stamped cell collects at most one
            // reference per cell of its Chebyshev window, so new lists
            // are sized to that bound and never grow during a pass.
            let window_cap = (2 * self.near_reach + 1).pow(2) as usize;
            let lists_needed = candidates.len().min(gs.cand_cell_idx.len());
            while gs.near_refs.len() < lists_needed {
                gs.near_refs.push(Vec::with_capacity(window_cap));
            }
            if let Some(grid) = &gs.grid {
                stamp_candidate_cells(
                    grid,
                    candidates,
                    self.near_reach,
                    &mut gs.cand_cell_idx,
                    &mut gs.stamped,
                    &mut gs.near_refs,
                );
            }
        }

        let power = self.cfg.power();
        let alpha = self.cfg.alpha();
        let ctx = SlotCtx {
            cfg: &self.cfg,
            g,
            transmitting,
            grid: if use_grid { gs.grid.as_ref() } else { None },
            cand_cell_idx: &gs.cand_cell_idx,
            near_refs: &gs.near_refs,
            // Far transmitters sit strictly beyond `near_reach` cells (two
            // cells whose dense coordinates differ by more than `reach` in
            // a coordinate are separated by more than `reach · cell` in
            // that coordinate), so each contributes strictly less than
            // this cap.
            far_cap: received_power(power, self.near_reach as f64 * g.radius(), alpha),
            adjacency_r2: g.radius() * g.radius(),
            power,
            alpha,
            beta: self.cfg.beta(),
            k,
        };

        pairs.clear();
        if self.pool.threads() > 1 && candidates.len() >= PAR_CANDIDATE_CUTOFF {
            // Parallel: static chunks over the candidate list. Every slot
            // begins by resetting all per-thread outputs (chunks at the
            // tail can be empty and are then skipped by the pool), and the
            // merge walks the slots in thread = chunk = candidate order,
            // so pairs and counters match the sequential loop exactly.
            for cs in thread.iter_mut() {
                cs.begin_slot();
            }
            let candidate_slice: &[NodeId] = candidates;
            self.pool.run_chunks(candidate_slice.len(), |t, range| {
                thread.with(t, |cs| {
                    for &u in &candidate_slice[range] {
                        resolve_candidate(&ctx, u, cs);
                    }
                })
            });
            for cs in thread.iter_mut() {
                pairs.append(&mut cs.pairs);
                stats.fast_path_hits += cs.fast_hits;
                stats.exact_fallbacks += cs.fallbacks;
                stats.cells_scanned += cs.cells;
            }
        } else {
            let cs = thread.get_mut(0);
            cs.begin_slot();
            for &u in candidates.iter() {
                resolve_candidate(&ctx, u, cs);
            }
            pairs.append(&mut cs.pairs);
            stats.fast_path_hits += cs.fast_hits;
            stats.exact_fallbacks += cs.fallbacks;
            stats.cells_scanned += cs.cells;
        }

        // Unmark scratch state for the next slot (O(touched), not O(n)).
        for &t in transmitting {
            is_tx[t] = false;
        }
        for i in 0..candidates.len() {
            candidate_mark[candidates[i]] = false;
        }
    }

    /// Brings the persistent grid's membership to the current transmitter
    /// set: (re)binds on graph change, applies the start/stop delta
    /// (driver-supplied after validation, or self-diffed against the
    /// previous slot), and performs scheduled epoch rebuilds.
    fn update_grid(
        &self,
        gs: &mut GridState,
        stats: &mut ResolverStats,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        is_tx: &[bool],
        delta: Option<TxDelta<'_>>,
    ) {
        let positions = g.positions();
        let ptr = positions.as_ptr() as usize;
        let bound = gs.bound_ptr == ptr
            && gs.bound_len == positions.len()
            && gs.bound_radius == g.radius()
            && match &gs.grid {
                Some(grid) => grid.binds(positions),
                None => gs.bind_failed,
            };
        if !bound {
            gs.grid = CellGrid::try_bind(positions, g.radius());
            gs.bind_failed = gs.grid.is_none();
            gs.bound_ptr = ptr;
            gs.bound_len = positions.len();
            gs.bound_radius = g.radius();
            gs.prev_tx.clear();
            gs.stamped.clear();
            if let Some(grid) = &gs.grid {
                let (rows, cols) = grid.dims();
                let cell_count = (rows * cols) as usize;
                gs.cand_cell_idx.clear();
                gs.cand_cell_idx.resize(cell_count, NOT_STAMPED);
                // Build the whole near-reference list pool up front: one
                // list per possibly-stamped cell (distinct candidate
                // cells, ≤ min(n, cells)), each sized to its Chebyshev
                // window bound. Together with the `stamped` reservation
                // this makes every later stamping pass allocation-free —
                // candidate-count records late in a run would otherwise
                // be the last allocating slots.
                let window_cap = (2 * self.near_reach + 1).pow(2) as usize;
                let lists = positions.len().min(cell_count);
                gs.prev_tx.reserve(positions.len());
                gs.stamped.reserve(cell_count);
                gs.near_refs
                    .resize_with(lists, || Vec::with_capacity(window_cap));
                for list in &mut gs.near_refs {
                    let shortfall = window_cap.saturating_sub(list.capacity());
                    list.reserve(shortfall);
                }
            }
        }
        let Some(grid) = &mut gs.grid else {
            return;
        };

        gs.slots_since_epoch += 1;
        let epoch_due = gs.slots_since_epoch >= self.epoch_interval;
        if !bound || epoch_due {
            // Full (re)build in `transmitting` order: canonical entry
            // layout, compacted occupied index.
            grid.clear_members();
            for &t in transmitting {
                grid.insert(t);
            }
            grid.compact_occupied();
            if bound && epoch_due {
                stats.epoch_rebuilds += 1;
            }
            gs.slots_since_epoch = 0;
        } else if let Some(d) = delta {
            // Driver-supplied delta: apply with per-element validation,
            // then certify membership outright — every current
            // transmitter present and the counts equal. Any mismatch
            // falls back to a full rebuild, so an inconsistent delta can
            // cost time but never correctness.
            let mut ok = true;
            for &t in d.stopped {
                if t >= grid.bound_len() || !grid.remove(t) {
                    ok = false;
                    break;
                }
            }
            if ok {
                for &t in d.started {
                    if t >= grid.bound_len() || grid.contains(t) {
                        ok = false;
                        break;
                    }
                    grid.insert(t);
                }
            }
            if ok && grid.len() == transmitting.len() {
                for &t in transmitting {
                    if !grid.contains(t) {
                        ok = false;
                        break;
                    }
                }
            } else {
                ok = false;
            }
            if ok {
                stats.delta_started += d.started.len() as u64;
                stats.delta_stopped += d.stopped.len() as u64;
            } else {
                stats.full_rebuilds += 1;
                grid.clear_members();
                for &t in transmitting {
                    grid.insert(t);
                }
                grid.compact_occupied();
                gs.slots_since_epoch = 0;
            }
        } else {
            // Self-diff against the previous slot's transmitter list:
            // correct by construction, no validation needed.
            let mut stopped = 0u64;
            let mut started = 0u64;
            for &t in &gs.prev_tx {
                if !is_tx[t] {
                    grid.remove(t);
                    stopped += 1;
                }
            }
            for &t in transmitting {
                if !grid.contains(t) {
                    grid.insert(t);
                    started += 1;
                }
            }
            debug_assert_eq!(grid.len(), transmitting.len());
            stats.delta_started += started;
            stats.delta_stopped += stopped;
        }
        grid.maintain();
        gs.prev_tx.clear();
        gs.prev_tx.extend_from_slice(transmitting);
    }
}

impl InterferenceModel for FastSinrModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        let mut pairs = Vec::new();
        self.resolve_inner(g, transmitting, None, &mut pairs);
        ReceptionTable::from_pairs(pairs)
    }

    fn resolve_delta(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
    ) -> ReceptionTable {
        let mut pairs = Vec::new();
        self.resolve_inner(g, transmitting, Some(delta), &mut pairs);
        ReceptionTable::from_pairs(pairs)
    }

    fn resolve_delta_into(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
        out: &mut ReceptionTable,
    ) {
        // Recycle the caller's buffer: once it has grown to the slot
        // working set, a steady-state slot allocates nothing (in-place
        // `sort_unstable` inside `set_pairs` included).
        let mut pairs = out.take_pairs();
        self.resolve_inner(g, transmitting, Some(delta), &mut pairs);
        out.set_pairs(pairs);
    }

    fn name(&self) -> &'static str {
        "sinr-fast"
    }

    fn resolver_stats(&self) -> Option<ResolverStats> {
        Some(self.stats())
    }

    fn set_pool(&mut self, pool: &Pool) {
        self.pool = pool.clone();
        self.scratch.get_mut().thread = PerThread::new(pool.threads(), |_| ChunkScratch::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SinrModel;
    use sinr_geometry::Point;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    /// A deterministic pseudo-random scatter (LCG; no RNG dependency).
    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    /// A scatter sized for roughly the given mean degree at `R_T = 1`.
    fn scatter_with_degree(n: usize, degree: f64, seed: u64) -> Vec<Point> {
        let extent = (n as f64 * std::f64::consts::PI / degree).sqrt();
        scatter(n, extent, seed)
    }

    fn spread_tx(n: usize, k: usize) -> Vec<NodeId> {
        (0..k).map(|i| i * n / k.max(1)).collect()
    }

    #[test]
    fn matches_naive_on_dense_scatter() {
        let c = cfg();
        for seed in 0..5u64 {
            let g = UnitDiskGraph::new(scatter(300, 8.0, seed), c.r_t());
            let fast = FastSinrModel::new(c);
            let naive = SinrModel::new(c);
            for &k in &[1usize, 5, 13, 40, 120, 300] {
                let tx = spread_tx(300, k);
                assert_eq!(
                    fast.resolve(&g, &tx),
                    naive.resolve(&g, &tx),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_across_alphas_and_reaches() {
        for &alpha in &[2.5f64, 3.0, 4.0, 6.0] {
            let c = SinrConfig::with_unit_range(alpha, 1.5, 2.0);
            let g = UnitDiskGraph::new(scatter(200, 6.0, 42), c.r_t());
            let naive = SinrModel::new(c);
            let tx = spread_tx(200, 60);
            let expected = naive.resolve(&g, &tx);
            for &reach in &[1i64, 2, 4, 8] {
                let fast = FastSinrModel::with_near_reach(c, reach);
                assert_eq!(
                    fast.resolve(&g, &tx),
                    expected,
                    "alpha {alpha} reach {reach}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_with_colocated_transmitters() {
        // Degenerate: receiver-co-located and sender-co-located nodes
        // produce infinite powers; the fallback must still agree.
        let c = cfg();
        let mut pts = scatter(40, 3.0, 7);
        pts.push(pts[0]); // duplicate of node 0
        pts.push(pts[1]);
        let g = UnitDiskGraph::new(pts, c.r_t());
        let n = g.len();
        let fast = FastSinrModel::new(c);
        let naive = SinrModel::new(c);
        for &k in &[14usize, n] {
            let tx = spread_tx(n, k);
            assert_eq!(fast.resolve(&g, &tx), naive.resolve(&g, &tx), "k {k}");
        }
    }

    #[test]
    fn stats_accumulate_and_hit_rate_reports() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(400, 10.0, 3), c.r_t());
        let fast = FastSinrModel::new(c);
        assert_eq!(fast.stats(), ResolverStats::default());
        assert_eq!(fast.stats().hit_rate(), None);
        let tx = spread_tx(400, 50);
        let _ = fast.resolve(&g, &tx);
        let s = fast.stats();
        assert!(s.fast_path_hits + s.exact_fallbacks > 0);
        assert!(s.cells_scanned > 0);
        assert_eq!(s.delta_started, 0, "first slot is the initial grid build");
        let rate = s.hit_rate().expect("candidates were resolved");
        assert!((0.0..=1.0).contains(&rate));
        // A second, shifted slot exercises the incremental delta path.
        let tx2: Vec<NodeId> = tx.iter().map(|&t| (t + 3) % 400).collect();
        let _ = fast.resolve(&g, &tx2);
        let s2 = fast.stats();
        assert!(s2.delta_started > 0 && s2.delta_stopped > 0);
        fast.reset_stats();
        assert_eq!(fast.stats(), ResolverStats::default());
    }

    #[test]
    fn small_slots_skip_the_grid() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(100, 5.0, 1), c.r_t());
        let fast = FastSinrModel::new(c);
        let tx = spread_tx(100, SMALL_SLOT_EXACT_CUTOFF); // at the cutoff
        let _ = fast.resolve(&g, &tx);
        let s = fast.stats();
        assert_eq!(s.fast_path_hits, 0, "small slots resolve exactly");
        assert_eq!(s.cells_scanned, 0);
        assert!(s.exact_fallbacks > 0);
        // Membership is still maintained incrementally on skipped slots.
        let tx2: Vec<NodeId> = tx.iter().map(|&t| t + 1).collect();
        let _ = fast.resolve(&g, &tx2);
        let s2 = fast.stats();
        assert!(s2.delta_started > 0 && s2.delta_stopped > 0);
        assert_eq!(s2.fast_path_hits, 0);
    }

    #[test]
    fn scratch_adapts_to_graph_changes() {
        // Same model instance across different graphs and radii; the
        // persistent grid must rebind when the fingerprint changes.
        let fast = FastSinrModel::new(cfg());
        let g1 = UnitDiskGraph::new(scatter(80, 4.0, 2), 1.0);
        let _ = fast.resolve(&g1, &spread_tx(80, 20));
        let g2 = UnitDiskGraph::new(scatter(250, 7.0, 9), 1.0);
        let naive = SinrModel::new(cfg());
        let tx = spread_tx(250, 70);
        assert_eq!(fast.resolve(&g2, &tx), naive.resolve(&g2, &tx));
        // And back again: the first graph still resolves correctly.
        let tx1 = spread_tx(80, 30);
        assert_eq!(fast.resolve(&g1, &tx1), naive.resolve(&g1, &tx1));
    }

    #[test]
    fn deterministic_across_instances() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 11), c.r_t());
        let tx = spread_tx(300, 80);
        let a = FastSinrModel::new(c);
        let b = FastSinrModel::new(c);
        assert_eq!(a.resolve(&g, &tx), b.resolve(&g, &tx));
        assert_eq!(a.stats(), b.stats(), "stats are deterministic too");
    }

    #[test]
    fn empty_and_lone_transmitter() {
        let c = cfg();
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0)], c.r_t());
        let fast = FastSinrModel::new(c);
        assert!(fast.resolve(&g, &[]).is_empty());
        let t = fast.resolve(&g, &[0]);
        assert_eq!(t.unique_sender(1), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least the R_T disk")]
    fn zero_reach_rejected() {
        let _ = FastSinrModel::with_near_reach(cfg(), 0);
    }

    #[test]
    fn parallel_matches_sequential_bit_identically() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(400, 8.0, 5), c.r_t());
        for threads in [2usize, 4] {
            let seq = FastSinrModel::new(c);
            let par = FastSinrModel::with_pool(c, Pool::new(threads));
            for &k in &[1usize, 13, 80, 200, 400] {
                let tx = spread_tx(400, k);
                assert_eq!(
                    par.resolve(&g, &tx),
                    seq.resolve(&g, &tx),
                    "threads {threads} k {k}"
                );
            }
            assert_eq!(par.stats(), seq.stats(), "stats at threads {threads}");
        }
    }

    #[test]
    fn incremental_sequence_matches_fresh_and_naive() {
        // One model reused across an evolving slot sequence (high churn)
        // must match both a fresh model per slot and the naive resolver.
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 21), c.r_t());
        let naive = SinrModel::new(c);
        let reused = FastSinrModel::new(c);
        for step in 0..40usize {
            // Shifting, size-varying transmitter sets.
            let k = 5 + (step * 17) % 90;
            let tx: Vec<NodeId> = (0..k).map(|i| (i * 300 / k + step * 7) % 300).collect();
            let fresh = FastSinrModel::new(c);
            let expected = naive.resolve(&g, &tx);
            assert_eq!(reused.resolve(&g, &tx), expected, "step {step} (reused)");
            assert_eq!(fresh.resolve(&g, &tx), expected, "step {step} (fresh)");
        }
        let s = reused.stats();
        assert!(s.delta_started > 0 && s.delta_stopped > 0);
        assert_eq!(s.full_rebuilds, 0);
    }

    #[test]
    fn resolve_delta_matches_resolve() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 33), c.r_t());
        let naive = SinrModel::new(c);
        let with_delta = FastSinrModel::new(c);
        let self_diff = FastSinrModel::new(c);
        let mut prev: Vec<NodeId> = Vec::new();
        let mut is_prev = vec![false; 300];
        for step in 0..30usize {
            let k = 10 + (step * 13) % 80;
            let tx: Vec<NodeId> = (0..k).map(|i| (i * 300 / k + step * 11) % 300).collect();
            let started: Vec<NodeId> = tx.iter().copied().filter(|&t| !is_prev[t]).collect();
            let mut is_now = vec![false; 300];
            for &t in &tx {
                is_now[t] = true;
            }
            let stopped: Vec<NodeId> = prev.iter().copied().filter(|&t| !is_now[t]).collect();
            let delta = TxDelta {
                started: &started,
                stopped: &stopped,
            };
            let expected = naive.resolve(&g, &tx);
            assert_eq!(
                with_delta.resolve_delta(&g, &tx, delta),
                expected,
                "step {step}"
            );
            assert_eq!(self_diff.resolve(&g, &tx), expected, "step {step}");
            is_prev = is_now;
            prev = tx;
        }
        // A consistent delta stream never forces a rebuild, and both
        // update modes see the exact same start/stop traffic.
        assert_eq!(with_delta.stats(), self_diff.stats());
        assert_eq!(with_delta.stats().full_rebuilds, 0);
    }

    #[test]
    fn inconsistent_delta_rebuilds_and_stays_correct() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 8), c.r_t());
        let naive = SinrModel::new(c);
        let fast = FastSinrModel::new(c);
        let tx0 = spread_tx(300, 60);
        let _ = fast.resolve(&g, &tx0);
        // Lie about the delta in several ways; tables must stay correct.
        let tx1: Vec<NodeId> = (0..60).map(|i| (i * 5 + 1) % 300).collect();
        let lies = [
            TxDelta {
                started: &[],
                stopped: &[],
            }, // missing everything
            TxDelta {
                started: &[tx0[0]],
                stopped: &[],
            }, // "starts" a node the grid already holds
            TxDelta {
                started: &[],
                stopped: &[299],
            }, // "stops" a node that never transmitted
        ];
        for (i, lie) in lies.iter().enumerate() {
            let expected = naive.resolve(&g, &tx1);
            assert_eq!(fast.resolve_delta(&g, &tx1, *lie), expected, "lie {i}");
        }
        assert_eq!(fast.stats().full_rebuilds, 3, "every lie forced a rebuild");
        // After the rebuilds the state is healthy again: a truthful
        // self-diffed slot needs no rebuild.
        let tx2 = spread_tx(300, 40);
        assert_eq!(fast.resolve(&g, &tx2), naive.resolve(&g, &tx2));
        assert_eq!(fast.stats().full_rebuilds, 3);
    }

    #[test]
    fn epoch_rebuilds_fire_and_preserve_results() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 13), c.r_t());
        let naive = SinrModel::new(c);
        let mut fast = FastSinrModel::new(c);
        fast.set_epoch_interval(4);
        for step in 0..20usize {
            let k = 20 + (step * 7) % 60;
            let tx: Vec<NodeId> = (0..k).map(|i| (i * 300 / k + step * 3) % 300).collect();
            assert_eq!(fast.resolve(&g, &tx), naive.resolve(&g, &tx), "step {step}");
        }
        let s = fast.stats();
        assert_eq!(s.epoch_rebuilds, 4, "20 slots at interval 4");
        assert_eq!(s.full_rebuilds, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 slot")]
    fn zero_epoch_interval_rejected() {
        let mut fast = FastSinrModel::new(cfg());
        fast.set_epoch_interval(0);
    }

    #[test]
    fn pathological_scatter_disables_grid_but_stays_exact() {
        // Two far-apart clusters spread over a 10⁵-wide area: a dense
        // grid would need ~10¹⁰ cells, so binding is refused and every
        // slot resolves exactly — still bit-identical to naive.
        let c = cfg();
        let mut pts = scatter(30, 3.0, 2);
        for p in scatter(30, 3.0, 5) {
            pts.push(Point::new(p.x + 1.0e5, p.y + 1.0e5));
        }
        let g = UnitDiskGraph::new(pts, c.r_t());
        let naive = SinrModel::new(c);
        let fast = FastSinrModel::new(c);
        let tx = spread_tx(60, 20);
        assert_eq!(fast.resolve(&g, &tx), naive.resolve(&g, &tx));
        let s = fast.stats();
        assert_eq!(s.fast_path_hits, 0, "no grid, no fast path");
        assert_eq!(s.delta_started, 0, "no grid, no delta tracking");
        assert!(s.exact_fallbacks > 0);
    }

    #[test]
    fn auto_enables_grid_by_slot_density() {
        let c = cfg();
        // Sparse mid-size instance (degree ~12): expected slot size
        // 0.18·1024/12 ≈ 15 > 12 — grid on.
        let mid = UnitDiskGraph::new(scatter_with_degree(1024, 12.0, 1), c.r_t());
        assert!(FastSinrModel::auto(c, &mid).grid_enabled());
        // Small instance at the same degree: 0.18·256/12 ≈ 3.8 — off
        // (this was the v3 bench pathology: hit rate 0.002, e2e 0.93×).
        let small = UnitDiskGraph::new(scatter_with_degree(256, 12.0, 2), c.r_t());
        assert!(!FastSinrModel::auto(c, &small).grid_enabled());
        // Large but very dense (degree ~180): the protocol transmits with
        // p ~ 1/degree, so slots stay tiny — 0.18·2048/180 ≈ 2 — off.
        // Node count alone would have said "on".
        let dense = UnitDiskGraph::new(scatter_with_degree(2048, 180.0, 3), c.r_t());
        assert!(dense.mean_degree() > 100.0, "construction sanity");
        assert!(!FastSinrModel::auto(c, &dense).grid_enabled());
        // Plain constructor always enables the grid.
        assert!(FastSinrModel::new(c).grid_enabled());
    }

    #[test]
    fn auto_with_grid_off_is_still_exact() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter_with_degree(256, 12.0, 4), c.r_t());
        let auto = FastSinrModel::auto(c, &g);
        assert!(!auto.grid_enabled());
        let naive = SinrModel::new(c);
        let tx = spread_tx(256, 80);
        assert_eq!(auto.resolve(&g, &tx), naive.resolve(&g, &tx));
        let s = auto.stats();
        assert_eq!(s.fast_path_hits, 0);
        assert_eq!(s.cells_scanned, 0);
        assert!(s.exact_fallbacks > 0);
    }

    #[test]
    fn stats_merge_covers_every_counter() {
        let mut a = ResolverStats {
            fast_path_hits: 1,
            exact_fallbacks: 2,
            cells_scanned: 3,
            delta_started: 4,
            delta_stopped: 5,
            epoch_rebuilds: 6,
            full_rebuilds: 7,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            ResolverStats {
                fast_path_hits: 2,
                exact_fallbacks: 4,
                cells_scanned: 6,
                delta_started: 8,
                delta_stopped: 10,
                epoch_rebuilds: 12,
                full_rebuilds: 14,
            }
        );
    }
}
