//! A fast **exact** SINR resolver: grid-tiled near/far interference bounds
//! with a certified-bound fast path and a bit-identical exact fallback.
//!
//! [`FastSinrModel`] resolves the same reception tables as
//! [`SinrModel`](crate::SinrModel) — provably, and checked by differential
//! proptests — while doing far less work per slot:
//!
//! 1. The slot's transmitters are bucketed into a reusable
//!    [`SpatialGrid`] (cell side `R_T`), and the grid's occupied cells are
//!    snapshotted into a flat `(key, ids)` list — at most one entry per
//!    transmitter, independent of the playing-field area.
//! 2. Each candidate receiver classifies every occupied cell by integer
//!    (Chebyshev) cell distance: cells within `reach` are *near* and their
//!    transmitters' powers are summed, everything else is *far* and only
//!    counted. The far tail is bounded by `|far| · P / (reach·R_T)^α` — a
//!    Lemma-3-style conservative ring bound: every far transmitter sits
//!    strictly beyond `reach · R_T`, so its true contribution is strictly
//!    below the per-node cap (see `Distributed Node Coloring in the SINR
//!    Model`, Lemma 3, and the uniform-power tail bounds of Avin et al.,
//!    arXiv:0906.2311). Classification is pure integer arithmetic over the
//!    snapshot — no hashing, no probing of empty window cells.
//! 3. A sender is decoded on the fast path only when the *pessimistic*
//!    SINR (far tail fully charged) already clears `β` **and** no other
//!    sender clears `β` even *optimistically* (far tail zero). A slot
//!    verdict of "nothing decodable" requires every sender to fail
//!    optimistically. The bounds carry a relative slack of
//!    [`SUM_SLACK`] so they bracket the naive resolver's floating-point
//!    sum (not just the real-valued one) regardless of summation order.
//!    Whenever the bounds disagree, the resolver falls back to the full
//!    interference sum **in the same iteration order as the naive
//!    resolver**, so the produced [`ReceptionTable`] is bit-identical in
//!    every case — the fast path is a pure strength reduction, never an
//!    approximation.
//!
//! All scratch state (transmitter bitmap, candidate marks, the transmitter
//! grid) lives behind a `RefCell` and is reused across slots, so steady-
//! state resolution performs no allocation beyond the returned table.

use crate::config::SinrConfig;
use crate::interference::{received_power, received_power_d2, sinr_from_total};
use crate::model::{InterferenceModel, ReceptionTable, PAR_CANDIDATE_CUTOFF};
use sinr_geometry::{GridKey, NodeId, SpatialGrid, UnitDiskGraph};
use sinr_pool::{PerThread, Pool};
use std::cell::RefCell;

/// Default near-window half-width, in grid cells (cell side = `R_T`).
///
/// Transmitters beyond `4·R_T` contribute at most `P/(4·R_T)^α` each —
/// under the default profile (`α = 4`, `R_T = 1`, `N = 1/(2β)`) that is
/// `< 1.2%` of the ambient noise per transmitter, so the optimistic and
/// pessimistic SINR bounds almost always agree and the exact fallback is
/// rare (the `ResolverStats` hit rate makes this observable).
pub const DEFAULT_NEAR_REACH_CELLS: i64 = 4;

/// Below this many transmitters the naive `O(k)` sum is cheaper than
/// bucketing the slot into the grid, so small slots skip the fast path.
pub const SMALL_SLOT_EXACT_CUTOFF: usize = 12;

/// Below this many nodes [`FastSinrModel::auto`] disables the grid
/// entirely. On small instances almost every slot sits near
/// [`SMALL_SLOT_EXACT_CUTOFF`] transmitters, so the snapshot never pays
/// for itself (at n=256 the measured hit rate was 0.2% and end-to-end
/// throughput *lost* 7% to grid upkeep); the exact loop over reused
/// scratch is strictly faster there.
pub const AUTO_GRID_MIN_NODES: usize = 512;

/// Relative slack applied to the interference bounds so they bracket the
/// naive resolver's *floating-point* sum, not just the real-valued one:
/// the near sum is accumulated in grid order (and from squared distances)
/// while the fallback sums in `transmitting` order, so the two can differ
/// by accumulated rounding of roughly `k·ε` relative (`ε = 2⁻⁵²`; below
/// `10⁻⁹` for any realistic `k ≤ 10⁶`). Only candidates whose SINR sits
/// within the slack of `β` lose the fast path.
pub const SUM_SLACK: f64 = 1e-9;

/// Cumulative counters exposed by resolvers that track their fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Candidate receivers decided purely from the certified bounds.
    pub fast_path_hits: u64,
    /// Candidate receivers that needed the full exact interference sum
    /// (bound disagreement, or a small slot below the grid cutoff).
    pub exact_fallbacks: u64,
    /// Occupied grid cells examined during near/far classification
    /// (counts every snapshot entry once per fast-path candidate).
    pub cells_scanned: u64,
}

impl ResolverStats {
    /// Fraction of candidates decided on the fast path (`None` before any
    /// candidate was resolved).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.fast_path_hits + self.exact_fallbacks;
        if total == 0 {
            None
        } else {
            Some(self.fast_path_hits as f64 / total as f64)
        }
    }

    /// Adds another stats snapshot into this one (for aggregating across
    /// runs or seeds).
    pub fn merge(&mut self, other: &ResolverStats) {
        self.fast_path_hits += other.fast_path_hits;
        self.exact_fallbacks += other.exact_fallbacks;
        self.cells_scanned += other.cells_scanned;
    }

    /// Exports the counters (and the derived hit rate, when defined) into
    /// a recorder under the canonical `resolver.*` keys.
    pub fn export_into(&self, rec: &mut dyn sinr_obs::Recorder) {
        use sinr_obs::keys;
        rec.counter_add(keys::RESOLVER_FAST_PATH_HITS, self.fast_path_hits);
        rec.counter_add(keys::RESOLVER_EXACT_FALLBACKS, self.exact_fallbacks);
        rec.counter_add(keys::RESOLVER_CELLS_SCANNED, self.cells_scanned);
        if let Some(rate) = self.hit_rate() {
            rec.gauge_set(keys::RESOLVER_HIT_RATE, rate);
        }
    }
}

/// Reusable per-slot working state (interior mutability keeps
/// [`InterferenceModel::resolve`]'s `&self` signature).
#[derive(Debug, Clone)]
struct Scratch {
    /// Transmitter grid, cell side `R_T`; cleared and refilled per slot.
    grid: SpatialGrid,
    /// Dense transmitter bitmap, unmarked after every slot.
    is_tx: Vec<bool>,
    /// Dense candidate-receiver marks, unmarked after every slot.
    candidate_mark: Vec<bool>,
    /// Candidate receivers in naive discovery order.
    candidates: Vec<NodeId>,
    /// Occupancy snapshot: one `(cell key, range into tx_flat)` per
    /// non-empty cell, rebuilt per slot.
    tx_cells: Vec<(GridKey, usize, usize)>,
    /// Transmitter ids backing `tx_cells`, grouped by cell.
    tx_flat: Vec<NodeId>,
    /// One scratch slot per pool thread; slot 0 doubles as the
    /// sequential path's buffers.
    thread: PerThread<ChunkScratch>,
    stats: ResolverStats,
}

/// Per-thread (per-chunk) working state for one slot.
#[derive(Debug, Clone, Default)]
struct ChunkScratch {
    /// Potential senders of the current candidate (reused).
    sender_buf: Vec<NodeId>,
    /// Receptions decoded by this chunk, in candidate order.
    pairs: Vec<(NodeId, NodeId)>,
    fast_hits: u64,
    fallbacks: u64,
    cells: u64,
}

impl ChunkScratch {
    /// Resets the per-slot outputs (buffers keep their capacity).
    fn begin_slot(&mut self) {
        self.pairs.clear();
        self.fast_hits = 0;
        self.fallbacks = 0;
        self.cells = 0;
    }
}

/// Immutable per-slot context shared by every chunk: the graph, the
/// transmitter set, the grid snapshot, and the precomputed bounds.
struct SlotCtx<'a> {
    cfg: &'a SinrConfig,
    g: &'a UnitDiskGraph,
    transmitting: &'a [NodeId],
    grid: &'a SpatialGrid,
    tx_cells: &'a [(GridKey, usize, usize)],
    tx_flat: &'a [NodeId],
    use_grid: bool,
    reach: i64,
    far_cap: f64,
    adjacency_r2: f64,
    power: f64,
    alpha: f64,
    beta: f64,
    k: usize,
}

/// Resolves one candidate receiver into `cs` (pairs + counters).
///
/// Pure in `(ctx, u)`: the same candidate produces the same reception and
/// counter increments on any thread, which together with static chunking
/// and chunk-order merging keeps parallel runs bit-identical.
// lint:hot — resolver inner loop, runs once per candidate per slot
fn resolve_candidate(ctx: &SlotCtx<'_>, u: NodeId, cs: &mut ChunkScratch) {
    let positions = ctx.g.positions();
    let pu = positions[u];
    let mut resolved = false;
    if ctx.use_grid {
        let (ucx, ucy) = ctx.grid.key_of(pu);
        // One pass over the occupied cells: near cells (Chebyshev
        // distance ≤ reach) are summed exactly; far cells only counted.
        // Senders must lie within R_T = one cell side, so they live in
        // cells at Chebyshev distance ≤ 1 and are collected for the SINR
        // evaluation below.
        let mut near_sum = 0.0f64;
        let mut near_count = 0usize;
        cs.sender_buf.clear();
        for &((cx, cy), start, end) in ctx.tx_cells {
            let cheb = (cx - ucx).abs().max((cy - ucy).abs());
            if cheb <= ctx.reach {
                let collect_senders = cheb <= 1;
                for &w in &ctx.tx_flat[start..end] {
                    near_sum +=
                        received_power_d2(ctx.power, pu.distance_squared(positions[w]), ctx.alpha);
                    if collect_senders {
                        cs.sender_buf.push(w);
                    }
                }
                near_count += end - start;
            }
        }
        cs.cells += ctx.tx_cells.len() as u64;
        let far_tail = (ctx.k - near_count) as f64 * ctx.far_cap;
        // [total_low, total_high] brackets the naive resolver's
        // floating-point interference sum; SUM_SLACK absorbs the
        // different summation order (see its docs).
        let total_low = near_sum * (1.0 - SUM_SLACK);
        let total_high = (near_sum + far_tail) * (1.0 + SUM_SLACK);

        // `certified` clears β even pessimistically; `possible` counts
        // senders clearing β optimistically.
        let mut certified: Option<NodeId> = None;
        let mut possible = 0u64;
        for &v in &cs.sender_buf {
            if positions[v].distance_squared(pu) <= ctx.adjacency_r2 {
                let optimistic = sinr_from_total(ctx.cfg, pu, positions[v], total_low);
                if optimistic >= ctx.beta {
                    possible += 1;
                    let pessimistic = sinr_from_total(ctx.cfg, pu, positions[v], total_high);
                    if pessimistic >= ctx.beta && certified.is_none() {
                        certified = Some(v);
                    }
                }
            }
        }
        if let Some(v) = certified {
            if possible == 1 {
                // v decodes even with the tail fully charged and no
                // other sender can reach β: the naive resolver
                // necessarily picks exactly v.
                cs.pairs.push((u, v));
                resolved = true;
            }
        } else if possible == 0 {
            // No sender reaches β even with zero far tail.
            resolved = true;
        }
        if resolved {
            cs.fast_hits += 1;
        }
    }
    if !resolved {
        // Exact fallback — bitwise identical to `SinrModel`: same
        // summation order over `transmitting`, same power/SINR
        // functions, same best-sender tie-breaking.
        cs.fallbacks += 1;
        let total: f64 = ctx
            .transmitting
            .iter()
            .map(|&w| received_power(ctx.power, pu.distance(positions[w]), ctx.alpha))
            .sum();
        let mut best: Option<(f64, NodeId)> = None;
        for &v in ctx.transmitting {
            if ctx.g.are_adjacent(u, v) {
                let s = sinr_from_total(ctx.cfg, pu, positions[v], total);
                if s >= ctx.beta && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, v));
                }
            }
        }
        if let Some((_, v)) = best {
            cs.pairs.push((u, v));
        }
    }
}

/// The grid-tiled exact SINR resolver (drop-in replacement for
/// [`SinrModel`](crate::SinrModel): identical tables, much faster slots).
///
/// # Example
///
/// ```
/// use sinr_geometry::{Point, UnitDiskGraph};
/// use sinr_model::{FastSinrModel, InterferenceModel, SinrConfig, SinrModel};
///
/// let g = UnitDiskGraph::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(2.5, 0.0)],
///     1.0,
/// );
/// let cfg = SinrConfig::default_unit();
/// let fast = FastSinrModel::new(cfg);
/// let naive = SinrModel::new(cfg);
/// assert_eq!(fast.resolve(&g, &[0, 2]), naive.resolve(&g, &[0, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct FastSinrModel {
    cfg: SinrConfig,
    near_reach: i64,
    grid_enabled: bool,
    pool: Pool,
    scratch: RefCell<Scratch>,
}

impl FastSinrModel {
    /// Creates the resolver with [`DEFAULT_NEAR_REACH_CELLS`].
    pub fn new(cfg: SinrConfig) -> Self {
        Self::with_near_reach(cfg, DEFAULT_NEAR_REACH_CELLS)
    }

    /// Creates the resolver with an explicit near-window half-width (in
    /// cells of side `R_T`). Larger windows tighten the far-tail bound
    /// (fewer exact fallbacks) at the cost of summing more transmitters
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `near_reach_cells < 1` (the window must at least cover
    /// the `R_T` disk so every decodable sender is scanned).
    pub fn with_near_reach(cfg: SinrConfig, near_reach_cells: i64) -> Self {
        assert!(
            near_reach_cells >= 1,
            "near window must cover at least the R_T disk"
        );
        FastSinrModel {
            cfg,
            near_reach: near_reach_cells,
            grid_enabled: true,
            pool: Pool::sequential(),
            scratch: RefCell::new(Scratch {
                grid: SpatialGrid::empty(1.0),
                is_tx: Vec::new(),
                candidate_mark: Vec::new(),
                candidates: Vec::new(),
                tx_cells: Vec::new(),
                tx_flat: Vec::new(),
                thread: PerThread::new(1, |_| ChunkScratch::default()),
                stats: ResolverStats::default(),
            }),
        }
    }

    /// Creates the resolver with a worker pool for parallel resolution.
    pub fn with_pool(cfg: SinrConfig, pool: Pool) -> Self {
        let mut model = Self::new(cfg);
        model.set_pool(&pool);
        model
    }

    /// Creates the resolver with the grid heuristic sized for an
    /// `nodes`-node instance: below [`AUTO_GRID_MIN_NODES`] the grid is
    /// disabled and every slot resolves in exact naive order (over reused
    /// scratch), which is faster than maintaining snapshots that almost
    /// never certify. Tables are bit-identical either way.
    pub fn auto(cfg: SinrConfig, nodes: usize) -> Self {
        let mut model = Self::new(cfg);
        model.grid_enabled = nodes >= AUTO_GRID_MIN_NODES;
        model
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SinrConfig {
        &self.cfg
    }

    /// The near-window half-width in cells.
    pub fn near_reach_cells(&self) -> i64 {
        self.near_reach
    }

    /// Whether the grid fast path is active (see [`FastSinrModel::auto`]).
    pub fn grid_enabled(&self) -> bool {
        self.grid_enabled
    }

    /// Snapshot of the cumulative fast-path statistics.
    pub fn stats(&self) -> ResolverStats {
        self.scratch.borrow().stats
    }

    /// Resets the cumulative statistics to zero.
    pub fn reset_stats(&self) {
        self.scratch.borrow_mut().stats = ResolverStats::default();
    }
}

impl InterferenceModel for FastSinrModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        debug_assert!(
            (g.radius() - self.cfg.r_t()).abs() < 1e-9 * self.cfg.r_t().max(1.0),
            "graph radius {} does not match configured R_T {}",
            g.radius(),
            self.cfg.r_t()
        );
        let positions = g.positions();
        let n = g.len();
        let k = transmitting.len();
        let mut scratch = self.scratch.borrow_mut();
        let Scratch {
            grid,
            is_tx,
            candidate_mark,
            candidates,
            tx_cells,
            tx_flat,
            thread,
            stats,
        } = &mut *scratch;
        if is_tx.len() < n {
            is_tx.resize(n, false);
            candidate_mark.resize(n, false);
        }

        for &t in transmitting {
            debug_assert!(!is_tx[t], "node {t} transmits twice in one slot");
            is_tx[t] = true;
        }

        // Candidate receivers in naive discovery order: non-transmitting
        // neighbors of any transmitter, first-touch wins.
        candidates.clear();
        for &t in transmitting {
            for &u in g.neighbors(t) {
                if !is_tx[u] && !candidate_mark[u] {
                    candidate_mark[u] = true;
                    candidates.push(u);
                }
            }
        }

        let use_grid = self.grid_enabled && k > SMALL_SLOT_EXACT_CUTOFF;
        if use_grid {
            let cell = g.radius();
            if grid.cell_side() != cell {
                *grid = SpatialGrid::empty(cell);
            }
            grid.clear();
            for &t in transmitting {
                grid.insert(t, positions[t]);
            }
            // Snapshot the occupancy into flat arrays so per-candidate
            // classification is pure integer arithmetic (no hashing).
            tx_cells.clear();
            tx_flat.clear();
            for &key in grid.occupied_keys() {
                let start = tx_flat.len();
                tx_flat.extend_from_slice(grid.ids_in_cell(key));
                tx_cells.push((key, start, tx_flat.len()));
            }
        }

        let power = self.cfg.power();
        let alpha = self.cfg.alpha();
        let ctx = SlotCtx {
            cfg: &self.cfg,
            g,
            transmitting,
            grid,
            tx_cells,
            tx_flat,
            use_grid,
            reach: self.near_reach,
            // Far transmitters sit strictly beyond `near_reach` cells (two
            // cells whose keys differ by more than `reach` in a coordinate
            // are separated by more than `reach · cell` in that
            // coordinate), so each contributes strictly less than this cap.
            far_cap: received_power(power, self.near_reach as f64 * g.radius(), alpha),
            adjacency_r2: g.radius() * g.radius(),
            power,
            alpha,
            beta: self.cfg.beta(),
            k,
        };

        let mut pairs = Vec::new();
        if self.pool.threads() > 1 && candidates.len() >= PAR_CANDIDATE_CUTOFF {
            // Parallel: static chunks over the candidate list. Every slot
            // begins by resetting all per-thread outputs (chunks at the
            // tail can be empty and are then skipped by the pool), and the
            // merge walks the slots in thread = chunk = candidate order,
            // so pairs and counters match the sequential loop exactly.
            for cs in thread.iter_mut() {
                cs.begin_slot();
            }
            let candidate_slice: &[NodeId] = candidates;
            self.pool.run_chunks(candidate_slice.len(), |t, range| {
                thread.with(t, |cs| {
                    for &u in &candidate_slice[range] {
                        resolve_candidate(&ctx, u, cs);
                    }
                })
            });
            for cs in thread.iter_mut() {
                pairs.append(&mut cs.pairs);
                stats.fast_path_hits += cs.fast_hits;
                stats.exact_fallbacks += cs.fallbacks;
                stats.cells_scanned += cs.cells;
            }
        } else {
            let cs = thread.get_mut(0);
            cs.begin_slot();
            for &u in candidates.iter() {
                resolve_candidate(&ctx, u, cs);
            }
            pairs.append(&mut cs.pairs);
            stats.fast_path_hits += cs.fast_hits;
            stats.exact_fallbacks += cs.fallbacks;
            stats.cells_scanned += cs.cells;
        }

        // Unmark scratch state for the next slot (O(touched), not O(n)).
        for &t in transmitting {
            is_tx[t] = false;
        }
        for i in 0..candidates.len() {
            candidate_mark[candidates[i]] = false;
        }

        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "sinr-fast"
    }

    fn resolver_stats(&self) -> Option<ResolverStats> {
        Some(self.stats())
    }

    fn set_pool(&mut self, pool: &Pool) {
        self.pool = pool.clone();
        self.scratch.get_mut().thread = PerThread::new(pool.threads(), |_| ChunkScratch::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SinrModel;
    use sinr_geometry::Point;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    /// A deterministic pseudo-random scatter (LCG; no RNG dependency).
    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    fn spread_tx(n: usize, k: usize) -> Vec<NodeId> {
        (0..k).map(|i| i * n / k.max(1)).collect()
    }

    #[test]
    fn matches_naive_on_dense_scatter() {
        let c = cfg();
        for seed in 0..5u64 {
            let g = UnitDiskGraph::new(scatter(300, 8.0, seed), c.r_t());
            let fast = FastSinrModel::new(c);
            let naive = SinrModel::new(c);
            for &k in &[1usize, 5, 13, 40, 120, 300] {
                let tx = spread_tx(300, k);
                assert_eq!(
                    fast.resolve(&g, &tx),
                    naive.resolve(&g, &tx),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_across_alphas_and_reaches() {
        for &alpha in &[2.5f64, 3.0, 4.0, 6.0] {
            let c = SinrConfig::with_unit_range(alpha, 1.5, 2.0);
            let g = UnitDiskGraph::new(scatter(200, 6.0, 42), c.r_t());
            let naive = SinrModel::new(c);
            let tx = spread_tx(200, 60);
            let expected = naive.resolve(&g, &tx);
            for &reach in &[1i64, 2, 4, 8] {
                let fast = FastSinrModel::with_near_reach(c, reach);
                assert_eq!(
                    fast.resolve(&g, &tx),
                    expected,
                    "alpha {alpha} reach {reach}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_with_colocated_transmitters() {
        // Degenerate: receiver-co-located and sender-co-located nodes
        // produce infinite powers; the fallback must still agree.
        let c = cfg();
        let mut pts = scatter(40, 3.0, 7);
        pts.push(pts[0]); // duplicate of node 0
        pts.push(pts[1]);
        let g = UnitDiskGraph::new(pts, c.r_t());
        let n = g.len();
        let fast = FastSinrModel::new(c);
        let naive = SinrModel::new(c);
        for &k in &[14usize, n] {
            let tx = spread_tx(n, k);
            assert_eq!(fast.resolve(&g, &tx), naive.resolve(&g, &tx), "k {k}");
        }
    }

    #[test]
    fn stats_accumulate_and_hit_rate_reports() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(400, 10.0, 3), c.r_t());
        let fast = FastSinrModel::new(c);
        assert_eq!(fast.stats(), ResolverStats::default());
        assert_eq!(fast.stats().hit_rate(), None);
        let tx = spread_tx(400, 50);
        let _ = fast.resolve(&g, &tx);
        let s = fast.stats();
        assert!(s.fast_path_hits + s.exact_fallbacks > 0);
        assert!(s.cells_scanned > 0);
        let rate = s.hit_rate().expect("candidates were resolved");
        assert!((0.0..=1.0).contains(&rate));
        fast.reset_stats();
        assert_eq!(fast.stats(), ResolverStats::default());
    }

    #[test]
    fn small_slots_skip_the_grid() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(100, 5.0, 1), c.r_t());
        let fast = FastSinrModel::new(c);
        let tx = spread_tx(100, SMALL_SLOT_EXACT_CUTOFF); // at the cutoff
        let _ = fast.resolve(&g, &tx);
        let s = fast.stats();
        assert_eq!(s.fast_path_hits, 0, "small slots resolve exactly");
        assert_eq!(s.cells_scanned, 0);
        assert!(s.exact_fallbacks > 0);
    }

    #[test]
    fn scratch_adapts_to_graph_changes() {
        // Same model instance across different graphs and radii.
        let fast = FastSinrModel::new(cfg());
        let g1 = UnitDiskGraph::new(scatter(80, 4.0, 2), 1.0);
        let _ = fast.resolve(&g1, &spread_tx(80, 20));
        let g2 = UnitDiskGraph::new(scatter(250, 7.0, 9), 1.0);
        let naive = SinrModel::new(cfg());
        let tx = spread_tx(250, 70);
        assert_eq!(fast.resolve(&g2, &tx), naive.resolve(&g2, &tx));
    }

    #[test]
    fn deterministic_across_instances() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(300, 8.0, 11), c.r_t());
        let tx = spread_tx(300, 80);
        let a = FastSinrModel::new(c);
        let b = FastSinrModel::new(c);
        assert_eq!(a.resolve(&g, &tx), b.resolve(&g, &tx));
        assert_eq!(a.stats(), b.stats(), "stats are deterministic too");
    }

    #[test]
    fn empty_and_lone_transmitter() {
        let c = cfg();
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0)], c.r_t());
        let fast = FastSinrModel::new(c);
        assert!(fast.resolve(&g, &[]).is_empty());
        let t = fast.resolve(&g, &[0]);
        assert_eq!(t.unique_sender(1), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least the R_T disk")]
    fn zero_reach_rejected() {
        let _ = FastSinrModel::with_near_reach(cfg(), 0);
    }

    #[test]
    fn parallel_matches_sequential_bit_identically() {
        let c = cfg();
        let g = UnitDiskGraph::new(scatter(400, 8.0, 5), c.r_t());
        for threads in [2usize, 4] {
            let seq = FastSinrModel::new(c);
            let par = FastSinrModel::with_pool(c, Pool::new(threads));
            for &k in &[1usize, 13, 80, 200, 400] {
                let tx = spread_tx(400, k);
                assert_eq!(
                    par.resolve(&g, &tx),
                    seq.resolve(&g, &tx),
                    "threads {threads} k {k}"
                );
            }
            assert_eq!(par.stats(), seq.stats(), "stats at threads {threads}");
        }
    }

    #[test]
    fn auto_disables_grid_below_threshold() {
        let c = cfg();
        let small = FastSinrModel::auto(c, AUTO_GRID_MIN_NODES - 1);
        assert!(!small.grid_enabled());
        assert!(FastSinrModel::auto(c, AUTO_GRID_MIN_NODES).grid_enabled());
        assert!(FastSinrModel::new(c).grid_enabled());
        // With the grid off every candidate takes the exact path, and the
        // tables still match the naive resolver bit for bit.
        let g = UnitDiskGraph::new(scatter(300, 8.0, 4), c.r_t());
        let naive = SinrModel::new(c);
        let tx = spread_tx(300, 80);
        assert_eq!(small.resolve(&g, &tx), naive.resolve(&g, &tx));
        let s = small.stats();
        assert_eq!(s.fast_path_hits, 0);
        assert_eq!(s.cells_scanned, 0);
        assert!(s.exact_fallbacks > 0);
    }
}
