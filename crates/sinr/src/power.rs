//! Non-uniform transmission power.
//!
//! The paper assumes uniform power (footnote 3) and only ever scales it
//! globally (§V, the `O(d^α P)` trick — covered by
//! [`SinrConfig::scaled_range`]). Real deployments mix power levels, and
//! power control is the classic answer to the near–far problem, so the
//! library also ships a per-node-power SINR resolver as an extension.

use crate::config::SinrConfig;
use crate::model::{InterferenceModel, ReceptionTable};
use sinr_geometry::{NodeId, UnitDiskGraph};

/// A per-node transmission power vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAssignment {
    powers: Vec<f64>,
}

impl PowerAssignment {
    /// Uniform power `p` for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly positive and finite.
    pub fn uniform(n: usize, p: f64) -> Self {
        assert!(p.is_finite() && p > 0.0, "power must be positive");
        PowerAssignment { powers: vec![p; n] }
    }

    /// Explicit per-node powers.
    ///
    /// # Panics
    ///
    /// Panics if any power is not strictly positive and finite.
    pub fn from_vec(powers: Vec<f64>) -> Self {
        assert!(
            powers.iter().all(|p| p.is_finite() && *p > 0.0),
            "all powers must be positive"
        );
        PowerAssignment { powers }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Whether the assignment covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Power of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn power(&self, v: NodeId) -> f64 {
        self.powers[v]
    }

    /// Sets the power of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `p` is not strictly positive.
    pub fn set(&mut self, v: NodeId, p: f64) {
        assert!(p.is_finite() && p > 0.0, "power must be positive");
        self.powers[v] = p;
    }

    /// The decoding range of node `v` under `cfg`'s noise and threshold:
    /// `(P_v/(2Nβ))^{1/α}` — the per-node analogue of `R_T`.
    pub fn range_of(&self, cfg: &SinrConfig, v: NodeId) -> f64 {
        (self.powers[v] / (2.0 * cfg.noise() * cfg.beta())).powf(1.0 / cfg.alpha())
    }
}

/// SINR reception with per-node powers.
///
/// Unlike [`SinrModel`](crate::SinrModel) this resolver ignores the
/// graph's adjacency (which encodes a single uniform range) and derives
/// each sender's reach from its own power; the graph supplies positions
/// only. Resolution is `O(n·|tx|)`.
#[derive(Debug, Clone)]
pub struct NonUniformSinrModel {
    cfg: SinrConfig,
    powers: PowerAssignment,
}

impl NonUniformSinrModel {
    /// Creates the model; `powers` must cover every node that will appear
    /// in `resolve` calls.
    pub fn new(cfg: SinrConfig, powers: PowerAssignment) -> Self {
        NonUniformSinrModel { cfg, powers }
    }

    /// The power assignment.
    pub fn powers(&self) -> &PowerAssignment {
        &self.powers
    }
}

impl InterferenceModel for NonUniformSinrModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        assert_eq!(
            self.powers.len(),
            g.len(),
            "power assignment must cover every node"
        );
        let positions = g.positions();
        let alpha = self.cfg.alpha();
        let mut is_tx = vec![false; g.len()];
        for &t in transmitting {
            is_tx[t] = true;
        }
        let mut pairs = Vec::new();
        for u in 0..g.len() {
            if is_tx[u] || transmitting.is_empty() {
                continue;
            }
            // Total received power at u from all transmitters.
            let mut total = 0.0;
            for &w in transmitting {
                let d = positions[u].distance(positions[w]);
                total += if d <= 0.0 {
                    f64::INFINITY
                } else {
                    self.powers.power(w) / d.powf(alpha)
                };
            }
            let mut best: Option<(f64, NodeId)> = None;
            for &v in transmitting {
                let d = positions[u].distance(positions[v]);
                if d <= 0.0 || d > self.powers.range_of(&self.cfg, v) {
                    continue;
                }
                let signal = self.powers.power(v) / d.powf(alpha);
                let sinr = signal / (self.cfg.noise() + (total - signal).max(0.0));
                if sinr >= self.cfg.beta() && best.is_none_or(|(bs, _)| sinr > bs) {
                    best = Some((sinr, v));
                }
            }
            if let Some((_, v)) = best {
                pairs.push((u, v));
            }
        }
        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "sinr-nonuniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SinrModel;
    use sinr_geometry::Point;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn uniform_powers_match_the_uniform_model() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.7, 0.0),
            Point::new(1.5, 0.3),
            Point::new(2.2, 1.0),
            Point::new(0.4, 0.9),
        ];
        let g = UnitDiskGraph::new(pts, cfg().r_t());
        let uniform = SinrModel::new(cfg());
        let nonuni = NonUniformSinrModel::new(cfg(), PowerAssignment::uniform(5, cfg().power()));
        for tx in [vec![0], vec![0, 2], vec![1, 3, 4]] {
            assert_eq!(
                uniform.resolve(&g, &tx),
                nonuni.resolve(&g, &tx),
                "tx = {tx:?}"
            );
        }
    }

    #[test]
    fn boosted_power_extends_reach() {
        // Sender at distance 1.5 > R_T = 1: silent at power 1, heard at
        // power 1.5^α · 2.
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.5, 0.0)];
        let g = UnitDiskGraph::new(pts, cfg().r_t());
        let weak = NonUniformSinrModel::new(cfg(), PowerAssignment::uniform(2, 1.0));
        assert!(weak.resolve(&g, &[1]).is_empty());
        let mut powers = PowerAssignment::uniform(2, 1.0);
        powers.set(1, 2.0 * 1.5f64.powi(4));
        let strong = NonUniformSinrModel::new(cfg(), powers);
        assert_eq!(strong.resolve(&g, &[1]).unique_sender(0), Some(1));
    }

    #[test]
    fn near_far_problem_and_power_control_fix() {
        // Receiver at origin; far sender at 0.9, near interferer at 0.3
        // (transmitting to someone else). Equal powers: the near node
        // drowns the far sender. Lowering the near node's power restores
        // the far link — the classic power-control win.
        let pts = vec![
            Point::new(0.0, 0.0),  // receiver
            Point::new(0.9, 0.0),  // far sender
            Point::new(0.0, 0.3),  // near interferer
            Point::new(0.0, 0.35), // the interferer's own receiver
        ];
        let g = UnitDiskGraph::new(pts, cfg().r_t());
        let equal = NonUniformSinrModel::new(cfg(), PowerAssignment::uniform(4, 1.0));
        let table = equal.resolve(&g, &[1, 2]);
        assert_eq!(table.unique_sender(0), Some(2), "near node captures");
        // Power control: the near pair needs far less power for its short
        // link; dial it down.
        let mut powers = PowerAssignment::uniform(4, 1.0);
        powers.set(2, 0.001);
        let controlled = NonUniformSinrModel::new(cfg(), powers);
        let table = controlled.resolve(&g, &[1, 2]);
        assert_eq!(table.unique_sender(0), Some(1), "far sender decodes");
        assert_eq!(table.unique_sender(3), Some(2), "short link still works");
    }

    #[test]
    fn range_of_scales_with_power() {
        let powers = PowerAssignment::from_vec(vec![1.0, 16.0]);
        let c = cfg();
        let r0 = powers.range_of(&c, 0);
        let r1 = powers.range_of(&c, 1);
        assert!((r0 - 1.0).abs() < 1e-12);
        assert!((r1 - 2.0).abs() < 1e-12, "16x power doubles range at α=4");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_power() {
        let _ = PowerAssignment::from_vec(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn rejects_mismatched_assignment() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let g = UnitDiskGraph::new(pts, 1.0);
        let model = NonUniformSinrModel::new(cfg(), PowerAssignment::uniform(1, 1.0));
        let _ = model.resolve(&g, &[0]);
    }
}
