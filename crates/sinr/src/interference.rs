//! Received power, aggregate interference, and SINR evaluation.
//!
//! Also implements the *probabilistic interference* `Ψ` of §IV, used by
//! experiment E8 to check Lemma 3 empirically.

use crate::config::SinrConfig;
use sinr_geometry::{NodeId, Point};

/// `dist^α`, with a multiply-only fast path for the common integer
/// exponents (`α ∈ {2, 3, 4, 6}`, covering every profile in
/// `docs/PARAMETERS.md`; `α = 4` is the default).
///
/// `powf` dominates the resolver's inner loop, so the α = 4 case alone is
/// worth several ×. All SINR evaluation funnels through this function, so
/// fast and naive resolvers stay bit-identical by construction.
#[inline]
pub fn dist_pow_alpha(dist: f64, alpha: f64) -> f64 {
    if alpha == 4.0 {
        let d2 = dist * dist;
        d2 * d2
    } else if alpha == 2.0 {
        dist * dist
    } else if alpha == 3.0 {
        dist * dist * dist
    } else if alpha == 6.0 {
        let d2 = dist * dist;
        d2 * d2 * d2
    } else {
        dist.powf(alpha)
    }
}

/// Power received at distance `dist` from a transmitter of power `power`
/// under path loss `α`: `P / δ^α`.
///
/// Returns `f64::INFINITY` at distance 0 (co-located transceiver), which the
/// reception logic treats as "own transmission" and never decodes.
#[inline]
pub fn received_power(power: f64, dist: f64, alpha: f64) -> f64 {
    if dist <= 0.0 {
        f64::INFINITY
    } else {
        power / dist_pow_alpha(dist, alpha)
    }
}

/// [`received_power`] from the *squared* distance, skipping the square
/// root for even `α` (`δ^α = (δ²)^{α/2}`).
///
/// Agrees with `received_power(p, d2.sqrt(), α)` up to floating-point
/// rounding — callers that need bit-exact parity with the distance-based
/// path (the resolvers' fallback sums) must keep using [`received_power`];
/// this variant is for bound computations that carry their own slack.
#[inline]
pub fn received_power_d2(power: f64, dist_sq: f64, alpha: f64) -> f64 {
    if dist_sq <= 0.0 {
        f64::INFINITY
    } else if alpha == 4.0 {
        power / (dist_sq * dist_sq)
    } else if alpha == 2.0 {
        power / dist_sq
    } else if alpha == 6.0 {
        let d4 = dist_sq * dist_sq;
        power / (d4 * dist_sq)
    } else {
        power / dist_sq.powf(alpha * 0.5)
    }
}

/// Aggregate received power at `at` from all `transmitters` (positions),
/// under `cfg`'s power and path loss.
pub fn total_received_power(cfg: &SinrConfig, at: Point, transmitters: &[Point]) -> f64 {
    transmitters
        .iter()
        .map(|&t| received_power(cfg.power(), at.distance(t), cfg.alpha()))
        .sum()
}

/// The SINR at receiver `at` for signal arriving from `sender`, given the
/// *total* received power at `at` (signal included) from all simultaneous
/// transmitters.
///
/// Computing from the total lets callers share one `O(T)` interference sum
/// across all candidate senders of a slot.
#[inline]
pub fn sinr_from_total(cfg: &SinrConfig, at: Point, sender: Point, total_power: f64) -> f64 {
    let signal = received_power(cfg.power(), at.distance(sender), cfg.alpha());
    let interference = (total_power - signal).max(0.0);
    signal / (cfg.noise() + interference)
}

/// Whether receiver `at` decodes `sender` per the paper's reception rule:
/// `δ ≤ R_T` *and* `SINR ≥ β`, with interference from `others`
/// (simultaneous transmitters excluding the sender).
///
/// # Example
///
/// ```
/// use sinr_geometry::Point;
/// use sinr_model::SinrConfig;
/// use sinr_model::interference::decodes;
///
/// let cfg = SinrConfig::default_unit();
/// let rx = Point::new(0.0, 0.0);
/// let tx = Point::new(0.9, 0.0);
/// assert!(decodes(&cfg, rx, tx, &[]));
/// // A co-located jammer kills the link.
/// assert!(!decodes(&cfg, rx, tx, &[Point::new(0.0, 0.1)]));
/// ```
pub fn decodes(cfg: &SinrConfig, at: Point, sender: Point, others: &[Point]) -> bool {
    if at.distance(sender) > cfg.r_t() {
        return false;
    }
    let signal = received_power(cfg.power(), at.distance(sender), cfg.alpha());
    let interference = total_received_power(cfg, at, others);
    signal / (cfg.noise() + interference) >= cfg.beta()
}

/// The probabilistic interference `Ψ_u^v = p_v / δ(u,v)^α` of one node, §IV.
#[inline]
pub fn psi_single(send_probability: f64, dist: f64, alpha: f64) -> f64 {
    if dist <= 0.0 {
        f64::INFINITY
    } else {
        send_probability / dist_pow_alpha(dist, alpha)
    }
}

/// The probabilistic interference at `u` induced by all nodes farther than
/// `exclusion_radius`: `Ψ_u^{v ∉ R} = P · Σ_{δ(u,v) > exclusion_radius}
/// p_v / δ(u,v)^α` (§IV).
///
/// Lemma 3 asserts this is at most [`SinrConfig::lemma3_budget`] whenever the
/// sum of send probabilities inside any `R_T`-disk is at most 2; experiment
/// E8 evaluates the sum exactly during algorithm runs.
///
/// # Panics
///
/// Panics if `positions` and `send_probabilities` have different lengths.
pub fn psi_outside(
    cfg: &SinrConfig,
    positions: &[Point],
    send_probabilities: &[f64],
    u: NodeId,
    exclusion_radius: f64,
) -> f64 {
    assert_eq!(
        positions.len(),
        send_probabilities.len(),
        "one send probability per node"
    );
    let at = positions[u];
    let mut sum = 0.0;
    for (v, &p) in positions.iter().enumerate() {
        if v == u {
            continue;
        }
        let d = at.distance(p);
        if d > exclusion_radius {
            sum += psi_single(send_probabilities[v], d, cfg.alpha());
        }
    }
    cfg.power() * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn dist_pow_alpha_matches_powf_for_integer_exponents() {
        for &alpha in &[2.0, 3.0, 4.0, 6.0] {
            for &d in &[0.1, 0.73, 1.0, 2.5, 17.0] {
                let fast = dist_pow_alpha(d, alpha);
                let slow = d.powf(alpha);
                assert!(
                    (fast - slow).abs() <= 1e-12 * slow,
                    "alpha={alpha} d={d}: {fast} vs {slow}"
                );
            }
        }
        // Non-integer exponents fall through to powf exactly.
        assert_eq!(dist_pow_alpha(1.7, 2.5), 1.7f64.powf(2.5));
    }

    #[test]
    fn received_power_d2_matches_distance_based_path() {
        for &alpha in &[2.0, 2.5, 3.0, 4.0, 6.0] {
            for &d in &[0.1, 0.73, 1.0, 2.5, 17.0] {
                let from_d2 = received_power_d2(2.0, d * d, alpha);
                let from_d = received_power(2.0, d, alpha);
                assert!(
                    (from_d2 - from_d).abs() <= 1e-12 * from_d,
                    "alpha={alpha} d={d}: {from_d2} vs {from_d}"
                );
            }
        }
        assert!(received_power_d2(2.0, 0.0, 4.0).is_infinite());
    }

    #[test]
    fn received_power_decays_with_distance() {
        let p1 = received_power(1.0, 1.0, 4.0);
        let p2 = received_power(1.0, 2.0, 4.0);
        assert_eq!(p1, 1.0);
        assert!((p2 - 1.0 / 16.0).abs() < 1e-12);
        assert!(received_power(1.0, 0.0, 4.0).is_infinite());
    }

    #[test]
    fn lone_sender_within_rt_decodes() {
        let c = cfg();
        let rx = Point::ORIGIN;
        // Exactly at R_T the SINR equals beta (noise-only): decodes.
        let tx = Point::new(c.r_t(), 0.0);
        assert!(decodes(&c, rx, tx, &[]));
        // Just beyond R_T: rejected by the range rule even though SNR may
        // still be above threshold (R_T < R_max).
        let far = Point::new(c.r_t() * 1.01, 0.0);
        assert!(!decodes(&c, rx, far, &[]));
    }

    #[test]
    fn interference_breaks_reception() {
        let c = cfg();
        let rx = Point::ORIGIN;
        let tx = Point::new(0.9, 0.0);
        assert!(decodes(&c, rx, tx, &[]));
        // Equidistant interferer: SINR ≈ signal/signal = 1 < beta.
        assert!(!decodes(&c, rx, tx, &[Point::new(-0.9, 0.0)]));
    }

    #[test]
    fn far_interferer_is_harmless() {
        let c = cfg();
        let rx = Point::ORIGIN;
        let tx = Point::new(0.5, 0.0);
        assert!(decodes(&c, rx, tx, &[Point::new(100.0, 0.0)]));
    }

    #[test]
    fn more_interferers_never_help() {
        // SINR monotonicity: adding a transmitter can only lower the SINR.
        let c = cfg();
        let rx = Point::ORIGIN;
        let tx = Point::new(0.8, 0.0);
        let mut others = Vec::new();
        let mut last = f64::INFINITY;
        for k in 1..6 {
            others.push(Point::new(-2.0 * k as f64, 1.0));
            let total = total_received_power(&c, rx, &others)
                + received_power(c.power(), rx.distance(tx), c.alpha());
            let s = sinr_from_total(&c, rx, tx, total);
            assert!(s <= last + 1e-12);
            last = s;
        }
    }

    #[test]
    fn sinr_from_total_matches_direct_computation() {
        let c = cfg();
        let rx = Point::ORIGIN;
        let tx = Point::new(0.7, 0.2);
        let others = [Point::new(3.0, 1.0), Point::new(-2.0, -2.0)];
        let mut all = others.to_vec();
        all.push(tx);
        let total = total_received_power(&c, rx, &all);
        let s = sinr_from_total(&c, rx, tx, total);
        let direct = received_power(c.power(), rx.distance(tx), c.alpha())
            / (c.noise() + total_received_power(&c, rx, &others));
        assert!((s - direct).abs() < 1e-12);
    }

    #[test]
    fn psi_outside_excludes_near_nodes() {
        let c = cfg();
        let positions = vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),  // inside exclusion radius 2
            Point::new(10.0, 0.0), // outside
        ];
        let probs = vec![0.5, 0.5, 0.5];
        let psi = psi_outside(&c, &positions, &probs, 0, 2.0);
        let expected = c.power() * 0.5 / 10.0f64.powf(c.alpha());
        assert!((psi - expected).abs() < 1e-15);
    }

    #[test]
    fn psi_outside_zero_when_everyone_near() {
        let c = cfg();
        let positions = vec![Point::ORIGIN, Point::new(0.5, 0.0)];
        let probs = vec![1.0, 1.0];
        assert_eq!(psi_outside(&c, &positions, &probs, 0, 1.0), 0.0);
    }
}
