//! Rayleigh-fading extension of the SINR model.
//!
//! The paper's model is deterministic path loss (`P/δ^α`). Real channels
//! fluctuate; the standard stochastic refinement multiplies every received
//! power by an independent exponential(1) *fading gain* per transmission
//! (Rayleigh fading of the amplitude). Reception then becomes a random
//! event even for a lone in-range sender — a robustness stress the MW
//! analysis does not cover, measured in experiment E18.

use crate::config::SinrConfig;
use crate::model::{InterferenceModel, ReceptionTable};
use sinr_geometry::{NodeId, UnitDiskGraph};
use std::cell::Cell;

/// SINR reception with per-(slot, link) exponential fading gains.
///
/// Gains are derived deterministically from `(seed, invocation counter,
/// receiver, sender)`, so runs remain reproducible: the engine calls
/// `resolve` once per slot, and the counter plays the role of the slot
/// index.
///
/// `severity ∈ [0, 1]` interpolates between the deterministic model (0)
/// and full Rayleigh fading (1): the gain used is
/// `(1 − severity) + severity·X`, `X ~ Exp(1)`.
#[derive(Debug)]
pub struct FadingSinrModel {
    cfg: SinrConfig,
    seed: u64,
    severity: f64,
    invocation: Cell<u64>,
}

impl FadingSinrModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is outside `[0, 1]`.
    pub fn new(cfg: SinrConfig, seed: u64, severity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&severity),
            "fading severity must be in [0, 1]"
        );
        FadingSinrModel {
            cfg,
            seed,
            severity,
            invocation: Cell::new(0),
        }
    }

    /// The underlying physical configuration.
    pub fn config(&self) -> &SinrConfig {
        &self.cfg
    }

    /// The fading gain for link `(receiver, sender)` in invocation `t`.
    fn gain(&self, t: u64, receiver: NodeId, sender: NodeId) -> f64 {
        // SplitMix64 over the tuple gives an i.i.d.-quality uniform draw.
        let mut z = self
            .seed
            .wrapping_add(t.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((receiver as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((sender as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Uniform in (0, 1]; exponential via inverse CDF.
        let u = ((z >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
        let x = -u.ln();
        (1.0 - self.severity) + self.severity * x
    }
}

impl InterferenceModel for FadingSinrModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        let t = self.invocation.get();
        self.invocation.set(t + 1);
        let positions = g.positions();
        let alpha = self.cfg.alpha();
        let mut is_tx = vec![false; g.len()];
        for &v in transmitting {
            is_tx[v] = true;
        }
        let mut pairs = Vec::new();
        let mut candidate_mark = vec![false; g.len()];
        for &tx in transmitting {
            for &u in g.neighbors(tx) {
                if is_tx[u] || candidate_mark[u] {
                    continue;
                }
                candidate_mark[u] = true;
                // Faded received powers at u from every transmitter.
                let powers: Vec<(NodeId, f64)> = transmitting
                    .iter()
                    .map(|&w| {
                        let d = positions[u].distance(positions[w]);
                        let p = if d <= 0.0 {
                            f64::INFINITY
                        } else {
                            self.cfg.power() * self.gain(t, u, w) / d.powf(alpha)
                        };
                        (w, p)
                    })
                    .collect();
                let total: f64 = powers.iter().map(|&(_, p)| p).sum();
                let mut best: Option<(f64, NodeId)> = None;
                for &(v, signal) in &powers {
                    if !g.are_adjacent(u, v) {
                        continue; // the paper's R_T decoding-range rule
                    }
                    let sinr = signal / (self.cfg.noise() + (total - signal).max(0.0));
                    if sinr >= self.cfg.beta() && best.is_none_or(|(bs, _)| sinr > bs) {
                        best = Some((sinr, v));
                    }
                }
                if let Some((_, v)) = best {
                    pairs.push((u, v));
                }
            }
        }
        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "sinr-fading"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SinrModel;
    use sinr_geometry::{placement, Point};

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn zero_severity_matches_deterministic_model() {
        let g = UnitDiskGraph::new(placement::uniform(30, 3.0, 3.0, 2), cfg().r_t());
        let det = SinrModel::new(cfg());
        let fad = FadingSinrModel::new(cfg(), 9, 0.0);
        for tx in [vec![0], vec![1, 5, 9], vec![2, 3, 4, 5, 6]] {
            assert_eq!(det.resolve(&g, &tx), fad.resolve(&g, &tx), "tx={tx:?}");
        }
    }

    #[test]
    fn full_fading_sometimes_drops_a_clear_link() {
        // A lone sender at mid range: deterministic model always delivers;
        // Rayleigh fading must fail occasionally over many slots.
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0)],
            cfg().r_t(),
        );
        let fad = FadingSinrModel::new(cfg(), 3, 1.0);
        let mut failures = 0;
        let trials = 500;
        for _ in 0..trials {
            if fad.resolve(&g, &[1]).is_empty() {
                failures += 1;
            }
        }
        assert!(failures > 0, "fading never dropped the link");
        assert!(failures < trials, "fading always dropped the link");
    }

    #[test]
    fn severity_increases_loss() {
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(0.95, 0.0)],
            cfg().r_t(),
        );
        let loss = |severity: f64| -> usize {
            let fad = FadingSinrModel::new(cfg(), 3, severity);
            (0..400)
                .filter(|_| fad.resolve(&g, &[1]).is_empty())
                .count()
        };
        let low = loss(0.2);
        let high = loss(1.0);
        assert!(
            high > low,
            "severity 1.0 lost {high} <= severity 0.2 lost {low}"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let g = UnitDiskGraph::new(placement::uniform(20, 2.5, 2.5, 4), cfg().r_t());
        let run = |seed: u64| -> Vec<usize> {
            let fad = FadingSinrModel::new(cfg(), seed, 0.7);
            (0..50)
                .map(|_| fad.resolve(&g, &[0, 7, 13]).len())
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn invocations_decorrelate_slots() {
        // The same transmitter set must not produce identical outcomes
        // every slot under fading (each invocation draws fresh gains).
        let g = UnitDiskGraph::new(
            vec![Point::new(0.0, 0.0), Point::new(0.97, 0.0)],
            cfg().r_t(),
        );
        let fad = FadingSinrModel::new(cfg(), 11, 1.0);
        let outcomes: Vec<usize> = (0..100).map(|_| fad.resolve(&g, &[1]).len()).collect();
        assert!(outcomes.contains(&0));
        assert!(outcomes.contains(&1));
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn rejects_out_of_range_severity() {
        let _ = FadingSinrModel::new(cfg(), 0, 1.5);
    }
}
