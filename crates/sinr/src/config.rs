//! Physical-layer parameters and every radius/constant derived from them.

use std::fmt;

/// The `16` of Theorem 3's proof: with same-color transmitters kept at
/// pairwise distance `> d·R_T`, the interference any receiver accumulates
/// is at most `16·P/((d·R_T)^α)·(α−1)/(α−2)` (annulus-counting argument).
pub const THEOREM3_PROOF_FACTOR: f64 = 16.0;

/// Errors produced when validating a [`SinrConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The path-loss exponent must satisfy `α > 2` (required for the
    /// geometric interference sums of Lemma 3 and Theorem 3 to converge).
    PathLossTooSmall,
    /// The decoding threshold must satisfy `β ≥ 1` (paper §II).
    BetaTooSmall,
    /// The Markov slack must satisfy `ρ > 1` (paper §II: "`R_I ≥ 2R_T` for a
    /// well chosen constant `ρ > 1`").
    RhoTooSmall,
    /// Power and noise must be strictly positive and finite.
    NonPositivePhysical,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::PathLossTooSmall => write!(f, "path-loss exponent must exceed 2"),
            ConfigError::BetaTooSmall => write!(f, "SINR threshold beta must be at least 1"),
            ConfigError::RhoTooSmall => write!(f, "Markov slack rho must exceed 1"),
            ConfigError::NonPositivePhysical => {
                write!(f, "power and noise must be positive and finite")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The SINR physical-model parameters of §II, with all derived quantities.
///
/// Immutable after construction; constructors validate the paper's
/// constraints (`α > 2`, `β ≥ 1`, `ρ > 1`, `P, N > 0`).
///
/// Derived quantities:
///
/// * `R_max = (P/(Nβ))^{1/α}` — maximal decoding range with zero
///   interference.
/// * `R_T = (P/(2Nβ))^{1/α}` — the *transmission range*; the UDG edge
///   threshold (footnote 4: any value `< R_max` works, this is the paper's
///   choice).
/// * `R_I = 2 R_T (96 ρ β (α−1)/(α−2))^{1/(α−2)}` — the *interference
///   disk* radius: Lemma 3 shows interference from outside `R_I` is
///   negligible.
/// * `d = (32 (α−1)/(α−2) β)^{1/α}` — the Theorem-3 guard distance: a
///   `(d+1, V)`-coloring yields an interference-free TDMA schedule.
///
/// # Example
///
/// ```
/// use sinr_model::SinrConfig;
///
/// let cfg = SinrConfig::new(1.0, 4.0, 1.5, 0.01, 2.0)?;
/// assert!(cfg.r_t() < cfg.r_max());
/// # Ok::<(), sinr_model::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrConfig {
    power: f64,
    alpha: f64,
    beta: f64,
    noise: f64,
    rho: f64,
}

impl SinrConfig {
    /// Creates a configuration from raw physical parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `alpha ≤ 2`, `beta < 1`, `rho ≤ 1`, or
    /// `power`/`noise` is not strictly positive and finite.
    pub fn new(
        power: f64,
        alpha: f64,
        beta: f64,
        noise: f64,
        rho: f64,
    ) -> Result<Self, ConfigError> {
        if !(power.is_finite() && noise.is_finite() && power > 0.0 && noise > 0.0) {
            return Err(ConfigError::NonPositivePhysical);
        }
        if !(alpha.is_finite() && alpha > 2.0) {
            return Err(ConfigError::PathLossTooSmall);
        }
        if !(beta.is_finite() && beta >= 1.0) {
            return Err(ConfigError::BetaTooSmall);
        }
        if !(rho.is_finite() && rho > 1.0) {
            return Err(ConfigError::RhoTooSmall);
        }
        Ok(SinrConfig {
            power,
            alpha,
            beta,
            noise,
            rho,
        })
    }

    /// A configuration normalized so that `R_T = 1`: power is fixed at 1 and
    /// the noise is solved from `R_T = (P/(2Nβ))^{1/α} = 1`, i.e.
    /// `N = 1/(2β)`.
    ///
    /// Convenient because placements can then use `R_T = 1` directly.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate the constraints of
    /// [`SinrConfig::new`]; use `new` for fallible construction.
    pub fn with_unit_range(alpha: f64, beta: f64, rho: f64) -> Self {
        SinrConfig::new(1.0, alpha, beta, 1.0 / (2.0 * beta), rho)
            .expect("unit-range construction from valid alpha/beta/rho")
    }

    /// A reasonable default: `α = 4`, `β = 1.5`, `ρ = 2`, normalized to
    /// `R_T = 1`.
    pub fn default_unit() -> Self {
        SinrConfig::with_unit_range(4.0, 1.5, 2.0)
    }

    /// Transmission power `P` (uniform across nodes, paper footnote 3).
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Path-loss exponent `α > 2`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Decoding threshold `β ≥ 1`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Ambient noise `N > 0`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Markov slack `ρ > 1` used by Lemma 1/Lemma 3 (the probability that
    /// far interference exceeds `ρ` times its mean is at most `1/ρ`).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Maximal interference-free decoding range
    /// `R_max = (P/(Nβ))^{1/α}`.
    pub fn r_max(&self) -> f64 {
        (self.power / (self.noise * self.beta)).powf(1.0 / self.alpha)
    }

    /// Transmission range `R_T = (P/(2Nβ))^{1/α}` (§II).
    pub fn r_t(&self) -> f64 {
        (self.power / (2.0 * self.noise * self.beta)).powf(1.0 / self.alpha)
    }

    /// Interference-disk radius
    /// `R_I = 2 R_T (96 ρ β (α−1)/(α−2))^{1/(α−2)}` (§II).
    pub fn r_i(&self) -> f64 {
        let base = 96.0 * self.rho * self.beta * (self.alpha - 1.0) / (self.alpha - 2.0);
        2.0 * self.r_t() * base.powf(1.0 / (self.alpha - 2.0))
    }

    /// Theorem-3 guard distance `d = (32 (α−1)/(α−2) β)^{1/α}`: a
    /// `(d+1, V)`-coloring schedules an interference-free TDMA MAC layer.
    pub fn guard_distance(&self) -> f64 {
        (32.0 * (self.alpha - 1.0) / (self.alpha - 2.0) * self.beta).powf(1.0 / self.alpha)
    }

    /// The Lemma-3 budget `P/(2ρβR_T^α)`: the probabilistic interference
    /// any node receives from outside its interference disk is at most this.
    pub fn lemma3_budget(&self) -> f64 {
        self.power / (2.0 * self.rho * self.beta * self.r_t().powf(self.alpha))
    }

    /// A copy of this configuration with power multiplied by `factor^α`,
    /// which scales every derived radius by `factor`.
    ///
    /// This is the §V power-tuning step: "set the transmission power of
    /// every node to `O(d^α · P)`" so the algorithm colors
    /// `G^d = (V, E', d·R_T)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled_range(&self, factor: f64) -> SinrConfig {
        assert!(
            factor.is_finite() && factor > 0.0,
            "range scaling factor must be positive"
        );
        SinrConfig {
            power: self.power * factor.powf(self.alpha),
            ..*self
        }
    }
}

impl Default for SinrConfig {
    fn default() -> Self {
        SinrConfig::default_unit()
    }
}

impl fmt::Display for SinrConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SINR(P={}, alpha={}, beta={}, N={}, rho={}; R_T={:.3}, R_I={:.3})",
            self.power,
            self.alpha,
            self.beta,
            self.noise,
            self.rho,
            self.r_t(),
            self.r_i()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_has_rt_one() {
        let cfg = SinrConfig::with_unit_range(4.0, 1.5, 2.0);
        assert!((cfg.r_t() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rt_below_rmax() {
        for &(a, b) in &[(2.5, 1.0), (3.0, 1.5), (4.0, 2.0), (6.0, 3.0)] {
            let cfg = SinrConfig::new(2.0, a, b, 0.05, 1.5).unwrap();
            assert!(cfg.r_t() < cfg.r_max(), "alpha={a} beta={b}");
        }
    }

    #[test]
    fn ri_at_least_twice_rt() {
        // Paper §II: "R_I ≥ 2R_T for a well chosen constant ρ > 1".
        for &(a, b, r) in &[(2.5, 1.0, 1.1), (3.0, 1.0, 2.0), (4.0, 2.0, 4.0)] {
            let cfg = SinrConfig::new(1.0, a, b, 0.01, r).unwrap();
            assert!(cfg.r_i() >= 2.0 * cfg.r_t());
        }
    }

    #[test]
    fn guard_distance_formula() {
        let cfg = SinrConfig::with_unit_range(4.0, 1.5, 2.0);
        let expected = (32.0f64 * 3.0 / 2.0 * 1.5).powf(0.25);
        assert!((cfg.guard_distance() - expected).abs() < 1e-12);
    }

    #[test]
    fn scaled_range_scales_all_radii() {
        let cfg = SinrConfig::default_unit();
        let d = 3.0;
        let scaled = cfg.scaled_range(d);
        assert!((scaled.r_t() - d * cfg.r_t()).abs() < 1e-9);
        assert!((scaled.r_max() - d * cfg.r_max()).abs() < 1e-9);
        assert!((scaled.r_i() - d * cfg.r_i()).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            SinrConfig::new(1.0, 2.0, 1.0, 0.1, 2.0),
            Err(ConfigError::PathLossTooSmall)
        );
        assert_eq!(
            SinrConfig::new(1.0, 4.0, 0.5, 0.1, 2.0),
            Err(ConfigError::BetaTooSmall)
        );
        assert_eq!(
            SinrConfig::new(1.0, 4.0, 1.0, 0.1, 1.0),
            Err(ConfigError::RhoTooSmall)
        );
        assert_eq!(
            SinrConfig::new(0.0, 4.0, 1.0, 0.1, 2.0),
            Err(ConfigError::NonPositivePhysical)
        );
        assert_eq!(
            SinrConfig::new(1.0, 4.0, 1.0, -0.1, 2.0),
            Err(ConfigError::NonPositivePhysical)
        );
    }

    #[test]
    fn lemma3_budget_positive_and_decreasing_in_rho() {
        let a = SinrConfig::new(1.0, 4.0, 1.5, 0.01, 2.0).unwrap();
        let b = SinrConfig::new(1.0, 4.0, 1.5, 0.01, 4.0).unwrap();
        assert!(a.lemma3_budget() > 0.0);
        assert!(b.lemma3_budget() < a.lemma3_budget());
    }

    #[test]
    fn default_is_valid() {
        let cfg = SinrConfig::default();
        assert!(cfg.r_i() > cfg.r_t());
        assert!(cfg.guard_distance() > 1.0);
    }

    #[test]
    fn display_mentions_radii() {
        let s = format!("{}", SinrConfig::default_unit());
        assert!(s.contains("R_T"));
        assert!(s.contains("R_I"));
    }
}
