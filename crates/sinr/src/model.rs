//! Pluggable per-slot reception resolution: the SINR physical model, the
//! graph-based model, and an ideal collision-free model.

use crate::config::SinrConfig;
use crate::interference::{received_power, sinr_from_total};
use crate::resolver::ResolverStats;
use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_pool::{PerThread, Pool};

/// Minimum number of candidate receivers in a slot before a resolver
/// fans work out to the pool. Below this the per-broadcast wake/merge
/// cost exceeds the work being split.
pub const PAR_CANDIDATE_CUTOFF: usize = 64;

/// The outcome of one time slot: which receivers heard which senders.
///
/// Stored sparsely as `(receiver, sender)` pairs sorted by receiver, since
/// in interference-limited slots only a few receptions succeed. Under
/// models with `β ≥ 1` each receiver hears at most one sender; the ideal
/// model may deliver several.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReceptionTable {
    pairs: Vec<(NodeId, NodeId)>,
}

impl ReceptionTable {
    /// Builds a table from `(receiver, sender)` pairs (sorts them).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        ReceptionTable { pairs }
    }

    /// Empties the table while keeping its buffer capacity, so a reused
    /// table never reallocates once it has grown to the slot's working
    /// size.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Takes the pair buffer out, leaving the table empty. Paired with
    /// [`ReceptionTable::set_pairs`], this lets a resolver fill a
    /// caller-owned table in place without allocating a fresh `Vec` per
    /// slot (see [`InterferenceModel::resolve_delta_into`]).
    pub fn take_pairs(&mut self) -> Vec<(NodeId, NodeId)> {
        std::mem::take(&mut self.pairs)
    }

    /// Replaces the table contents with `pairs` (sorts them — the same
    /// contract as [`ReceptionTable::from_pairs`]).
    pub fn set_pairs(&mut self, mut pairs: Vec<(NodeId, NodeId)>) {
        pairs.sort_unstable();
        self.pairs = pairs;
    }

    /// All senders heard by `receiver` this slot, in ascending id order.
    pub fn heard_by(&self, receiver: NodeId) -> &[(NodeId, NodeId)] {
        let start = self.pairs.partition_point(|&(r, _)| r < receiver);
        let end = self.pairs.partition_point(|&(r, _)| r <= receiver);
        &self.pairs[start..end]
    }

    /// The unique sender heard by `receiver`, if exactly one was heard.
    pub fn unique_sender(&self, receiver: NodeId) -> Option<NodeId> {
        match self.heard_by(receiver) {
            [(_, s)] => Some(*s),
            _ => None,
        }
    }

    /// Iterator over all `(receiver, sender)` receptions of the slot.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pairs.iter().copied()
    }

    /// The full reception list, sorted by receiver (then sender).
    ///
    /// Exposed so delivery loops can merge-join the table against an
    /// ascending receiver sweep instead of binary-searching
    /// [`ReceptionTable::heard_by`] once per node.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Total number of successful receptions.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing was received this slot.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether `sender` was heard by *every* neighbor of `sender` in `g` —
    /// the paper's notion of a *successful transmission* ("a message is
    /// received by all its neighbors", §IV).
    pub fn is_successful_broadcast(&self, g: &UnitDiskGraph, sender: NodeId) -> bool {
        g.neighbors(sender)
            .iter()
            .all(|&u| self.heard_by(u).iter().any(|&(_, s)| s == sender))
    }
}

/// The change in the transmitter set since the previous resolved slot,
/// as reported by a driver that tracks per-node transitions anyway (the
/// slot engine computes both lists for free during its action phase).
///
/// `started` are nodes transmitting now that were silent last slot;
/// `stopped` are nodes silent now that transmitted last slot. Together
/// with the previous set they determine the current one. Stateful
/// resolvers use the delta to update persistent indices in `O(|delta|)`
/// instead of rebuilding in `O(k)`; they remain responsible for verifying
/// the delta against their own state and rebuilding when it is
/// inconsistent, so a wrong delta can cost time but never correctness.
#[derive(Debug, Clone, Copy)]
pub struct TxDelta<'a> {
    /// Nodes that began transmitting this slot.
    pub started: &'a [NodeId],
    /// Nodes that ceased transmitting this slot.
    pub stopped: &'a [NodeId],
}

/// A per-slot reception resolver.
///
/// Given the communication graph (positions + `R_T` adjacency) and the set
/// of nodes transmitting in the current slot, decides which listeners
/// successfully decode which senders. All models are half-duplex: a
/// transmitting node never receives.
pub trait InterferenceModel {
    /// Resolves one slot.
    ///
    /// `transmitting` must contain valid node ids of `g` (duplicates are not
    /// allowed). Listeners are all non-transmitting nodes.
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable;

    /// Resolves one slot, additionally handing the model the transmitter-set
    /// change since the slot it last resolved (see [`TxDelta`]).
    ///
    /// The default ignores the delta and calls [`InterferenceModel::resolve`];
    /// stateless models need not care. Implementations must return exactly
    /// what `resolve(g, transmitting)` would — the delta is a pure
    /// performance hint, never allowed to change the table.
    fn resolve_delta(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
    ) -> ReceptionTable {
        let _ = delta;
        self.resolve(g, transmitting)
    }

    /// Resolves one slot into a caller-owned table, recycling its buffer.
    ///
    /// Semantically identical to `*out = self.resolve_delta(g,
    /// transmitting, delta)` — and that is the default. Stateful
    /// resolvers override it to refill `out`'s existing allocation, so a
    /// driver that keeps one table across slots performs zero
    /// allocations per steady-state slot (the dynamic counterpart of the
    /// static hot-path rule L8; `tests/alloc_profile.rs` enforces it).
    fn resolve_delta_into(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
        out: &mut ReceptionTable,
    ) {
        *out = self.resolve_delta(g, transmitting, delta);
    }

    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// Cumulative fast-path statistics, for resolvers that track them
    /// (see [`FastSinrModel`](crate::FastSinrModel)); `None` otherwise.
    fn resolver_stats(&self) -> Option<ResolverStats> {
        None
    }

    /// Installs a worker pool for models that can resolve receivers in
    /// parallel. The default is a no-op: purely local models (graph,
    /// ideal) ignore it. Parallel resolution must stay bit-identical to
    /// the sequential run — chunks are static and merged in chunk order.
    fn set_pool(&mut self, pool: &Pool) {
        let _ = pool;
    }
}

impl<M: InterferenceModel + ?Sized> InterferenceModel for Box<M> {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        (**self).resolve(g, transmitting)
    }

    fn resolve_delta(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
    ) -> ReceptionTable {
        (**self).resolve_delta(g, transmitting, delta)
    }

    fn resolve_delta_into(
        &self,
        g: &UnitDiskGraph,
        transmitting: &[NodeId],
        delta: TxDelta<'_>,
        out: &mut ReceptionTable,
    ) {
        (**self).resolve_delta_into(g, transmitting, delta, out)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn resolver_stats(&self) -> Option<ResolverStats> {
        (**self).resolver_stats()
    }

    fn set_pool(&mut self, pool: &Pool) {
        (**self).set_pool(pool)
    }
}

/// The paper's physical model: receiver `u` decodes sender `v` iff
/// `δ(u, v) ≤ R_T` and the SINR against *all* simultaneous transmitters
/// plus ambient noise is at least `β` (§II).
///
/// With `β ≥ 1` at most one sender can be decodable at any receiver, so the
/// strongest qualifying sender is delivered.
#[derive(Debug, Clone)]
pub struct SinrModel {
    cfg: SinrConfig,
    pool: Pool,
}

impl SinrModel {
    /// Creates the model from a physical configuration (sequential).
    pub fn new(cfg: SinrConfig) -> Self {
        SinrModel {
            cfg,
            pool: Pool::sequential(),
        }
    }

    /// Creates the model with a worker pool for parallel resolution.
    pub fn with_pool(cfg: SinrConfig, pool: Pool) -> Self {
        SinrModel { cfg, pool }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SinrConfig {
        &self.cfg
    }

    /// Decodes one candidate receiver `u`: the strongest sender within
    /// `R_T` whose SINR against the whole transmitter set clears `β`.
    /// Pure in `(u, transmitting)`, so per-receiver results are the same
    /// no matter which thread (or chunk) computes them.
    fn decode_at(&self, g: &UnitDiskGraph, transmitting: &[NodeId], u: NodeId) -> Option<NodeId> {
        let positions = g.positions();
        // Total received power at u from every transmitter.
        let total: f64 = transmitting
            .iter()
            .map(|&w| {
                received_power(
                    self.cfg.power(),
                    positions[u].distance(positions[w]),
                    self.cfg.alpha(),
                )
            })
            .sum();
        // Best decodable sender among transmitters within R_T.
        let mut best: Option<(f64, NodeId)> = None;
        for &v in transmitting {
            if g.are_adjacent(u, v) {
                let s = sinr_from_total(&self.cfg, positions[u], positions[v], total);
                if s >= self.cfg.beta() && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, v));
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

impl InterferenceModel for SinrModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        debug_assert!(
            (g.radius() - self.cfg.r_t()).abs() < 1e-9 * self.cfg.r_t().max(1.0),
            "graph radius {} does not match configured R_T {}",
            g.radius(),
            self.cfg.r_t()
        );
        let mut is_tx = vec![false; g.len()];
        for &t in transmitting {
            debug_assert!(!is_tx[t], "node {t} transmits twice in one slot");
            is_tx[t] = true;
        }

        // Candidate receivers: non-transmitting neighbors of any transmitter,
        // in discovery order (per transmitter, then per neighbor).
        let mut candidates = Vec::new();
        let mut candidate_mark = vec![false; g.len()];
        for &t in transmitting {
            for &u in g.neighbors(t) {
                if !is_tx[u] && !candidate_mark[u] {
                    candidate_mark[u] = true;
                    candidates.push(u);
                }
            }
        }

        let pairs: Vec<(NodeId, NodeId)> =
            if self.pool.threads() > 1 && candidates.len() >= PAR_CANDIDATE_CUTOFF {
                // Static chunks over the candidate list; each thread decodes
                // its receivers in candidate order and the per-thread pair
                // lists are concatenated in chunk order, so the merged list
                // matches the sequential one exactly.
                let outputs: PerThread<Vec<(NodeId, NodeId)>> =
                    PerThread::new(self.pool.threads(), |_| Vec::new());
                self.pool.run_chunks(candidates.len(), |t, range| {
                    outputs.with(t, |out| {
                        for &u in &candidates[range] {
                            if let Some(v) = self.decode_at(g, transmitting, u) {
                                out.push((u, v));
                            }
                        }
                    })
                });
                let mut merged = Vec::new();
                for chunk in outputs.into_iter() {
                    merged.extend(chunk);
                }
                merged
            } else {
                candidates
                    .iter()
                    .filter_map(|&u| self.decode_at(g, transmitting, u).map(|v| (u, v)))
                    .collect()
            };
        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "sinr"
    }

    fn set_pool(&mut self, pool: &Pool) {
        self.pool = pool.clone();
    }
}

/// The graph-based model of the original MW analysis: a node hears a
/// message iff *exactly one* of its neighbors transmits (and it is silent
/// itself). Interference is purely local.
#[derive(Debug, Clone, Default)]
pub struct GraphModel;

impl GraphModel {
    /// Creates the graph-based model.
    pub fn new() -> Self {
        GraphModel
    }
}

impl InterferenceModel for GraphModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        let mut is_tx = vec![false; g.len()];
        for &t in transmitting {
            debug_assert!(!is_tx[t], "node {t} transmits twice in one slot");
            is_tx[t] = true;
        }
        // Count transmitting neighbors per listener.
        let mut count = vec![0u32; g.len()];
        let mut last_sender = vec![0usize; g.len()];
        for &t in transmitting {
            for &u in g.neighbors(t) {
                count[u] += 1;
                last_sender[u] = t;
            }
        }
        let pairs = (0..g.len())
            .filter(|&u| !is_tx[u] && count[u] == 1)
            .map(|u| (u, last_sender[u]))
            .collect();
        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "graph"
    }
}

/// An ideal collision-free channel: every listener hears *every*
/// transmitting neighbor (still half-duplex).
///
/// This is the point-to-point message-passing substrate whose simulation
/// cost Corollary 1 bounds; it also provides round-count floors in the
/// experiments.
#[derive(Debug, Clone, Default)]
pub struct IdealModel;

impl IdealModel {
    /// Creates the ideal model.
    pub fn new() -> Self {
        IdealModel
    }
}

impl InterferenceModel for IdealModel {
    fn resolve(&self, g: &UnitDiskGraph, transmitting: &[NodeId]) -> ReceptionTable {
        let mut is_tx = vec![false; g.len()];
        for &t in transmitting {
            debug_assert!(!is_tx[t], "node {t} transmits twice in one slot");
            is_tx[t] = true;
        }
        let mut pairs = Vec::new();
        for &t in transmitting {
            for &u in g.neighbors(t) {
                if !is_tx[u] {
                    pairs.push((u, t));
                }
            }
        }
        ReceptionTable::from_pairs(pairs)
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point;

    fn graph(pts: Vec<Point>) -> UnitDiskGraph {
        UnitDiskGraph::new(pts, 1.0)
    }

    fn sinr_model() -> SinrModel {
        SinrModel::new(SinrConfig::default_unit())
    }

    #[test]
    fn lone_transmitter_reaches_all_neighbors_in_all_models() {
        let g = graph(vec![
            Point::new(0.0, 0.0),
            Point::new(0.8, 0.0),
            Point::new(-0.8, 0.0),
            Point::new(5.0, 5.0),
        ]);
        for model in [
            Box::new(sinr_model()) as Box<dyn InterferenceModel>,
            Box::new(GraphModel::new()),
            Box::new(IdealModel::new()),
        ] {
            let table = model.resolve(&g, &[0]);
            assert_eq!(table.unique_sender(1), Some(0), "{}", model.name());
            assert_eq!(table.unique_sender(2), Some(0), "{}", model.name());
            assert_eq!(table.unique_sender(3), None, "{}", model.name());
            assert!(table.is_successful_broadcast(&g, 0));
        }
    }

    #[test]
    fn transmitters_never_receive() {
        let g = graph(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for model in [
            Box::new(sinr_model()) as Box<dyn InterferenceModel>,
            Box::new(GraphModel::new()),
            Box::new(IdealModel::new()),
        ] {
            let table = model.resolve(&g, &[0, 1]);
            assert!(table.is_empty(), "{}", model.name());
        }
    }

    #[test]
    fn graph_model_collision_on_two_neighbors() {
        // u has two transmitting neighbors -> collision in the graph model.
        let g = graph(vec![
            Point::new(0.0, 0.0),  // u
            Point::new(0.9, 0.0),  // tx
            Point::new(-0.9, 0.0), // tx
        ]);
        let table = GraphModel::new().resolve(&g, &[1, 2]);
        assert_eq!(table.unique_sender(0), None);
        // Ideal model delivers both.
        let ideal = IdealModel::new().resolve(&g, &[1, 2]);
        assert_eq!(ideal.heard_by(0).len(), 2);
    }

    #[test]
    fn sinr_model_captures_far_interference_graph_model_does_not() {
        // Receiver at origin, sender at 0.95. A wall of interferers just
        // outside the receiver's R_T disk is invisible to the graph model
        // but kills the SINR.
        let mut pts = vec![Point::new(0.0, 0.0), Point::new(0.95, 0.0)];
        for k in 0..12 {
            let theta = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(Point::new(1.2 * theta.cos(), 1.2 * theta.sin()));
        }
        let g = graph(pts);
        let tx: Vec<NodeId> = (1..g.len()).collect();
        // Graph model: interferers are not neighbors of node 0, so only the
        // sender counts -> success.
        let gt = GraphModel::new().resolve(&g, &tx);
        assert_eq!(gt.unique_sender(0), Some(1));
        // SINR model: aggregate far interference breaks the link.
        let st = sinr_model().resolve(&g, &tx);
        assert_eq!(st.unique_sender(0), None);
    }

    #[test]
    fn sinr_model_near_capture() {
        // A very close sender survives one distant interferer.
        let g = graph(vec![
            Point::new(0.0, 0.0),
            Point::new(0.2, 0.0),
            Point::new(0.9, 0.0),
        ]);
        let table = sinr_model().resolve(&g, &[1, 2]);
        // Node 0 decodes node 1 (strong), not node 2.
        assert_eq!(table.unique_sender(0), Some(1));
    }

    #[test]
    fn at_most_one_sender_decodable_with_beta_ge_one() {
        let g = graph(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.5),
            Point::new(-0.5, 0.0),
        ]);
        let table = sinr_model().resolve(&g, &[1, 2, 3]);
        assert!(table.heard_by(0).len() <= 1);
    }

    #[test]
    fn reception_table_queries() {
        let t = ReceptionTable::from_pairs(vec![(2, 7), (0, 3), (2, 5)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.unique_sender(0), Some(3));
        assert_eq!(t.unique_sender(1), None);
        assert_eq!(t.unique_sender(2), None); // heard two
        assert_eq!(t.heard_by(2), &[(2, 5), (2, 7)]);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, 3), (2, 5), (2, 7)]);
    }

    #[test]
    fn empty_transmission_set() {
        let g = graph(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for model in [
            Box::new(sinr_model()) as Box<dyn InterferenceModel>,
            Box::new(GraphModel::new()),
            Box::new(IdealModel::new()),
        ] {
            assert!(model.resolve(&g, &[]).is_empty());
        }
    }

    // A duplicate transmitter id would double-count interference (SINR) or
    // inflate the neighbor-transmission count into a phantom collision
    // (graph model): every model rejects duplicates in debug builds.
    #[cfg(debug_assertions)]
    mod duplicate_transmitters {
        use super::*;

        fn dup_graph() -> UnitDiskGraph {
            graph(vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0)])
        }

        #[test]
        #[should_panic(expected = "transmits twice")]
        fn sinr_model_rejects_duplicates() {
            let _ = sinr_model().resolve(&dup_graph(), &[0, 0]);
        }

        #[test]
        #[should_panic(expected = "transmits twice")]
        fn graph_model_rejects_duplicates() {
            let _ = GraphModel::new().resolve(&dup_graph(), &[0, 0]);
        }

        #[test]
        #[should_panic(expected = "transmits twice")]
        fn ideal_model_rejects_duplicates() {
            let _ = IdealModel::new().resolve(&dup_graph(), &[0, 0]);
        }
    }

    #[test]
    fn resolver_stats_default_to_none() {
        assert!(sinr_model().resolver_stats().is_none());
        assert!(GraphModel::new().resolver_stats().is_none());
        assert!(IdealModel::new().resolver_stats().is_none());
        // Box forwarding preserves the answer.
        let boxed: Box<dyn InterferenceModel> = Box::new(GraphModel::new());
        assert!(boxed.resolver_stats().is_none());
    }

    #[test]
    fn parallel_resolution_is_bit_identical() {
        // A 20×20 lattice with ~266 candidate receivers, comfortably over
        // PAR_CANDIDATE_CUTOFF so the pooled path actually engages.
        let pts: Vec<Point> = (0..400)
            .map(|i| Point::new((i % 20) as f64 * 0.4, (i / 20) as f64 * 0.4))
            .collect();
        let g = graph(pts);
        let tx: Vec<NodeId> = (0..g.len()).step_by(3).collect();
        assert!(g.len() - tx.len() >= PAR_CANDIDATE_CUTOFF);
        let cfg = SinrConfig::default_unit();
        let expected = SinrModel::new(cfg).resolve(&g, &tx);
        for threads in [2usize, 4] {
            let par = SinrModel::with_pool(cfg, Pool::new(threads));
            assert_eq!(par.resolve(&g, &tx), expected, "threads {threads}");
        }
    }

    #[test]
    fn successful_broadcast_requires_all_neighbors() {
        // Sender 1 has neighbors 0 and 2; jam node 2's side so only 0 hears.
        let g = graph(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.8, 0.0),
            Point::new(2.4, 0.0),
        ]);
        let table = sinr_model().resolve(&g, &[1, 3]);
        assert!(!table.is_successful_broadcast(&g, 1));
        let alone = sinr_model().resolve(&g, &[1]);
        assert!(alone.is_successful_broadcast(&g, 1));
    }
}
