#![warn(missing_docs)]

//! The SINR physical interference model (and baseline models) of the paper.
//!
//! Under the SINR constraints (§II of the paper), a node `u` successfully
//! receives a message from a sender `v` iff
//!
//! ```text
//!            P / δ(u,v)^α
//! ───────────────────────────────────  ≥  β
//!  N + Σ_{w ∈ V\{v}} P / δ(u,w)^α
//! ```
//!
//! where `P` is the (uniform) transmission power, `α > 2` the path-loss
//! exponent, `β ≥ 1` the decoding threshold, and `N` the ambient noise. The
//! paper additionally requires `δ(u,v) ≤ R_T = (P/(2Nβ))^{1/α}` so that the
//! received signal is comfortably above noise.
//!
//! This crate provides:
//!
//! * [`SinrConfig`] — the physical parameters plus every derived radius and
//!   constant the paper defines (`R_max`, `R_T`, `R_I`, the Theorem-3 guard
//!   distance, the Lemma-3 interference budget).
//! * [`interference`] — received power, aggregate interference, SINR
//!   evaluation, and the *probabilistic interference* `Ψ` of §IV.
//! * [`model`] — the [`InterferenceModel`] trait with three implementations:
//!   [`SinrModel`] (the paper's physical model), [`GraphModel`] (the
//!   graph-based model the original MW analysis assumed), and
//!   [`IdealModel`] (collision-free message passing, the substrate simulated
//!   by Corollary 1).
//! * [`resolver`] — [`FastSinrModel`], a grid-tiled exact resolver producing
//!   bit-identical tables to [`SinrModel`] at a fraction of the per-slot
//!   cost (see `docs/PERFORMANCE.md`).
//!
//! # Example
//!
//! ```
//! use sinr_model::SinrConfig;
//!
//! let cfg = SinrConfig::with_unit_range(4.0, 1.5, 2.0);
//! assert!((cfg.r_t() - 1.0).abs() < 1e-12);
//! assert!(cfg.r_i() >= 2.0 * cfg.r_t()); // paper: R_I ≥ 2 R_T
//! ```

pub mod config;
pub mod fading;
pub mod interference;
pub mod model;
pub mod power;
pub mod resolver;

pub use config::SinrConfig;
pub use fading::FadingSinrModel;
pub use model::{
    GraphModel, IdealModel, InterferenceModel, ReceptionTable, SinrModel, TxDelta,
    PAR_CANDIDATE_CUTOFF,
};
pub use power::{NonUniformSinrModel, PowerAssignment};
pub use resolver::{FastSinrModel, ResolverStats, AUTO_TX_DENSITY_FACTOR, EPOCH_REBUILD_SLOTS};
