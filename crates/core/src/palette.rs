//! The §V palette-reduction step: from any proper coloring down to `Δ+1`
//! colors.
//!
//! The paper (end of §V): "using a standard palette-reduction procedure
//! \[Peleg], it is easy to see that it is possible to compute a
//! `(1, Δ+1)`-coloring in the SINR model in `O(Δ log n)` distributed time …
//! every node with color `c` first chooses a new legitimate color from
//! `{1, …, Δ+1}`, and then communicates its new color to its neighbors."
//!
//! This module implements the color-class-ordered re-selection at the graph
//! level: classes are processed in increasing old-color order; within a
//! class all nodes act simultaneously (they are pairwise non-adjacent, so
//! no conflict is possible), each picking the smallest color of
//! `{0, …, Δ}` not already picked by a re-colored neighbor. The MAC-layer
//! crate schedules exactly this procedure over the TDMA frames of
//! Theorem 3 (each color ↔ one slot), realizing the `O(Δ log n)` bound.

use sinr_geometry::greedy::Coloring;
use sinr_geometry::UnitDiskGraph;

/// Reduces a proper coloring of `g` to a proper coloring with at most
/// `Δ+1` colors (palette `{0, …, Δ}`), processing old color classes in
/// ascending order.
///
/// Returns the new coloring; properness is preserved, and the palette is
/// at most `g.max_degree() + 1`.
///
/// # Panics
///
/// Panics if `coloring` does not cover every node of `g` or is not proper.
pub fn reduce_palette(g: &UnitDiskGraph, coloring: &Coloring) -> Coloring {
    assert_eq!(
        coloring.as_slice().len(),
        g.len(),
        "coloring must cover every node"
    );
    assert!(coloring.is_proper(g), "input coloring must be proper");

    const UNSET: usize = usize::MAX;
    let mut new_colors = vec![UNSET; g.len()];

    // Old color classes in ascending order. Nodes inside one class are
    // pairwise non-adjacent (input is proper), so processing them "at the
    // same time" cannot create conflicts among them.
    let mut order: Vec<usize> = (0..g.len()).collect();
    order.sort_by_key(|&v| coloring.color(v));

    let mut forbidden: Vec<usize> = Vec::new();
    for &v in &order {
        forbidden.clear();
        forbidden.extend(
            g.neighbors(v)
                .iter()
                .map(|&u| new_colors[u])
                .filter(|&c| c != UNSET),
        );
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut c = 0;
        for &f in &forbidden {
            if f == c {
                c += 1;
            } else if f > c {
                break;
            }
        }
        new_colors[v] = c;
    }
    Coloring::from_vec(new_colors)
}

/// The number of *rounds* the distributed schedule of the reduction needs:
/// one two-slot frame period per old color, i.e. `2·V_old` slots when run
/// over a Theorem-3 TDMA schedule ("each color `c` being associated with 2
/// time slots period `{t_c, t_c+1}`").
pub fn reduction_slot_cost(old_palette: usize) -> u64 {
    2 * old_palette as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::greedy::greedy_coloring;
    use sinr_geometry::{placement, Point};

    fn graph(seed: u64, n: usize) -> UnitDiskGraph {
        UnitDiskGraph::new(placement::uniform(n, 4.0, 4.0, seed), 1.0)
    }

    /// A wasteful but proper coloring: every node its own color.
    fn rainbow(g: &UnitDiskGraph) -> Coloring {
        Coloring::from_vec((0..g.len()).collect())
    }

    #[test]
    fn reduces_rainbow_to_delta_plus_one() {
        for seed in 0..4 {
            let g = graph(seed, 80);
            let reduced = reduce_palette(&g, &rainbow(&g));
            assert!(reduced.is_proper(&g), "seed {seed}");
            assert!(
                reduced.palette_size() <= g.max_degree() + 1,
                "seed {seed}: {} > Δ+1 = {}",
                reduced.palette_size(),
                g.max_degree() + 1
            );
        }
    }

    #[test]
    fn preserves_properness_of_greedy_input() {
        let g = graph(11, 60);
        let input = greedy_coloring(&g);
        let reduced = reduce_palette(&g, &input);
        assert!(reduced.is_proper(&g));
        assert!(reduced.palette_size() <= input.palette_size().max(g.max_degree() + 1));
    }

    #[test]
    fn already_minimal_coloring_is_not_worsened() {
        // Path of 3 nodes: 2 colors suffice and must remain 2.
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(1.8, 0.0),
            ],
            1.0,
        );
        let input = Coloring::from_vec(vec![0, 1, 0]);
        let reduced = reduce_palette(&g, &input);
        assert!(reduced.is_proper(&g));
        assert!(reduced.palette_size() <= 2);
    }

    #[test]
    fn sparse_colorings_with_huge_palettes_shrink() {
        // Simulates an MW output: palette spread over (Δ+1)·spread values.
        let g = graph(5, 70);
        let spread = 26;
        let base = greedy_coloring(&g);
        let spread_colors: Vec<usize> = base.as_slice().iter().map(|&c| c * spread + 3).collect();
        let input = Coloring::from_vec(spread_colors);
        assert!(input.is_proper(&g));
        let reduced = reduce_palette(&g, &input);
        assert!(reduced.is_proper(&g));
        assert!(reduced.palette_size() <= g.max_degree() + 1);
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn rejects_improper_input() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0);
        let _ = reduce_palette(&g, &Coloring::from_vec(vec![1, 1]));
    }

    #[test]
    fn slot_cost_is_two_per_color() {
        assert_eq!(reduction_slot_cost(10), 20);
    }
}
