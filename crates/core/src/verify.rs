//! Verifiers for `(d, V)`-colorings and independence (§II definitions).

use sinr_geometry::{NodeId, Point, SpatialGrid};

/// All pairs `(u, v)`, `u < v`, with equal colors at Euclidean distance at
/// most `max_dist` — the violations of a `(d, V)`-coloring with
/// `max_dist = d·R_T` (§II).
///
/// Runs in `O(n + k)` expected time for `k` candidate pairs via a spatial
/// grid.
///
/// # Panics
///
/// Panics if `positions` and `colors` have different lengths or
/// `max_dist ≤ 0`.
pub fn distance_violations(
    positions: &[Point],
    colors: &[usize],
    max_dist: f64,
) -> Vec<(NodeId, NodeId)> {
    assert_eq!(positions.len(), colors.len(), "one color per node");
    assert!(max_dist > 0.0, "distance threshold must be positive");
    let grid = SpatialGrid::build(positions, max_dist);
    let mut violations = Vec::new();
    for u in 0..positions.len() {
        grid.for_each_within(positions, positions[u], max_dist, |v| {
            if u < v && colors[u] == colors[v] {
                violations.push((u, v));
            }
        });
    }
    violations.sort_unstable();
    violations
}

/// Whether `colors` is a `(d, V)`-coloring for threshold
/// `max_dist = d·R_T`: every two nodes within `max_dist` have different
/// colors.
///
/// # Example
///
/// ```
/// use sinr_coloring::verify::is_distance_coloring;
/// use sinr_geometry::Point;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(3.0, 0.0)];
/// assert!(is_distance_coloring(&pts, &[0, 1, 0], 1.0));
/// assert!(!is_distance_coloring(&pts, &[0, 0, 1], 1.0));
/// ```
pub fn is_distance_coloring(positions: &[Point], colors: &[usize], max_dist: f64) -> bool {
    distance_violations(positions, colors, max_dist).is_empty()
}

/// Pairs of *decided* nodes sharing a color class within distance `r_t` —
/// the per-slot audit of Theorem 1 ("the color class `C_i` forms an
/// independent set throughout the execution").
///
/// `colors[v]` is `None` for nodes that have not decided yet.
pub fn class_independence_violations(
    positions: &[Point],
    colors: &[Option<usize>],
    r_t: f64,
) -> Vec<(NodeId, NodeId)> {
    assert_eq!(positions.len(), colors.len(), "one color slot per node");
    let grid = SpatialGrid::build(positions, r_t);
    let mut violations = Vec::new();
    for u in 0..positions.len() {
        let Some(cu) = colors[u] else { continue };
        grid.for_each_within(positions, positions[u], r_t, |v| {
            if u < v && colors[v] == Some(cu) {
                violations.push((u, v));
            }
        });
    }
    violations.sort_unstable();
    violations
}

/// Incremental form of the Theorem-1 audit: checks whether newly decided
/// nodes conflict with any already decided node of the same class. Much
/// cheaper than re-scanning all pairs every slot.
pub fn incremental_independence_violations(
    positions: &[Point],
    colors: &[Option<usize>],
    newly_decided: &[NodeId],
    r_t: f64,
) -> Vec<(NodeId, NodeId)> {
    let r2 = r_t * r_t;
    let mut violations = Vec::new();
    for &u in newly_decided {
        let Some(cu) = colors[u] else { continue };
        for (v, cv) in colors.iter().enumerate() {
            if v != u && *cv == Some(cu) && positions[u].distance_squared(positions[v]) <= r2 {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                violations.push((a, b));
            }
        }
    }
    violations.sort_unstable();
    violations.dedup();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::placement;

    #[test]
    fn detects_close_equal_pair() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.4, 0.0)];
        assert_eq!(distance_violations(&pts, &[2, 2], 1.0), vec![(0, 1)]);
        assert!(distance_violations(&pts, &[2, 3], 1.0).is_empty());
    }

    #[test]
    fn distance_threshold_is_inclusive() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(distance_violations(&pts, &[0, 0], 1.0), vec![(0, 1)]);
        let pts2 = vec![Point::new(0.0, 0.0), Point::new(1.001, 0.0)];
        assert!(distance_violations(&pts2, &[0, 0], 1.0).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_input() {
        let pts = placement::uniform(80, 4.0, 4.0, 13);
        let colors: Vec<usize> = (0..80).map(|i| i % 5).collect();
        for &d in &[0.5, 1.0, 2.0] {
            let fast = distance_violations(&pts, &colors, d);
            let mut brute = Vec::new();
            for u in 0..80 {
                for v in (u + 1)..80 {
                    if colors[u] == colors[v] && pts[u].distance(pts[v]) <= d {
                        brute.push((u, v));
                    }
                }
            }
            assert_eq!(fast, brute, "d = {d}");
        }
    }

    #[test]
    fn class_audit_skips_undecided() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.3, 0.0),
            Point::new(0.6, 0.0),
        ];
        let colors = vec![Some(1), None, Some(1)];
        assert_eq!(
            class_independence_violations(&pts, &colors, 1.0),
            vec![(0, 2)]
        );
        let colors2 = vec![Some(1), None, None];
        assert!(class_independence_violations(&pts, &colors2, 1.0).is_empty());
    }

    #[test]
    fn incremental_matches_full_audit_for_new_nodes() {
        let pts = placement::uniform(50, 3.0, 3.0, 5);
        let colors: Vec<Option<usize>> = (0..50)
            .map(|i| if i % 3 == 0 { Some(i % 4) } else { None })
            .collect();
        // Treat every decided node as "new": union over all must equal the
        // full audit.
        let decided: Vec<usize> = (0..50).filter(|&i| colors[i].is_some()).collect();
        let inc = incremental_independence_violations(&pts, &colors, &decided, 1.0);
        let full = class_independence_violations(&pts, &colors, 1.0);
        assert_eq!(inc, full);
    }

    #[test]
    fn incremental_empty_for_no_new_nodes() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)];
        let colors = vec![Some(0), Some(0)];
        assert!(incremental_independence_violations(&pts, &colors, &[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "one color per node")]
    fn length_mismatch_panics() {
        let _ = distance_violations(&[Point::ORIGIN], &[0, 1], 1.0);
    }

    #[test]
    fn empty_input_is_vacuously_proper() {
        assert!(distance_violations(&[], &[], 1.0).is_empty());
        assert!(is_distance_coloring(&[], &[], 1.0));
        assert!(class_independence_violations(&[], &[], 1.0).is_empty());
        assert!(incremental_independence_violations(&[], &[], &[], 1.0).is_empty());
    }

    #[test]
    fn pair_exactly_at_max_dist_counts_as_violation() {
        // A 3-4-5 triangle puts the pair at distance exactly 5 without the
        // coordinates being axis-aligned; §II's "within distance d·R_T" is
        // inclusive, so equal colors here must be flagged.
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        assert_eq!(distance_violations(&pts, &[7, 7], 5.0), vec![(0, 1)]);
        assert!(!is_distance_coloring(&pts, &[7, 7], 5.0));
        assert!(is_distance_coloring(&pts, &[7, 8], 5.0));
        // The same pair under the slot audit (distance 5 = r_t).
        let decided = vec![Some(7), Some(7)];
        assert_eq!(
            class_independence_violations(&pts, &decided, 5.0),
            vec![(0, 1)]
        );
        assert_eq!(
            incremental_independence_violations(&pts, &decided, &[1], 5.0),
            vec![(0, 1)]
        );
    }

    #[test]
    fn duplicate_positions_conflict_iff_same_color() {
        // Co-located nodes are at distance 0 — always "within" any positive
        // threshold, so they conflict exactly when their colors collide.
        let p = Point::new(1.25, -0.5);
        let pts = vec![p, p, p];
        assert_eq!(
            distance_violations(&pts, &[0, 0, 0], 1.0),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        assert_eq!(distance_violations(&pts, &[0, 1, 0], 1.0), vec![(0, 2)]);
        assert!(distance_violations(&pts, &[0, 1, 2], 1.0).is_empty());
        // The incremental audit must not pair a node with itself.
        let decided = vec![Some(3), Some(3), None];
        assert_eq!(
            incremental_independence_violations(&pts, &decided, &[0, 1], 1.0),
            vec![(0, 1)]
        );
    }
}
