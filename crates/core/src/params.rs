//! The algorithm constants of §II, in two profiles.
//!
//! The paper defines, for a SINR configuration and packing bounds
//! `φ(R) ≤ (2R/R_T + 1)²`:
//!
//! ```text
//! λ  = (1 − 1/ρ) / e^{φ(R_I)/φ(R_I+R_T)}
//!      · (1 − φ(R_I)/(φ(R_I+R_T)²·Δ)) · (1 − 1/(φ(R_I+R_T)²·Δ))
//! λ' = (1 − 1/ρ) / (e·φ(R_I+R_T))
//!      · (1 − 1/(φ(R_I+R_T)·Δ)) · (1 − 1/φ(R_I+R_T))^{φ(R_I+R_T)}
//! σ  = 2c/λ'          γ = c·φ(R_I+R_T)/λ
//! q_ℓ = 1/φ(R_I+R_T)  q_s = 1/(φ(R_I+R_T)·Δ)
//! η ≥ 2γφ(2R_T) + σ + 1          μ ≥ γ   (and μ ≥ σ for §IV)
//! ```
//!
//! for any `c ≥ 5`. These *rigorous* values make the w.h.p. proofs go
//! through but are astronomically conservative (`φ(R_I+R_T)` is in the
//! thousands for realistic `α, β, ρ`), so full runs with them are
//! infeasible on any machine — and unnecessary: the experiments check the
//! *shape* of the bounds. The [`MwParams::practical`] profile therefore
//! keeps every functional form (`q_s ∝ 1/Δ`, windows `∝ Δ ln n`, the
//! `σ > 2γ` ordering, the `ζ_i` asymmetry, the true `φ(2R_T)` color
//! spread) while replacing the packing-bound-driven constants with small
//! multipliers. The rigorous formulas remain available — and unit-tested
//! against the paper's inequalities — via [`MwParams::rigorous`].

use sinr_geometry::cast;
use sinr_geometry::packing::phi_bound;
use sinr_model::SinrConfig;

/// All constants the MW automaton consumes, pre-resolved for a given
/// network size `n` and maximum degree `Δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwParams {
    /// Number of nodes `n` (an upper bound is fine; enters only via `ln n`).
    pub n: usize,
    /// Maximum degree `Δ` (an upper bound is fine).
    pub delta: usize,
    /// The `η` multiplier: initial listen phase lasts `⌈ηΔ ln n⌉` slots
    /// (Fig. 1 line 2).
    pub eta: f64,
    /// The `σ` multiplier: a node enters `C_i` when its counter reaches
    /// `⌈σΔ ln n⌉` (Fig. 1 line 10).
    pub sigma: f64,
    /// The `γ` multiplier: counters within `⌈γζ_i ln n⌉` of a received
    /// counter are reset (Fig. 1 lines 6 and 15), with `ζ_0 = 1` and
    /// `ζ_i = Δ` for `i > 0`.
    pub gamma: f64,
    /// The `μ` multiplier: a leader repeats each grant for `⌈μ ln n⌉`
    /// slots (Fig. 2 line 13).
    pub mu: f64,
    /// Send probability `q_s` of non-leader nodes (states `A_i`, `R`,
    /// `C_i` for `i > 0`).
    pub q_small: f64,
    /// Send probability `q_ℓ` of leaders (`C_0`).
    pub q_leader: f64,
    /// The color spread `φ(2R_T) + 1`: a node granted cluster color `tc`
    /// competes in states `A_{tc·spread}, …, A_{tc·spread + spread − 1}`
    /// (Fig. 3 line 4 and Lemma 4).
    pub spread: usize,
}

/// Errors from [`MwParams::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `n` must be at least 2 so `ln n > 0`.
    TooFewNodes,
    /// `Δ` must be at least 1.
    ZeroDelta,
    /// Send probabilities must lie in `(0, 1]`.
    BadProbability,
    /// The paper requires `σ > 2γ` (used in Theorem 1, Case 2).
    SigmaNotAboveTwoGamma,
    /// Multipliers must be strictly positive.
    NonPositiveMultiplier,
    /// The spread must be at least 2 (`φ(2R_T) ≥ 1`).
    SpreadTooSmall,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::TooFewNodes => write!(f, "n must be at least 2"),
            ParamError::ZeroDelta => write!(f, "delta must be at least 1"),
            ParamError::BadProbability => write!(f, "send probabilities must be in (0, 1]"),
            ParamError::SigmaNotAboveTwoGamma => write!(f, "sigma must exceed 2*gamma"),
            ParamError::NonPositiveMultiplier => {
                write!(f, "eta, sigma, gamma, mu must be positive")
            }
            ParamError::SpreadTooSmall => write!(f, "spread must be at least 2"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The raw §II constants computed by the rigorous profile, kept for
/// inspection and for unit-testing the paper's inequalities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigorousConstants {
    /// `φ(R_I)`.
    pub phi_i: usize,
    /// `φ(R_I + R_T)`.
    pub phi_it: usize,
    /// `φ(2R_T)`.
    pub phi_2t: usize,
    /// The probability-amplification exponent `c ≥ 5`.
    pub c: f64,
    /// `λ` as defined in §II.
    pub lambda: f64,
    /// `λ'` as defined in §II.
    pub lambda_prime: f64,
}

impl MwParams {
    /// The paper's literal constants (§II) for exponent `c ≥ 5`.
    ///
    /// Feasible to *construct and inspect* for any configuration; far too
    /// conservative to *run* at interesting sizes (see module docs).
    ///
    /// Returns the parameters together with the intermediate constants.
    ///
    /// # Panics
    ///
    /// Panics if `c < 5`, `n < 2`, or `delta < 1`.
    pub fn rigorous_with_constants(
        cfg: &SinrConfig,
        n: usize,
        delta: usize,
        c: f64,
    ) -> (MwParams, RigorousConstants) {
        assert!(c >= 5.0, "the paper requires c >= 5");
        assert!(n >= 2, "n must be at least 2");
        let delta = delta.max(1);
        let r_t = cfg.r_t();
        let r_i = cfg.r_i();
        let phi_i = phi_bound(r_i, r_t);
        let phi_it = phi_bound(r_i + r_t, r_t);
        let phi_2t = phi_bound(2.0 * r_t, r_t);
        let (phi_i_f, phi_it_f, d) = (phi_i as f64, phi_it as f64, delta as f64);

        let lambda = (1.0 - 1.0 / cfg.rho()) / (phi_i_f / phi_it_f).exp()
            * (1.0 - phi_i_f / (phi_it_f * phi_it_f * d))
            * (1.0 - 1.0 / (phi_it_f * phi_it_f * d));
        let lambda_prime = (1.0 - 1.0 / cfg.rho()) / (std::f64::consts::E * phi_it_f)
            * (1.0 - 1.0 / (phi_it_f * d))
            * (1.0 - 1.0 / phi_it_f).powf(phi_it_f);

        let sigma = 2.0 * c / lambda_prime;
        let gamma = c * phi_it_f / lambda;
        // η ≥ 2γφ(2R_T) + σ + 1 and μ ≥ max(γ, σ): take the minimal values.
        let eta = 2.0 * gamma * phi_2t as f64 + sigma + 1.0;
        let mu = gamma.max(sigma);

        let params = MwParams {
            n,
            delta,
            eta,
            sigma,
            gamma,
            mu,
            q_small: 1.0 / (phi_it_f * d),
            q_leader: 1.0 / phi_it_f,
            spread: phi_2t + 1,
        };
        let constants = RigorousConstants {
            phi_i,
            phi_it,
            phi_2t,
            c,
            lambda,
            lambda_prime,
        };
        (params, constants)
    }

    /// The paper's literal constants with the minimal exponent `c = 5`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn rigorous(cfg: &SinrConfig, n: usize, delta: usize) -> MwParams {
        MwParams::rigorous_with_constants(cfg, n, delta, 5.0).0
    }

    /// The practical profile: identical structure, simulation-scale
    /// constants (see module docs for the rationale).
    ///
    /// The color spread keeps the *true* `φ(2R_T) + 1`, so the palette
    /// bound of Theorem 2 is preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn practical(cfg: &SinrConfig, n: usize, delta: usize) -> MwParams {
        assert!(n >= 2, "n must be at least 2");
        let delta = delta.max(1);
        let phi_2t = phi_bound(2.0 * cfg.r_t(), cfg.r_t());
        // The constants below encode the same safety margins the paper's
        // formulas do, at simulation scale. The binding constraint is the
        // *trailing race* of Theorem 1: after a χ-reset a loser trails the
        // winner by only `window + 1` slots, so the winner's `M_C`
        // announcement must be heard within `γζ_i ln n` slots. The
        // expected number of announcement *receptions* in that window —
        // after discounting channel blocking by other senders (leaders in
        // particular transmit with `q_ℓ` forever) — is `≈ q_ℓ·0.7·γ ln n`
        // for level 0 and `≈ q_s·0.6·γΔ ln n` for `i > 0`, i.e. ≥ 4–6 for
        // the values below, giving per-event miss probabilities around a
        // percent. Experiment E4 measures the realized violation rate, and
        // E10/E11 sweep these constants. This is also exactly why the
        // paper's rigorous σ, γ are enormous: they buy the `n^{-c}` bound.
        MwParams {
            n,
            delta,
            eta: 1.0,
            sigma: 49.0,
            gamma: 24.0,
            mu: 24.0,
            q_small: 0.1 / delta as f64,
            q_leader: 0.1,
            spread: phi_2t + 1,
        }
    }

    /// A *tuned* practical profile: derives `γ`, `σ`, `μ` from a target
    /// per-race miss probability instead of fixed constants.
    ///
    /// The binding constraint (see `docs/PARAMETERS.md`) is the Theorem-1
    /// trailing race: the winner's announcement must arrive within the
    /// reset window, and the expected number of receptions there is
    /// `q·γ·ln n·p_recv` (level 0 with `q = q_ℓ`; level i > 0 with
    /// `q_s·γΔ ln n`, where Δ cancels). Setting that margin to
    /// `m = ln(1/target_miss)` gives `γ = m/(q·ln n·p_recv)`; `σ = 2γ+1`
    /// and `μ = γ` follow from the paper's orderings.
    ///
    /// `p_recv` is the assumed edge-of-range delivery rate under protocol
    /// load (≈ 0.6–0.7 at the default probabilities; lower under fading).
    ///
    /// # Panics
    ///
    /// Panics if `target_miss` is not in `(0, 1)`, `p_recv` not in
    /// `(0, 1]`, or `n < 2`.
    pub fn tuned(
        cfg: &SinrConfig,
        n: usize,
        delta: usize,
        target_miss: f64,
        p_recv: f64,
    ) -> MwParams {
        assert!(
            target_miss > 0.0 && target_miss < 1.0,
            "target miss probability must be in (0, 1)"
        );
        assert!(p_recv > 0.0 && p_recv <= 1.0, "p_recv must be in (0, 1]");
        let mut p = MwParams::practical(cfg, n, delta);
        let margin = (1.0 / target_miss).ln();
        // Level-0 and level-i margins share the same q·γ·ln n·p form with
        // q = q_ℓ resp. q_s·Δ; take the weaker of the two.
        let q = p.q_leader.min(p.q_small * p.delta as f64);
        let gamma = margin / (q * p.ln_n() * p_recv);
        p.gamma = gamma;
        p.sigma = 2.0 * gamma + 1.0;
        p.mu = gamma;
        p
    }

    /// Checks the structural invariants every profile must satisfy.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.n < 2 {
            return Err(ParamError::TooFewNodes);
        }
        if self.delta < 1 {
            return Err(ParamError::ZeroDelta);
        }
        for p in [self.q_small, self.q_leader] {
            if !(p > 0.0 && p <= 1.0) {
                return Err(ParamError::BadProbability);
            }
        }
        for m in [self.eta, self.sigma, self.gamma, self.mu] {
            if !(m.is_finite() && m > 0.0) {
                return Err(ParamError::NonPositiveMultiplier);
            }
        }
        if self.sigma <= 2.0 * self.gamma {
            return Err(ParamError::SigmaNotAboveTwoGamma);
        }
        if self.spread < 2 {
            return Err(ParamError::SpreadTooSmall);
        }
        Ok(())
    }

    /// `ln n`, floored at `ln 16`.
    ///
    /// The floor keeps the time windows non-degenerate for very small
    /// networks (with `n = 2` every `⌈… ln n⌉` window collapses to one
    /// slot and the randomized symmetry breaking has no room to act); for
    /// `n ≥ 16` this is exactly `ln n`.
    pub fn ln_n(&self) -> f64 {
        (self.n.max(16) as f64).ln()
    }

    /// Listen-phase length `⌈ηΔ ln n⌉` (Fig. 1 line 2).
    pub fn listen_slots(&self) -> u64 {
        cast::ceil_u64(self.eta * self.delta as f64 * self.ln_n())
    }

    /// Counter threshold `⌈σΔ ln n⌉` (Fig. 1 line 10).
    pub fn counter_threshold(&self) -> i64 {
        cast::ceil_i64(self.sigma * self.delta as f64 * self.ln_n())
    }

    /// Reset window `⌈γζ_i ln n⌉` with `ζ_0 = 1`, `ζ_i = Δ` for `i > 0`
    /// (Fig. 1 lines 1, 6, 15).
    pub fn reset_window(&self, level: usize) -> i64 {
        let zeta = if level == 0 { 1.0 } else { self.delta as f64 };
        cast::ceil_i64(self.gamma * zeta * self.ln_n())
    }

    /// Grant-repetition length `⌈μ ln n⌉` (Fig. 2 line 13).
    pub fn response_slots(&self) -> u64 {
        cast::ceil_u64(self.mu * self.ln_n())
    }

    /// The worst-case palette bound of Theorem 2 as realized by this
    /// parameterization: colors lie in
    /// `{0} ∪ {tc·spread + j : 1 ≤ tc ≤ Δ, 0 ≤ j < spread}`, so the
    /// palette size is at most `(Δ + 1)·spread`.
    pub fn palette_bound(&self) -> usize {
        (self.delta + 1) * self.spread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn rigorous_satisfies_paper_inequalities() {
        for delta in [1usize, 4, 16, 64] {
            for n in [16usize, 256, 4096] {
                let (p, k) = MwParams::rigorous_with_constants(&cfg(), n, delta, 5.0);
                assert!(p.validate().is_ok(), "n={n} delta={delta}");
                // σ > 2γ (paper: "one can easily verify that σ > 2γ").
                assert!(p.sigma > 2.0 * p.gamma, "sigma > 2 gamma fails");
                // η ≥ 2γφ(2R_T) + σ + 1.
                assert!(p.eta >= 2.0 * p.gamma * (p.spread - 1) as f64 + p.sigma + 1.0);
                // μ ≥ γ (§II) and μ ≥ σ (§IV).
                assert!(p.mu >= p.gamma && p.mu >= p.sigma);
                // 0 < λ, λ' < 1.
                assert!(k.lambda > 0.0 && k.lambda < 1.0);
                assert!(k.lambda_prime > 0.0 && k.lambda_prime < 1.0);
                // Packing monotonicity: φ(R_I) ≤ φ(R_I + R_T).
                assert!(k.phi_i <= k.phi_it);
            }
        }
    }

    #[test]
    fn rigorous_probabilities_sum_bound() {
        // Lemma 3's Eq. (1): Σ_{w∈B_v} p_w ≤ 2, i.e.
        // φ(R_T)·q_ℓ + Δ·q_s ≤ 2 (independent leaders + Δ others).
        let delta = 32;
        let (p, k) = MwParams::rigorous_with_constants(&cfg(), 1024, delta, 5.0);
        let phi_t = sinr_geometry::packing::phi_bound(cfg().r_t(), cfg().r_t());
        let sum = phi_t as f64 * p.q_leader + delta as f64 * p.q_small;
        assert!(sum <= 2.0, "sum of send probabilities {sum} > 2");
        assert!(k.phi_it >= phi_t);
    }

    #[test]
    fn practical_is_valid_and_keeps_forms() {
        let p = MwParams::practical(&cfg(), 256, 20);
        p.validate().unwrap();
        // q_s ∝ 1/Δ.
        let p2 = MwParams::practical(&cfg(), 256, 40);
        assert!((p.q_small / p2.q_small - 2.0).abs() < 1e-9);
        // Spread is the true φ(2R_T) + 1.
        assert_eq!(p.spread, phi_bound(2.0 * cfg().r_t(), cfg().r_t()) + 1);
    }

    #[test]
    fn windows_scale_with_delta_and_log_n() {
        let a = MwParams::practical(&cfg(), 256, 10);
        let b = MwParams::practical(&cfg(), 256, 20);
        assert!(b.listen_slots() >= 2 * a.listen_slots() - 2);
        assert!(b.counter_threshold() >= 2 * a.counter_threshold() - 2);
        let c5 = MwParams::practical(&cfg(), 2_560_000, 10);
        // ln n doubles from 256 to 256^2·... just check monotone growth.
        assert!(c5.listen_slots() > a.listen_slots());
    }

    #[test]
    fn reset_window_zeta_asymmetry() {
        let p = MwParams::practical(&cfg(), 256, 16);
        assert!(p.reset_window(1) >= 16 * p.reset_window(0) - 16);
        assert_eq!(p.reset_window(1), p.reset_window(7));
    }

    #[test]
    fn validate_catches_each_violation() {
        let good = MwParams::practical(&cfg(), 256, 8);
        let mut p = good;
        p.n = 1;
        assert_eq!(p.validate(), Err(ParamError::TooFewNodes));
        let mut p = good;
        p.delta = 0;
        assert_eq!(p.validate(), Err(ParamError::ZeroDelta));
        let mut p = good;
        p.q_small = 0.0;
        assert_eq!(p.validate(), Err(ParamError::BadProbability));
        let mut p = good;
        p.q_leader = 1.5;
        assert_eq!(p.validate(), Err(ParamError::BadProbability));
        let mut p = good;
        p.gamma = p.sigma; // σ ≤ 2γ
        assert_eq!(p.validate(), Err(ParamError::SigmaNotAboveTwoGamma));
        let mut p = good;
        p.eta = 0.0;
        assert_eq!(p.validate(), Err(ParamError::NonPositiveMultiplier));
        let mut p = good;
        p.spread = 1;
        assert_eq!(p.validate(), Err(ParamError::SpreadTooSmall));
    }

    #[test]
    fn tuned_profile_validates_and_scales_with_target() {
        let cfg = cfg();
        let strict = MwParams::tuned(&cfg, 256, 20, 1e-4, 0.65);
        let loose = MwParams::tuned(&cfg, 256, 20, 1e-1, 0.65);
        strict.validate().unwrap();
        loose.validate().unwrap();
        // Stricter targets demand wider windows.
        assert!(strict.gamma > loose.gamma);
        assert!(strict.sigma > 2.0 * strict.gamma);
        // The default practical profile sits near the 1% target.
        let pct1 = MwParams::tuned(&cfg, 256, 20, 0.01, 0.65);
        let practical = MwParams::practical(&cfg, 256, 20);
        assert!(
            (pct1.gamma / practical.gamma - 1.0).abs() < 0.7,
            "tuned γ {} far from practical {}",
            pct1.gamma,
            practical.gamma
        );
    }

    #[test]
    fn tuned_profile_widens_under_fading_assumption() {
        let cfg = cfg();
        let clear = MwParams::tuned(&cfg, 128, 12, 0.01, 0.7);
        let faded = MwParams::tuned(&cfg, 128, 12, 0.01, 0.35);
        assert!((faded.gamma / clear.gamma - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target miss")]
    fn tuned_rejects_bad_target() {
        let _ = MwParams::tuned(&cfg(), 128, 12, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "c >= 5")]
    fn rigorous_rejects_small_c() {
        let _ = MwParams::rigorous_with_constants(&cfg(), 16, 4, 4.9);
    }

    #[test]
    fn palette_bound_formula() {
        let p = MwParams::practical(&cfg(), 256, 10);
        assert_eq!(p.palette_bound(), 11 * p.spread);
    }

    #[test]
    fn rigorous_constants_are_huge_as_documented() {
        // Sanity check for the DESIGN.md claim that rigorous constants are
        // infeasible: the listen phase alone exceeds 10^6 slots even for a
        // tiny network.
        let p = MwParams::rigorous(&cfg(), 64, 8);
        assert!(p.listen_slots() > 1_000_000);
    }
}
