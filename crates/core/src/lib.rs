#![warn(missing_docs)]

//! Distributed `O(Δ)`-coloring of unit disk graphs under the SINR physical
//! model — a reproduction of Derbel & Talbi, *Distributed Node Coloring in
//! the SINR Model*, ICDCS 2010.
//!
//! The paper re-tunes the Moscibroda–Wattenhofer (MW) coloring algorithm
//! (SPAA'05 / Distributed Computing 2008) so that it is correct under the
//! *physical* SINR interference model instead of the graph-based model, and
//! proves (Theorem 2) that w.h.p. it produces a `(1, (φ(2R_T)+1)Δ)`-coloring
//! in `O(Δ log n)` time slots.
//!
//! # Crate layout
//!
//! * [`params`] — the algorithm constants of §II (`λ, λ', σ, γ, η, μ, q_ℓ,
//!   q_s`), as the literal *rigorous* formulas and as a *practical* profile
//!   that keeps every functional form but shrinks the constants to
//!   simulation scale.
//! * [`chi`] — the counter-reset function `χ(P_v)` of Fig. 1 line 6.
//! * [`mw`] — the three-state automaton of Figs. 1–3 and a driver that runs
//!   it in the [`sinr_radiosim`] simulator under any interference model.
//! * [`verify`] — `(d, V)`-coloring and independence verifiers.
//! * [`distance_d`] — distance-`d` colorings via the §V power-scaling
//!   transformation.
//! * [`palette`] — the §V palette-reduction step down to `Δ+1` colors.
//!
//! # Quickstart
//!
//! ```
//! use sinr_coloring::mw::{run_mw, MwConfig};
//! use sinr_coloring::params::MwParams;
//! use sinr_geometry::{placement, UnitDiskGraph};
//! use sinr_model::{SinrConfig, SinrModel};
//! use sinr_radiosim::WakeupSchedule;
//!
//! let cfg = SinrConfig::default_unit();
//! let graph = UnitDiskGraph::new(placement::uniform(60, 4.0, 4.0, 1), cfg.r_t());
//! let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
//! let outcome = run_mw(
//!     &graph,
//!     SinrModel::new(cfg),
//!     &MwConfig::new(params).with_seed(1),
//!     WakeupSchedule::Synchronous,
//! );
//! assert!(outcome.all_done);
//! let coloring = outcome.coloring.expect("all nodes colored");
//! assert!(coloring.is_proper(&graph));
//! ```

pub mod chi;
pub mod distance_d;
pub mod mis;
pub mod mw;
pub mod palette;
pub mod params;
pub mod render;
pub mod verify;

pub use mw::{run_mw, MwConfig, MwOutcome};
pub use params::MwParams;
