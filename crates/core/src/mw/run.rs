//! Driver: runs the MW automaton on a graph under any interference model.

use crate::mw::node::MwNode;
use crate::mw::obs::{MwProbeConfig, MwProbes};
use crate::params::MwParams;
use sinr_geometry::greedy::Coloring;
use sinr_geometry::UnitDiskGraph;
use sinr_model::{InterferenceModel, ResolverStats};
use sinr_obs::alloc::{self, AllocScope, AllocStats};
use sinr_obs::Recorder;
use sinr_pool::Pool;
use sinr_radiosim::engine::{EngineAllocProfile, RunOutcome};
use sinr_radiosim::{Simulator, StepView, WakeupSchedule};

/// Run configuration for [`run_mw`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwConfig {
    /// The algorithm constants.
    pub params: MwParams,
    /// RNG seed (drives send decisions and random wake-ups).
    pub seed: u64,
    /// Hard slot cap; `None` uses [`MwConfig::default_max_slots`].
    pub max_slots: Option<u64>,
    /// Worker threads for the parallel step/resolve phases (1 = fully
    /// sequential, no pool involvement). Outcomes are bit-identical for
    /// every value — this is purely a wall-clock knob.
    pub threads: usize,
}

impl MwConfig {
    /// Creates a configuration with seed 0, the default slot cap, and
    /// sequential execution.
    pub fn new(params: MwParams) -> Self {
        MwConfig {
            params,
            seed: 0,
            max_slots: None,
            threads: 1,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit slot cap.
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Sets the worker thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// A generous cap derived from the Theorem-2 time bound: per level a
    /// node spends `O((η + σ + γΔ/Δ)Δ ln n)` slots and visits at most
    /// `spread + 1` levels, plus `Δ` grant windows while requesting. The
    /// cap is 20× that estimate, so hitting it indicates livelock rather
    /// than slowness.
    pub fn default_max_slots(&self) -> u64 {
        let p = &self.params;
        let per_level = p.listen_slots() + 3 * p.counter_threshold().max(1) as u64;
        let request = p.delta as u64 * p.response_slots().max(1) * 4;
        20 * ((p.spread as u64 + 1) * per_level + request)
    }

    /// The effective slot cap.
    pub fn slot_cap(&self) -> u64 {
        self.max_slots.unwrap_or_else(|| self.default_max_slots())
    }
}

/// The result of a coloring run.
#[derive(Debug, Clone, PartialEq)]
pub struct MwOutcome {
    /// Whether every node decided a color within the slot cap.
    pub all_done: bool,
    /// Slots executed.
    pub slots: u64,
    /// The produced coloring, if all nodes decided.
    pub coloring: Option<Coloring>,
    /// Number of distinct colors used (0 if incomplete).
    pub colors_used: usize,
    /// Largest color value + 1 (0 if incomplete) — the realized palette.
    pub palette: usize,
    /// Maximum per-node decision latency (wake → decide), if all decided —
    /// the paper's time-complexity measure.
    pub max_latency: Option<u64>,
    /// Mean per-node decision latency over decided nodes.
    pub mean_latency: Option<f64>,
    /// Total transmissions.
    pub transmissions: u64,
    /// Total successful receptions.
    pub receptions: u64,
    /// Number of leaders (`C_0` members).
    pub leaders: usize,
    /// Full per-node simulator statistics (wake/done slots, per-node
    /// transmit/listen activity — feed to
    /// [`EnergyModel`](sinr_radiosim::energy::EnergyModel) for energy
    /// figures).
    pub stats: sinr_radiosim::SimStats,
    /// Cumulative fast-path counters of the interference resolver, if the
    /// model tracks them (read once at end of run).
    pub resolver: Option<ResolverStats>,
    /// Per-node protocol diagnostics.
    pub node_reports: Vec<NodeReport>,
}

/// Per-node diagnostic summary extracted from the automaton after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReport {
    /// Final color, if decided.
    pub color: Option<usize>,
    /// The leader `L(v)` the node joined, if any (leaders have none).
    pub leader: Option<sinr_geometry::NodeId>,
    /// The cluster color `tc_v` granted by the leader, if any.
    pub cluster_color: Option<usize>,
    /// Number of `A_i` levels entered (Lemma 4 bounds the post-grant
    /// levels by `φ(2R_T)`, so this is at most `spread + 1` in total).
    pub levels_entered: u32,
    /// Number of `χ(P_v)` counter resets performed.
    pub resets: u32,
    /// Slots the node spent in each phase kind
    /// (see [`MwPhase::KIND_NAMES`](crate::mw::MwPhase::KIND_NAMES)).
    pub phase_slots: [u64; 5],
}

impl MwOutcome {
    /// Fast-path hit rate of the resolver, if tracked (see
    /// [`ResolverStats::hit_rate`]).
    pub fn resolver_hit_rate(&self) -> Option<f64> {
        self.resolver.as_ref().and_then(ResolverStats::hit_rate)
    }

    /// Cluster sizes: for each leader, how many nodes joined it (the
    /// leader itself excluded). Sorted by leader id.
    pub fn cluster_sizes(&self) -> Vec<(sinr_geometry::NodeId, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for r in &self.node_reports {
            if let Some(l) = r.leader {
                *counts.entry(l).or_insert(0usize) += 1;
            }
        }
        counts.into_iter().collect()
    }
}

/// Runs the MW coloring algorithm to completion (or the slot cap).
///
/// # Example
///
/// See the [crate-level quickstart](crate).
pub fn run_mw<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
) -> MwOutcome {
    run_mw_observed(graph, model, config, schedule, |_, _| {})
}

/// Like [`run_mw`] but invokes `observe(&sim, &view)` after every slot —
/// the hook used by experiments that audit per-slot invariants (Theorem-1
/// independence, Lemma-3 interference).
pub fn run_mw_observed<M, F>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
    observe: F,
) -> MwOutcome
where
    M: InterferenceModel,
    F: FnMut(&Simulator<MwNode, M>, &StepView),
{
    let params = config.params;
    run_mw_per_node(graph, model, config, schedule, |_| params, observe)
}

/// The *local-knowledge* variant (§VI open question: "whether it is
/// possible to get rid of the knowledge of Δ"): every node derives its
/// constants from its **own degree** instead of the global maximum degree.
///
/// The color-spread `φ(2R_T)+1` and `n` stay global (they are
/// configuration, not topology, knowledge); only the `Δ`-dependent windows
/// and send probabilities become local. Experiment E14 measures the
/// speed/correctness tradeoff of this heuristic.
pub fn run_mw_local_delta<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
) -> MwOutcome {
    let base = config.params;
    run_mw_per_node(
        graph,
        model,
        config,
        schedule,
        |id| {
            let local = graph.degree(id).max(1);
            let mut p = base;
            // Rescale the Δ-dependent quantities from the global Δ to the
            // node's own degree, keeping all multipliers.
            p.q_small = p.q_small * p.delta as f64 / local as f64;
            p.delta = local;
            p
        },
        |_, _| {},
    )
}

/// The fully general driver: per-node parameters (all derived from
/// `params_of(id)`) plus a per-slot observer. [`run_mw`],
/// [`run_mw_observed`], and [`run_mw_local_delta`] are thin wrappers.
///
/// # Panics
///
/// Panics if any node's parameters fail
/// [`validate`](crate::params::MwParams::validate).
pub fn run_mw_per_node<M, F, P>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
    params_of: P,
    observe: F,
) -> MwOutcome
where
    M: InterferenceModel,
    F: FnMut(&Simulator<MwNode, M>, &StepView),
    P: Fn(sinr_geometry::NodeId) -> MwParams,
{
    config.params.validate().expect("invalid MW parameters");
    let mut sim = Simulator::new(graph.clone(), model, schedule, config.seed, |id| {
        let p = params_of(id);
        p.validate().expect("invalid per-node MW parameters");
        let mut node = MwNode::new(id, p);
        node.reserve(graph.degree(id));
        node
    });
    if config.threads > 1 {
        sim.set_pool(&Pool::new(config.threads));
    }
    let run = sim.run_observed(config.slot_cap(), observe);
    package_outcome(&sim, run)
}

/// Like [`run_mw`], but with full observability: engine events stream into
/// `rec`, the [`MwProbes`] check the paper's invariants per `probe_cfg`,
/// and the run's aggregate metrics (`sim.*`, `resolver.*`, `mw.*`,
/// `probe.*`) are exported into the recorder at the end. With a disabled
/// recorder this degrades to [`run_mw`] plus one virtual call per slot.
///
/// # Panics
///
/// Panics if the parameters fail
/// [`validate`](crate::params::MwParams::validate).
pub fn run_mw_recorded<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
    probe_cfg: MwProbeConfig,
    rec: &mut dyn Recorder,
) -> MwOutcome {
    config.params.validate().expect("invalid MW parameters");
    let params = config.params;
    let mut sim = Simulator::new(graph.clone(), model, schedule, config.seed, |id| {
        let mut node = MwNode::new(id, params);
        node.reserve(graph.degree(id));
        node
    });
    if config.threads > 1 {
        // The resolver still fans out; the engine's node shards stay
        // sequential whenever the recorder is enabled (event order).
        sim.set_pool(&Pool::new(config.threads));
    }
    let mut probes = MwProbes::new(graph.len(), &params, probe_cfg);
    let run = sim.run_recorded(config.slot_cap(), rec, |sim, view, rec| {
        probes.observe(sim, view, rec)
    });
    probes.finalize(&sim, rec);
    sim.export_metrics(rec);
    package_outcome(&sim, run)
}

/// Heap-traffic profile of one [`run_mw_profiled`] run. All counters are
/// observed through [`sinr_obs::alloc`] and therefore only move when the
/// binary installs [`CountingAlloc`](sinr_obs::alloc::CountingAlloc) as
/// its global allocator; in an uninstrumented build every field is zero.
///
/// This data deliberately lives **outside** [`MwOutcome`]: outcomes are
/// compared byte-for-byte across thread counts and build flavors, and
/// allocation counts are a property of the build, not of the seed.
#[derive(Debug, Clone, Default)]
pub struct MwAllocProfile {
    /// Traffic before slot 0: graph clone, node construction, simulator
    /// buffers, resolver grid binding.
    pub setup: AllocStats,
    /// Per-phase engine attribution plus the per-slot sample buffer.
    pub engine: EngineAllocProfile,
    /// Process-wide heap high-water mark, in bytes, read at end of run.
    pub heap_peak: u64,
}

/// Per-slot samples are preallocated up front; runs longer than this many
/// slots keep profiling phase totals but stop sampling per-slot counts
/// (`engine.dropped_slots` reports how many were cut). 2^20 slots = 8 MiB
/// of samples, far beyond any practical run of the MW automaton.
const PROFILE_SAMPLE_CAP: u64 = 1 << 20;

/// Like [`run_mw`], but with the allocation profiler attached: returns
/// the outcome along with a [`MwAllocProfile`] attributing heap traffic
/// to setup and to the engine's per-slot phases.
///
/// The outcome is **identical** to the one [`run_mw`] produces for the
/// same inputs — profiling reads allocator counters but never changes
/// engine behavior — which `tests/thread_determinism.rs` pins.
///
/// # Panics
///
/// Panics if the parameters fail
/// [`validate`](crate::params::MwParams::validate).
pub fn run_mw_profiled<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
) -> (MwOutcome, MwAllocProfile) {
    config.params.validate().expect("invalid MW parameters");
    let params = config.params;
    let mut prof = MwAllocProfile::default();
    let cap = config.slot_cap();
    let mut sim = {
        let _setup = AllocScope::new(&mut prof.setup);
        let mut sim = Simulator::new(graph.clone(), model, schedule, config.seed, |id| {
            let mut node = MwNode::new(id, params);
            node.reserve(graph.degree(id));
            node
        });
        if config.threads > 1 {
            sim.set_pool(&Pool::new(config.threads));
        }
        sim.enable_alloc_profile(cap.min(PROFILE_SAMPLE_CAP) as usize);
        sim
    };
    let run = sim.run_observed(cap, |_, _| {});
    if let Some(engine) = sim.take_alloc_profile() {
        prof.engine = *engine;
    }
    prof.heap_peak = alloc::heap_peak();
    (package_outcome(&sim, run), prof)
}

/// Extracts the coloring, latency figures, and diagnostics from a finished
/// simulator — shared by every driver entry point.
fn package_outcome<M: InterferenceModel>(sim: &Simulator<MwNode, M>, run: RunOutcome) -> MwOutcome {
    let colors: Vec<Option<usize>> = sim.nodes().iter().map(MwNode::color).collect();
    let coloring = colors
        .iter()
        .copied()
        .collect::<Option<Vec<usize>>>()
        .map(Coloring::from_vec);
    let (colors_used, palette) = coloring
        .as_ref()
        .map(|c| (c.color_count(), c.palette_size()))
        .unwrap_or((0, 0));
    let leaders = colors.iter().flatten().filter(|&&c| c == 0).count();
    let node_reports = sim
        .nodes()
        .iter()
        .map(|n| NodeReport {
            color: n.color(),
            leader: n.leader(),
            cluster_color: n.cluster_color(),
            levels_entered: n.levels_entered(),
            resets: n.resets(),
            phase_slots: n.phase_slots(),
        })
        .collect();

    MwOutcome {
        all_done: run.all_done,
        slots: run.slots,
        coloring,
        colors_used,
        palette,
        max_latency: sim.stats().max_decision_latency(),
        mean_latency: sim.stats().mean_decision_latency(),
        transmissions: sim.stats().transmissions,
        receptions: sim.stats().receptions,
        leaders,
        stats: sim.stats().clone(),
        resolver: sim.model().resolver_stats(),
        node_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use sinr_geometry::packing::is_independent;
    use sinr_geometry::{placement, Point};
    use sinr_model::{GraphModel, SinrConfig, SinrModel};

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    fn run_on(
        points: Vec<Point>,
        seed: u64,
        schedule: WakeupSchedule,
    ) -> (UnitDiskGraph, MwOutcome) {
        let c = cfg();
        let graph = UnitDiskGraph::new(points, c.r_t());
        let params = MwParams::practical(&c, graph.len().max(2), graph.max_degree());
        let config = MwConfig::new(params).with_seed(seed);
        let outcome = run_mw(&graph, SinrModel::new(c), &config, schedule);
        (graph, outcome)
    }

    #[test]
    fn two_isolated_nodes_both_become_leaders() {
        let (_, out) = run_on(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            1,
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done);
        assert_eq!(out.leaders, 2);
        assert_eq!(out.colors_used, 1); // both take color 0
    }

    #[test]
    fn pair_of_neighbors_gets_proper_colors() {
        for seed in 0..5 {
            let (g, out) = run_on(
                vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)],
                seed,
                WakeupSchedule::Synchronous,
            );
            assert!(out.all_done, "seed {seed}");
            let coloring = out.coloring.unwrap();
            assert!(coloring.is_proper(&g), "seed {seed}");
            assert_eq!(out.leaders, 1, "exactly one of two neighbors leads");
        }
    }

    #[test]
    fn small_random_instance_sinr_model() {
        let (g, out) = run_on(
            placement::uniform(40, 4.0, 4.0, 7),
            3,
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done, "did not finish in {} slots", out.slots);
        let coloring = out.coloring.as_ref().unwrap();
        assert!(coloring.is_proper(&g));
        // Leaders form an independent set (Theorem 1 for C_0).
        let leaders: Vec<usize> = (0..g.len()).filter(|&v| coloring.color(v) == 0).collect();
        assert!(is_independent(&g, &leaders));
        // Palette within the Theorem-2 bound.
        let params = MwParams::practical(&cfg(), g.len(), g.max_degree());
        assert!(out.palette <= params.palette_bound());
        // Verifier agrees.
        assert!(
            verify::distance_violations(g.positions(), coloring.as_slice(), g.radius()).is_empty()
        );
    }

    #[test]
    fn graph_model_baseline_also_works() {
        let c = cfg();
        let graph = UnitDiskGraph::new(placement::uniform(40, 4.0, 4.0, 7), c.r_t());
        let params = MwParams::practical(&c, graph.len(), graph.max_degree());
        let out = run_mw(
            &graph,
            GraphModel::new(),
            &MwConfig::new(params).with_seed(5),
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done);
        assert!(out.coloring.unwrap().is_proper(&graph));
    }

    #[test]
    fn asynchronous_wakeup_still_colors_properly() {
        let (g, out) = run_on(
            placement::uniform(30, 3.0, 3.0, 11),
            9,
            WakeupSchedule::UniformRandom { window: 200 },
        );
        assert!(out.all_done);
        assert!(out.coloring.unwrap().is_proper(&g));
    }

    #[test]
    fn deterministic_in_seed() {
        let mk = || {
            run_on(
                placement::uniform(25, 3.0, 3.0, 2),
                42,
                WakeupSchedule::Synchronous,
            )
            .1
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_on(
            placement::uniform(25, 3.0, 3.0, 2),
            1,
            WakeupSchedule::Synchronous,
        )
        .1;
        let b = run_on(
            placement::uniform(25, 3.0, 3.0, 2),
            2,
            WakeupSchedule::Synchronous,
        )
        .1;
        // Same topology, different randomness: transmission counts differ
        // almost surely.
        assert_ne!(a.transmissions, b.transmissions);
    }

    #[test]
    fn observer_is_called() {
        let c = cfg();
        let graph = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], c.r_t());
        let params = MwParams::practical(&c, 2, 1);
        let mut calls = 0u64;
        let out = run_mw_observed(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(0),
            WakeupSchedule::Synchronous,
            |_, _| calls += 1,
        );
        assert_eq!(calls, out.slots);
        assert!(calls > 0);
    }

    #[test]
    fn lemma4_levels_bound_holds_empirically() {
        // Lemma 4: after being granted tc, a node enters at most φ(2R_T)
        // further A_i states. With the A_0 entry that caps levels_entered
        // at spread + 1.
        let (g, out) = run_on(
            placement::uniform(40, 4.0, 4.0, 7),
            6,
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done);
        let params = MwParams::practical(&cfg(), g.len(), g.max_degree());
        for (v, r) in out.node_reports.iter().enumerate() {
            assert!(
                (r.levels_entered as usize) <= params.spread + 1,
                "node {v} entered {} levels (spread = {})",
                r.levels_entered,
                params.spread
            );
        }
    }

    #[test]
    fn node_reports_are_consistent_with_coloring() {
        let (g, out) = run_on(
            placement::uniform(30, 3.0, 3.0, 4),
            2,
            WakeupSchedule::Synchronous,
        );
        let coloring = out.coloring.as_ref().unwrap();
        for (v, r) in out.node_reports.iter().enumerate() {
            assert_eq!(r.color, Some(coloring.color(v)));
            if coloring.color(v) == 0 {
                assert_eq!(r.leader, None, "leaders have no leader");
            } else {
                let l = r.leader.expect("non-leaders joined a cluster");
                assert_eq!(coloring.color(l), 0, "L(v) must be a leader");
                assert!(g.are_adjacent(v, l), "L(v) must be a neighbor");
                assert!(r.cluster_color.is_some());
            }
        }
        // Cluster sizes cover every non-leader exactly once.
        let total: usize = out.cluster_sizes().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.len() - out.leaders);
    }

    #[test]
    fn local_delta_variant_still_colors_properly() {
        let c = cfg();
        let graph = UnitDiskGraph::new(placement::uniform(40, 4.0, 4.0, 7), c.r_t());
        let params = MwParams::practical(&c, graph.len(), graph.max_degree());
        let out = run_mw_local_delta(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(4),
            WakeupSchedule::Synchronous,
        );
        assert!(out.all_done);
        assert!(out.coloring.unwrap().is_proper(&graph));
    }

    #[test]
    fn per_node_params_receive_node_ids() {
        let c = cfg();
        let graph = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], c.r_t());
        let params = MwParams::practical(&c, 2, 1);
        let mut seen = std::collections::BTreeSet::new();
        // Collect ids synchronously before the run starts (the closure is
        // called once per node during construction).
        let ids = std::cell::RefCell::new(&mut seen);
        let _ = run_mw_per_node(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(0).with_max_slots(5),
            WakeupSchedule::Synchronous,
            |id| {
                ids.borrow_mut().insert(id);
                params
            },
            |_, _| {},
        );
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn outcome_stats_cover_every_node() {
        let (g, out) = run_on(
            placement::uniform(20, 2.5, 2.5, 5),
            1,
            WakeupSchedule::Synchronous,
        );
        assert_eq!(out.stats.tx_slots.len(), g.len());
        // Awake slots partition into tx + listen for every node.
        for v in 0..g.len() {
            let awake = out.slots - out.stats.wake_slot[v];
            assert_eq!(out.stats.tx_slots[v] + out.stats.listen_slots[v], awake);
        }
        // Aggregate transmissions match the per-node counters.
        assert_eq!(out.stats.tx_slots.iter().sum::<u64>(), out.transmissions);
    }

    #[test]
    fn threads_do_not_change_the_outcome() {
        // Large enough that both the resolver chunks and the engine's node
        // shards engage; capped so the test stays quick. The whole
        // MwOutcome (coloring, stats, node reports, resolver counters)
        // must match the sequential run exactly.
        let c = cfg();
        let graph = UnitDiskGraph::new(placement::uniform(300, 8.0, 8.0, 7), c.r_t());
        let params = MwParams::practical(&c, graph.len(), graph.max_degree());
        let base_cfg = MwConfig::new(params).with_seed(3).with_max_slots(300);
        let naive_base = run_mw(
            &graph,
            SinrModel::new(c),
            &base_cfg,
            WakeupSchedule::Synchronous,
        );
        let fast_base = run_mw(
            &graph,
            sinr_model::FastSinrModel::new(c),
            &base_cfg,
            WakeupSchedule::Synchronous,
        );
        for threads in [2usize, 4] {
            let cfg_t = base_cfg.with_threads(threads);
            let naive = run_mw(
                &graph,
                SinrModel::new(c),
                &cfg_t,
                WakeupSchedule::Synchronous,
            );
            assert_eq!(naive, naive_base, "naive model, threads {threads}");
            let fast = run_mw(
                &graph,
                sinr_model::FastSinrModel::new(c),
                &cfg_t,
                WakeupSchedule::Synchronous,
            );
            assert_eq!(fast, fast_base, "fast model, threads {threads}");
        }
    }

    #[test]
    fn slot_cap_halts_incomplete_runs() {
        let c = cfg();
        let graph = UnitDiskGraph::new(placement::uniform(20, 2.0, 2.0, 3), c.r_t());
        let params = MwParams::practical(&c, graph.len(), graph.max_degree());
        let out = run_mw(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(0).with_max_slots(3),
            WakeupSchedule::Synchronous,
        );
        assert!(!out.all_done);
        assert_eq!(out.slots, 3);
        assert!(out.coloring.is_none());
        assert_eq!(out.palette, 0);
    }
}
