//! The per-node MW automaton: a line-by-line implementation of Figs. 1–3.
//!
//! The struct is split hot/cold for the slot engine's sake: the fields a
//! slot actually touches (`phase`, `counter`, `estimates`, the cached
//! threshold) live inline in [`MwNode`], while leader bookkeeping and
//! diagnostics that only move on phase transitions sit behind one `Box`
//! in [`MwCold`]. `tests/struct_sizes.rs` ratchets both sizes.

use crate::chi::chi_scratch;
use crate::mw::messages::MwMessage;
use crate::params::MwParams;
use sinr_geometry::NodeId;
use sinr_radiosim::{Action, NodeCtx, Protocol, SlotRng};
use std::collections::VecDeque;

/// The state class of an [`MwPhase`], as a dense 1-byte enum.
///
/// Used wherever only the *kind* of phase matters — per-phase slot
/// accounting, observability snapshots, the engine's SoA columns. The
/// discriminants match [`MwPhase::kind_index`] and stay niche-friendly:
/// `Option<MwPhaseKind>` is still one byte (checked in
/// `tests/struct_sizes.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MwPhaseKind {
    /// `A_i` listen loop.
    Listen = 0,
    /// `A_i` counter race.
    Compete = 1,
    /// `R`: requesting a cluster color.
    Request = 2,
    /// `C_0`: cluster leader.
    Leader = 3,
    /// `C_i`, `i > 0`: colored announcer.
    Colored = 4,
}

/// Which state class the node currently occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MwPhase {
    /// `A_level`, initial listen loop (Fig. 1 lines 2–5): silent for
    /// `remaining` more slots while tracking competitor counters.
    Listen {
        /// The color being competed for.
        level: usize,
        /// Slots left before the node starts counting (Fig. 1 line 6).
        remaining: u64,
    },
    /// `A_level`, counter race (Fig. 1 lines 7–15).
    Compete {
        /// The color being competed for.
        level: usize,
    },
    /// `R` (Fig. 3): requesting a cluster color from `leader`.
    Request {
        /// The leader `L(v)` chosen when the node was covered.
        leader: NodeId,
    },
    /// `C_0` (Fig. 2, `i = 0`): the node is a cluster leader with color 0.
    Leader,
    /// `C_level` for `level > 0` (Fig. 2, `i > 0`): colored, forever
    /// announcing `M_C^level`.
    Colored {
        /// The final color.
        level: usize,
    },
}

impl MwPhase {
    /// The `A_i` level if the node is in state class `A`, else `None`.
    pub fn competing_level(&self) -> Option<usize> {
        match *self {
            MwPhase::Listen { level, .. } | MwPhase::Compete { level } => Some(level),
            _ => None,
        }
    }

    /// The state class, stripped of its payload.
    pub fn kind(&self) -> MwPhaseKind {
        match self {
            MwPhase::Listen { .. } => MwPhaseKind::Listen,
            MwPhase::Compete { .. } => MwPhaseKind::Compete,
            MwPhase::Request { .. } => MwPhaseKind::Request,
            MwPhase::Leader => MwPhaseKind::Leader,
            MwPhase::Colored { .. } => MwPhaseKind::Colored,
        }
    }

    /// A stable index into per-phase accounting arrays (see
    /// [`MwNode::phase_slots`]).
    pub fn kind_index(&self) -> usize {
        self.kind() as usize
    }

    /// Human-readable names matching [`MwPhase::kind_index`].
    pub const KIND_NAMES: [&'static str; 5] = ["listen", "compete", "request", "leader", "colored"];
}

/// Leader-side bookkeeping (Fig. 2, `i = 0`).
#[derive(Debug, Clone, Default)]
struct LeaderState {
    /// Pending requesters, FIFO (Fig. 2: the queue `Q`). The node being
    /// served stays at the front until its grant window ends ("Remove w
    /// from Q" happens after the `⌈μ ln n⌉` repetitions).
    queue: VecDeque<NodeId>,
    /// Next cluster color to hand out, pre-increment (Fig. 2: `tc`).
    tc: usize,
    /// `(granted tc, remaining grant slots)` for the front of the queue.
    serving: Option<(usize, u64)>,
    /// Cluster colors already granted, per requester. A node whose whole
    /// grant window was lost re-requests and is re-served with the *same*
    /// `tc` — this keeps `tc ≤` cluster size `≤ Δ` deterministically, so
    /// the Theorem-2 palette bound holds surely instead of w.h.p. (the
    /// literal pseudocode would burn a fresh color on every re-request).
    granted: Vec<(NodeId, usize)>,
}

/// The cold half of [`MwNode`]: state the hot loop never streams.
///
/// Everything here is read or written only on phase transitions, inside
/// the leader's serve loop, or by diagnostics — never in the common
/// listen/compete slot. Boxing it keeps the struct the fused engine
/// passes stream per slot at cache-line scale.
#[derive(Debug, Clone, Default)]
pub struct MwCold {
    /// Interval buffer reused by every `χ(P_v)` evaluation, so resets in
    /// a warmed-up node allocate nothing (see [`chi_scratch`]).
    chi_intervals: Vec<(i64, i64)>,
    /// `L(v)`: the leader this node joined, once covered.
    leader: Option<NodeId>,
    /// The cluster color `tc_v` received from the leader.
    cluster_color: Option<usize>,
    /// Leader-side state, present iff `phase == Leader`.
    leader_state: LeaderState,
    /// Number of `A_i` levels entered (diagnostics; Lemma 4 bounds it).
    levels_entered: u32,
    /// Number of `χ` resets performed (diagnostics).
    resets: u32,
    /// Slots spent in each phase kind (indexed by `MwPhase::kind_index`),
    /// excluding the slots still pending in
    /// `MwNode::phase_slots_pending`.
    phase_slots: [u64; 5],
}

/// The MW automaton for one node.
///
/// Implements [`Protocol`]; drive it with the
/// [`Simulator`](sinr_radiosim::Simulator) or via
/// [`run_mw`](crate::mw::run_mw).
#[derive(Debug, Clone)]
pub struct MwNode {
    id: NodeId,
    params: MwParams,
    phase: MwPhase,
    /// Final color, set on entering any `C_i`.
    color: Option<usize>,
    /// Counter `c_v` (meaningful in `Compete`).
    counter: i64,
    /// `⌈σΔ ln n⌉`, cached from [`MwParams::counter_threshold`] at
    /// construction: the compete arm compares against it every slot, and
    /// recomputing the ceil-of-product there costs more than the compare.
    counter_threshold: i64,
    /// Slots attributed to the *current* phase kind but not yet flushed
    /// into `MwCold::phase_slots` (flushed by [`MwNode::set_phase`] on
    /// every kind transition). Keeps the hot loop's accounting to one
    /// inline increment instead of an indexed store behind the `Box`.
    phase_slots_pending: u64,
    /// `P_v` with the local copies `d_v(w)`: competitor counter estimates
    /// for the *current* level (cleared on every level entry, Fig. 1
    /// line 1).
    estimates: Vec<(NodeId, i64)>,
    /// Everything the hot loop never touches; see [`MwCold`].
    cold: Box<MwCold>,
}

impl MwNode {
    /// Creates the automaton for node `id` with the given parameters.
    /// The node starts in `A_0` on wake-up.
    pub fn new(id: NodeId, params: MwParams) -> Self {
        let counter_threshold = params.counter_threshold();
        let mut node = MwNode {
            id,
            params,
            phase: MwPhase::Listen {
                level: 0,
                remaining: 0,
            },
            color: None,
            counter: 0,
            counter_threshold,
            phase_slots_pending: 0,
            estimates: Vec::new(),
            cold: Box::default(),
        };
        node.enter_level(0);
        node
    }

    /// Preallocates every growable buffer to its degree bound, so a
    /// warmed-up node never allocates in the hot loop: competitors,
    /// requesters, and grantees are all neighbors, capping `estimates`,
    /// the leader queue, and the grant ledger at `degree` entries each.
    /// Drivers call this with the node's graph degree right after
    /// construction; skipping it costs rare mid-run allocations, never
    /// correctness.
    pub fn reserve(&mut self, degree: usize) {
        self.estimates.reserve(degree);
        self.cold.chi_intervals.reserve(degree);
        self.cold.leader_state.queue.reserve(degree);
        self.cold.leader_state.granted.reserve(degree);
    }

    /// The node's final color, once decided.
    pub fn color(&self) -> Option<usize> {
        self.color
    }

    /// The current phase.
    pub fn phase(&self) -> &MwPhase {
        &self.phase
    }

    /// The leader `L(v)` this node joined, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.cold.leader
    }

    /// The cluster color `tc_v` granted by the leader, if any.
    pub fn cluster_color(&self) -> Option<usize> {
        self.cold.cluster_color
    }

    /// How many `A_i` levels this node has entered (Lemma 4 bounds the
    /// levels *above* the granted one by `φ(2R_T)`).
    pub fn levels_entered(&self) -> u32 {
        self.cold.levels_entered
    }

    /// How many times the node reset its counter to `χ(P_v)`.
    pub fn resets(&self) -> u32 {
        self.cold.resets
    }

    /// The current competition counter `c_v` (meaningful while the node is
    /// in `Compete`; exposed for the observability layer's counter-reset
    /// annotations).
    pub fn counter(&self) -> i64 {
        self.counter
    }

    /// Slots spent in each phase kind, indexed by
    /// [`MwPhase::kind_index`] / named by [`MwPhase::KIND_NAMES`] —
    /// the decomposition of the node's running time.
    pub fn phase_slots(&self) -> [u64; 5] {
        let mut out = self.cold.phase_slots;
        out[self.phase.kind_index()] += self.phase_slots_pending;
        out
    }

    /// The send probability of this node in its current phase: `q_ℓ` for
    /// leaders, `q_s` otherwise (§IV, proof of Lemma 3). Used by the
    /// experiment harness to evaluate the probabilistic interference `Ψ`.
    pub fn send_probability(&self) -> f64 {
        match self.phase {
            MwPhase::Leader => self.params.q_leader,
            MwPhase::Listen { .. } => 0.0,
            _ => self.params.q_small,
        }
    }

    /// Replaces the phase, flushing the pending slot count into the cold
    /// accounting array when the phase *kind* changes. Every transition
    /// must go through here (or keep the kind) for
    /// [`MwNode::phase_slots`] to stay exact.
    fn set_phase(&mut self, phase: MwPhase) {
        let old = self.phase.kind_index();
        if old != phase.kind_index() {
            self.cold.phase_slots[old] += self.phase_slots_pending;
            self.phase_slots_pending = 0;
        }
        self.phase = phase;
    }

    /// Enters state `A_level` (Fig. 1 line 1): clear `P_v`, start the
    /// listen loop of `⌈ηΔ ln n⌉` slots.
    fn enter_level(&mut self, level: usize) {
        self.estimates.clear();
        self.counter = 0;
        self.cold.levels_entered += 1;
        self.set_phase(MwPhase::Listen {
            level,
            remaining: self.params.listen_slots(),
        });
    }

    /// Becomes colored with `level` (Fig. 2 line 1): `C_0` ⇒ leader,
    /// `C_i` ⇒ colored announcer.
    fn enter_colored(&mut self, level: usize) {
        self.color = Some(level);
        let phase = if level == 0 {
            // Reset in place: replacing the struct would drop the
            // capacity [`MwNode::reserve`] set aside for the queue and
            // the grant ledger.
            let st = &mut self.cold.leader_state;
            st.queue.clear();
            st.granted.clear();
            st.tc = 0;
            st.serving = None;
            MwPhase::Leader
        } else {
            MwPhase::Colored { level }
        };
        self.set_phase(phase);
    }

    /// `d_v(w) := d_v(w) + 1` for each `w ∈ P_v` (Fig. 1 lines 3 and 9).
    fn bump_estimates(&mut self) {
        for (_, d) in &mut self.estimates {
            *d += 1;
        }
    }

    /// `P_v := P_v ∪ {w}; d_v(w) := c_w` (Fig. 1 lines 4 and 14).
    fn record_estimate(&mut self, w: NodeId, c_w: i64) {
        if let Some(entry) = self.estimates.iter_mut().find(|(id, _)| *id == w) {
            entry.1 = c_w;
        } else {
            self.estimates.push((w, c_w));
        }
    }

    /// `χ(P_v)` for the current level's reset window (Fig. 1 line 6).
    fn chi_value(&mut self, level: usize) -> i64 {
        let window = self.params.reset_window(level);
        chi_scratch(
            self.estimates.iter().map(|&(_, d)| d),
            window,
            &mut self.cold.chi_intervals,
        )
    }

    /// The leader's slot behaviour (Fig. 2, `i = 0`).
    fn leader_begin_slot<R: SlotRng + ?Sized>(&mut self, rng: &mut R) -> Action<MwMessage> {
        let st = &mut self.cold.leader_state;
        if st.serving.is_none() {
            if let Some(&front) = st.queue.front() {
                // Fig. 2 lines 11–13: tc := tc + 1; serve the first
                // element — unless this requester was served before and
                // lost its grant window, in which case re-serve its
                // original tc (see `LeaderState::granted`).
                let tc = match st.granted.iter().find(|&&(w, _)| w == front) {
                    Some(&(_, tc)) => tc,
                    None => {
                        st.tc += 1;
                        st.granted.push((front, st.tc));
                        st.tc
                    }
                };
                st.serving = Some((tc, self.params.response_slots()));
            }
        }
        match st.serving {
            Some((tc, ref mut remaining)) => {
                let target = *st.queue.front().expect("serving implies non-empty queue");
                *remaining -= 1;
                let finished = *remaining == 0;
                let action = if rng.chance(self.params.q_leader) {
                    Action::Transmit(MwMessage::Grant { to: target, tc })
                } else {
                    Action::Listen
                };
                if finished {
                    // Fig. 2 line 14: remove w from Q.
                    st.queue.pop_front();
                    st.serving = None;
                }
                action
            }
            None => {
                // Fig. 2 lines 8–9: queue empty -> beacon with probability q_ℓ.
                if rng.chance(self.params.q_leader) {
                    Action::Transmit(MwMessage::ColorTaken { level: 0 })
                } else {
                    Action::Listen
                }
            }
        }
    }
}

impl Protocol for MwNode {
    type Message = MwMessage;

    fn begin_slot<R: SlotRng + ?Sized>(
        &mut self,
        _ctx: &NodeCtx,
        rng: &mut R,
    ) -> Action<MwMessage> {
        self.phase_slots_pending += 1;
        match self.phase {
            MwPhase::Listen { .. } => {
                // Fig. 1 line 3: advance all local counter copies. The node
                // is silent throughout the listen loop.
                self.bump_estimates();
                Action::Listen
            }
            MwPhase::Compete { level } => {
                // Fig. 1 lines 8–9: increment own counter and all copies.
                self.counter += 1;
                self.bump_estimates();
                // Fig. 1 line 10: threshold reached -> enter C_level.
                if self.counter >= self.counter_threshold {
                    self.enter_colored(level);
                    // The node acts as a C_level member from this very
                    // slot (Fig. 2 starts immediately).
                    return match self.phase {
                        MwPhase::Leader => self.leader_begin_slot(rng),
                        _ => {
                            if rng.chance(self.params.q_small) {
                                Action::Transmit(MwMessage::ColorTaken { level })
                            } else {
                                Action::Listen
                            }
                        }
                    };
                }
                // Fig. 1 line 11: transmit M_A^i(v, c_v) with probability q_s.
                if rng.chance(self.params.q_small) {
                    Action::Transmit(MwMessage::Compete {
                        level,
                        counter: self.counter,
                    })
                } else {
                    Action::Listen
                }
            }
            MwPhase::Request { leader } => {
                // Fig. 3 line 2: transmit M_R(v, L(v)) with probability q_s.
                if rng.chance(self.params.q_small) {
                    Action::Transmit(MwMessage::Request { leader })
                } else {
                    Action::Listen
                }
            }
            MwPhase::Leader => self.leader_begin_slot(rng),
            MwPhase::Colored { level } => {
                // Fig. 2 line 3: transmit M_C^i(v) with probability q_s
                // until the protocol stops.
                if rng.chance(self.params.q_small) {
                    Action::Transmit(MwMessage::ColorTaken { level })
                } else {
                    Action::Listen
                }
            }
        }
    }

    fn end_slot(&mut self, _ctx: &NodeCtx, received: &[(NodeId, MwMessage)]) {
        match self.phase {
            MwPhase::Listen { level, remaining } => {
                for &(w, msg) in received {
                    if msg.announces_color(level) {
                        // Fig. 1 line 5: covered -> A_suc (R for level 0,
                        // A_{level+1} otherwise).
                        if level == 0 {
                            self.cold.leader = Some(w);
                            self.set_phase(MwPhase::Request { leader: w });
                        } else {
                            self.enter_level(level + 1);
                        }
                        return;
                    }
                    if let MwMessage::Compete {
                        level: l,
                        counter: c_w,
                    } = msg
                    {
                        if l == level {
                            // Fig. 1 line 4.
                            self.record_estimate(w, c_w);
                        }
                    }
                }
                // Advance the listen loop; after the last iteration compute
                // c_v := χ(P_v) and start competing (Fig. 1 lines 6–7).
                let remaining = remaining - 1;
                if remaining == 0 {
                    self.counter = self.chi_value(level);
                    self.set_phase(MwPhase::Compete { level });
                } else {
                    self.phase = MwPhase::Listen { level, remaining };
                }
            }
            MwPhase::Compete { level } => {
                for &(w, msg) in received {
                    if msg.announces_color(level) {
                        // Fig. 1 line 12.
                        if level == 0 {
                            self.cold.leader = Some(w);
                            self.set_phase(MwPhase::Request { leader: w });
                        } else {
                            self.enter_level(level + 1);
                        }
                        return;
                    }
                    if let MwMessage::Compete {
                        level: l,
                        counter: c_w,
                    } = msg
                    {
                        if l == level {
                            // Fig. 1 lines 13–15.
                            self.record_estimate(w, c_w);
                            if (self.counter - c_w).abs() <= self.params.reset_window(level) {
                                self.counter = self.chi_value(level);
                                self.cold.resets += 1;
                            }
                        }
                    }
                }
            }
            MwPhase::Request { leader } => {
                for &(w, msg) in received {
                    if let MwMessage::Grant { to, tc } = msg {
                        // Fig. 3 lines 3–4: a grant from my leader
                        // addressed to me.
                        if w == leader && to == self.id {
                            self.cold.cluster_color = Some(tc);
                            self.enter_level(tc * self.params.spread);
                            return;
                        }
                    }
                }
            }
            MwPhase::Leader => {
                for &(w, msg) in received {
                    if let MwMessage::Request { leader } = msg {
                        // Fig. 2 line 7: enqueue unseen requesters.
                        if leader == self.id && !self.cold.leader_state.queue.contains(&w) {
                            self.cold.leader_state.queue.push_back(w);
                        }
                    }
                }
            }
            MwPhase::Colored { .. } => {}
        }
    }

    fn is_done(&self) -> bool {
        self.color.is_some()
    }

    fn empty_end_slot_is_noop(&self) -> bool {
        // Only the listen loop does real work on an empty inbox (the
        // countdown of Fig. 1 lines 2–5 advances every slot); every other
        // phase's end_slot just scans `received`, so with nothing received
        // the engine may skip the callback outright. This is what lets the
        // fused delivery pass ignore the colored/leader long tail.
        !matches!(self.phase, MwPhase::Listen { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_model::SinrConfig;

    fn params() -> MwParams {
        MwParams::practical(&SinrConfig::default_unit(), 64, 4)
    }

    fn ctx(id: NodeId, slot: u64) -> NodeCtx {
        NodeCtx {
            id,
            global_slot: slot,
            local_slot: slot,
        }
    }

    /// A SlotRng with a fixed answer for `chance`.
    struct FixedRng(bool);
    impl SlotRng for FixedRng {
        fn chance(&mut self, _p: f64) -> bool {
            self.0
        }
        fn uniform(&mut self) -> f64 {
            if self.0 {
                0.0
            } else {
                0.999
            }
        }
        fn pick(&mut self, _bound: u64) -> u64 {
            0
        }
    }

    #[test]
    fn starts_listening_at_level_zero() {
        let node = MwNode::new(3, params());
        assert_eq!(
            *node.phase(),
            MwPhase::Listen {
                level: 0,
                remaining: params().listen_slots()
            }
        );
        assert_eq!(node.color(), None);
        assert!(!node.is_done());
        assert_eq!(node.send_probability(), 0.0);
    }

    #[test]
    fn listen_phase_is_silent_and_times_out_into_compete() {
        let p = params();
        let mut node = MwNode::new(0, p);
        let mut rng = FixedRng(true); // would transmit if allowed
        for s in 0..p.listen_slots() {
            let a = node.begin_slot(&ctx(0, s), &mut rng);
            assert_eq!(a, Action::Listen, "listen phase must be silent");
            node.end_slot(&ctx(0, s), &[]);
        }
        assert_eq!(*node.phase(), MwPhase::Compete { level: 0 });
        // No competitors seen: χ(∅) = 0.
        assert_eq!(node.counter, 0);
    }

    #[test]
    fn lone_node_becomes_leader_after_threshold() {
        let p = params();
        let mut node = MwNode::new(0, p);
        let mut rng = FixedRng(false); // never transmit (q_s draws fail)
        let mut slot = 0;
        let budget = p.listen_slots() + p.counter_threshold() as u64 + 2;
        while !node.is_done() && slot < budget {
            let _ = node.begin_slot(&ctx(0, slot), &mut rng);
            node.end_slot(&ctx(0, slot), &[]);
            slot += 1;
        }
        assert_eq!(node.color(), Some(0));
        assert_eq!(*node.phase(), MwPhase::Leader);
        assert_eq!(node.send_probability(), p.q_leader);
    }

    #[test]
    fn hearing_leader_in_listen_moves_to_request() {
        let p = params();
        let mut node = MwNode::new(5, p);
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(5, 0), &mut rng);
        node.end_slot(&ctx(5, 0), &[(9, MwMessage::ColorTaken { level: 0 })]);
        assert_eq!(*node.phase(), MwPhase::Request { leader: 9 });
        assert_eq!(node.leader(), Some(9));
    }

    #[test]
    fn grant_addressed_to_other_is_still_a_beacon_for_a0() {
        let p = params();
        let mut node = MwNode::new(5, p);
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(5, 0), &mut rng);
        node.end_slot(&ctx(5, 0), &[(9, MwMessage::Grant { to: 2, tc: 1 })]);
        assert_eq!(*node.phase(), MwPhase::Request { leader: 9 });
    }

    #[test]
    fn request_ignores_foreign_grants_accepts_own() {
        let p = params();
        let mut node = MwNode::new(5, p);
        node.phase = MwPhase::Request { leader: 9 };
        node.cold.leader = Some(9);
        let mut rng = FixedRng(false);
        // Grant from another leader to me: ignored.
        let _ = node.begin_slot(&ctx(5, 0), &mut rng);
        node.end_slot(&ctx(5, 0), &[(8, MwMessage::Grant { to: 5, tc: 1 })]);
        assert!(matches!(*node.phase(), MwPhase::Request { .. }));
        // Grant from my leader to someone else: ignored.
        let _ = node.begin_slot(&ctx(5, 1), &mut rng);
        node.end_slot(&ctx(5, 1), &[(9, MwMessage::Grant { to: 6, tc: 1 })]);
        assert!(matches!(*node.phase(), MwPhase::Request { .. }));
        // Grant from my leader to me: accepted, enter A_{tc·spread}.
        let _ = node.begin_slot(&ctx(5, 2), &mut rng);
        node.end_slot(&ctx(5, 2), &[(9, MwMessage::Grant { to: 5, tc: 2 })]);
        assert_eq!(
            node.phase().competing_level(),
            Some(2 * p.spread),
            "enters A_(tc*spread)"
        );
        assert_eq!(node.cluster_color(), Some(2));
    }

    #[test]
    fn compete_resets_on_close_counter() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 0 };
        node.counter = 10;
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(0, 0), &mut rng); // counter -> 11
        let w = p.reset_window(0);
        // Competitor counter within the window: reset to χ ≤ -(w+1)+...
        node.end_slot(
            &ctx(0, 0),
            &[(
                3,
                MwMessage::Compete {
                    level: 0,
                    counter: 11,
                },
            )],
        );
        assert!(node.counter <= 0, "counter must reset to χ ≤ 0");
        assert!(node.counter < 11 - w, "counter left the forbidden window");
        assert_eq!(node.resets(), 1);
    }

    #[test]
    fn compete_ignores_far_counter_and_other_levels() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 0 };
        node.counter = 10;
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(0, 0), &mut rng); // 11
        let far = 11 + p.reset_window(0) + 5;
        node.end_slot(
            &ctx(0, 0),
            &[
                (
                    3,
                    MwMessage::Compete {
                        level: 0,
                        counter: far,
                    },
                ),
                (
                    4,
                    MwMessage::Compete {
                        level: 7,
                        counter: 11,
                    },
                ),
                (5, MwMessage::ColorTaken { level: 2 }),
            ],
        );
        assert_eq!(node.counter, 11, "no reset for far/foreign messages");
        assert_eq!(*node.phase(), MwPhase::Compete { level: 0 });
    }

    #[test]
    fn losing_level_i_moves_to_next_level() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 3 };
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(0, 0), &mut rng);
        node.end_slot(&ctx(0, 0), &[(2, MwMessage::ColorTaken { level: 3 })]);
        assert_eq!(
            *node.phase(),
            MwPhase::Listen {
                level: 4,
                remaining: p.listen_slots()
            }
        );
    }

    #[test]
    fn threshold_transition_happens_before_transmit() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 2 };
        node.counter = p.counter_threshold() - 1;
        let mut rng = FixedRng(true); // all sends succeed
        let action = node.begin_slot(&ctx(0, 0), &mut rng);
        // The node crossed the threshold this slot: it must announce the
        // color, not a compete message.
        assert_eq!(action, Action::Transmit(MwMessage::ColorTaken { level: 2 }));
        assert_eq!(node.color(), Some(2));
        assert!(node.is_done());
    }

    #[test]
    fn leader_serves_queue_in_fifo_order_with_incrementing_tc() {
        let p = params();
        let mut node = MwNode::new(9, p);
        node.enter_colored(0);
        let mut rng_tx = FixedRng(true);
        // Two requests arrive (plus a duplicate).
        node.end_slot(
            &ctx(9, 0),
            &[
                (4, MwMessage::Request { leader: 9 }),
                (7, MwMessage::Request { leader: 9 }),
                (4, MwMessage::Request { leader: 9 }),
            ],
        );
        assert_eq!(node.cold.leader_state.queue.len(), 2);
        // First grant window: tc = 1 for node 4, lasting response_slots.
        for s in 0..p.response_slots() {
            let a = node.begin_slot(&ctx(9, 1 + s), &mut rng_tx);
            assert_eq!(a, Action::Transmit(MwMessage::Grant { to: 4, tc: 1 }));
            node.end_slot(&ctx(9, 1 + s), &[]);
        }
        // Second grant window: tc = 2 for node 7.
        let a = node.begin_slot(&ctx(9, 99), &mut rng_tx);
        assert_eq!(a, Action::Transmit(MwMessage::Grant { to: 7, tc: 2 }));
        // Requests received for a node already in the queue are dropped;
        // the front is still being served.
        node.end_slot(&ctx(9, 99), &[(7, MwMessage::Request { leader: 9 })]);
        assert_eq!(node.cold.leader_state.queue.len(), 1);
    }

    #[test]
    fn leader_reserves_same_tc_on_rerequest() {
        // A requester that lost its entire grant window re-requests; the
        // leader must re-serve the original tc, keeping tc <= cluster
        // size (the Theorem-2 palette bound depends on this).
        let p = params();
        let mut node = MwNode::new(9, p);
        node.enter_colored(0);
        let mut rng = FixedRng(true);
        // First service cycle for node 4 (tc = 1).
        node.end_slot(&ctx(9, 0), &[(4, MwMessage::Request { leader: 9 })]);
        for s in 0..p.response_slots() {
            let a = node.begin_slot(&ctx(9, 1 + s), &mut rng);
            assert_eq!(a, Action::Transmit(MwMessage::Grant { to: 4, tc: 1 }));
            node.end_slot(&ctx(9, 1 + s), &[]);
        }
        // Node 4 missed everything and requests again; a new node 6 also
        // requests. Node 4 is re-served tc = 1; node 6 then gets tc = 2.
        node.end_slot(
            &ctx(9, 100),
            &[
                (4, MwMessage::Request { leader: 9 }),
                (6, MwMessage::Request { leader: 9 }),
            ],
        );
        for s in 0..p.response_slots() {
            let a = node.begin_slot(&ctx(9, 101 + s), &mut rng);
            assert_eq!(a, Action::Transmit(MwMessage::Grant { to: 4, tc: 1 }));
            node.end_slot(&ctx(9, 101 + s), &[]);
        }
        let a = node.begin_slot(&ctx(9, 999), &mut rng);
        assert_eq!(a, Action::Transmit(MwMessage::Grant { to: 6, tc: 2 }));
    }

    #[test]
    fn leader_beacons_when_queue_empty() {
        let p = params();
        let mut node = MwNode::new(9, p);
        node.enter_colored(0);
        let mut rng = FixedRng(true);
        let a = node.begin_slot(&ctx(9, 0), &mut rng);
        assert_eq!(a, Action::Transmit(MwMessage::ColorTaken { level: 0 }));
        // Foreign requests are ignored.
        node.end_slot(&ctx(9, 0), &[(4, MwMessage::Request { leader: 8 })]);
        assert!(node.cold.leader_state.queue.is_empty());
    }

    #[test]
    fn colored_node_announces_forever_with_q_small() {
        let p = params();
        let mut node = MwNode::new(1, p);
        node.enter_colored(5);
        assert_eq!(node.color(), Some(5));
        assert_eq!(node.send_probability(), p.q_small);
        let mut rng = FixedRng(true);
        for s in 0..10 {
            let a = node.begin_slot(&ctx(1, s), &mut rng);
            assert_eq!(a, Action::Transmit(MwMessage::ColorTaken { level: 5 }));
            node.end_slot(&ctx(1, s), &[]);
        }
    }

    #[test]
    fn estimates_are_updated_not_duplicated() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 0 };
        node.counter = -1000; // avoid resets interfering
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(0, 0), &mut rng);
        node.end_slot(
            &ctx(0, 0),
            &[(
                3,
                MwMessage::Compete {
                    level: 0,
                    counter: 50,
                },
            )],
        );
        let _ = node.begin_slot(&ctx(0, 1), &mut rng);
        node.end_slot(
            &ctx(0, 1),
            &[(
                3,
                MwMessage::Compete {
                    level: 0,
                    counter: 60,
                },
            )],
        );
        assert_eq!(node.estimates.len(), 1);
        assert_eq!(node.estimates[0], (3, 60));
    }

    #[test]
    fn estimate_copies_advance_each_slot() {
        let p = params();
        let mut node = MwNode::new(0, p);
        node.phase = MwPhase::Compete { level: 0 };
        node.counter = -1000;
        let mut rng = FixedRng(false);
        let _ = node.begin_slot(&ctx(0, 0), &mut rng);
        node.end_slot(
            &ctx(0, 0),
            &[(
                3,
                MwMessage::Compete {
                    level: 0,
                    counter: 50,
                },
            )],
        );
        for s in 1..=4 {
            let _ = node.begin_slot(&ctx(0, s), &mut rng);
            node.end_slot(&ctx(0, s), &[]);
        }
        assert_eq!(node.estimates[0], (3, 54));
    }

    #[test]
    fn phase_slot_accounting_survives_transitions() {
        // The pending counter flushes on kind changes; the observable
        // decomposition must match a per-slot tally regardless of when
        // it is queried.
        let p = params();
        let mut node = MwNode::new(0, p);
        let mut rng = FixedRng(false);
        let listen = p.listen_slots();
        for s in 0..listen + 3 {
            let _ = node.begin_slot(&ctx(0, s), &mut rng);
            node.end_slot(&ctx(0, s), &[]);
        }
        let slots = node.phase_slots();
        assert_eq!(slots[MwPhaseKind::Listen as usize], listen);
        assert_eq!(slots[MwPhaseKind::Compete as usize], 3);
        assert_eq!(slots.iter().sum::<u64>(), listen + 3);
    }
}
