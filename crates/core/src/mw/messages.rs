//! The message alphabet of the MW algorithm.
//!
//! The paper uses four message forms; the sender's id is carried by the
//! channel (the simulator delivers `(sender, message)` pairs), so it is not
//! duplicated inside the message:
//!
//! | Paper               | Here                                    |
//! |---------------------|-----------------------------------------|
//! | `M_A^i(v, c_v)`     | [`MwMessage::Compete`]                  |
//! | `M_C^i(v)`          | [`MwMessage::ColorTaken`]               |
//! | `M_C^0(v, w, tc)`   | [`MwMessage::Grant`]                    |
//! | `M_R(v, L(v))`      | [`MwMessage::Request`]                  |
//!
//! Note that a [`MwMessage::Grant`] *is* an `M_C^0` message: nodes in state
//! `A_0` treat it as proof that the sender is a leader (Fig. 1 line 5),
//! exactly like the queue-empty beacon `M_C^0(v)`.

use sinr_geometry::NodeId;

/// A message of the MW coloring protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MwMessage {
    /// `M_A^i(v, c_v)`: the sender competes in `A_level` with the given
    /// counter value (Fig. 1 line 11).
    Compete {
        /// The color level `i` being competed for.
        level: usize,
        /// The sender's counter `c_v` at transmission time.
        counter: i64,
    },
    /// `M_C^i(v)`: the sender holds color `level`. For `level = 0` this is
    /// the leader's queue-empty beacon (Fig. 2 line 9); for `level > 0`
    /// the perpetual announcement of Fig. 2 line 3.
    ColorTaken {
        /// The color held by the sender.
        level: usize,
    },
    /// `M_C^0(v, w, tc)`: the sending leader grants cluster color `tc` to
    /// node `to` (Fig. 2 line 13).
    Grant {
        /// The requester being served.
        to: NodeId,
        /// The granted cluster color (`1 ≤ tc ≤` cluster size).
        tc: usize,
    },
    /// `M_R(v, L(v))`: the sender requests a cluster color from its leader
    /// (Fig. 3 line 2).
    Request {
        /// The leader the request is addressed to.
        leader: NodeId,
    },
}

impl MwMessage {
    /// Whether this message proves its sender is in `C_level` — i.e.
    /// whether a node competing in `A_level` must treat the color as taken
    /// (Fig. 1 lines 5 and 12).
    ///
    /// For `level = 0` both the beacon and a grant qualify (grants are
    /// `M_C^0` messages).
    pub fn announces_color(&self, level: usize) -> bool {
        match *self {
            MwMessage::ColorTaken { level: l } => l == level,
            MwMessage::Grant { .. } => level == 0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_taken_matches_its_level_only() {
        let m = MwMessage::ColorTaken { level: 3 };
        assert!(m.announces_color(3));
        assert!(!m.announces_color(0));
        assert!(!m.announces_color(2));
    }

    #[test]
    fn grant_is_a_level_zero_announcement() {
        let m = MwMessage::Grant { to: 7, tc: 2 };
        assert!(m.announces_color(0));
        assert!(!m.announces_color(1));
    }

    #[test]
    fn compete_and_request_announce_nothing() {
        assert!(!MwMessage::Compete {
            level: 0,
            counter: 5
        }
        .announces_color(0));
        assert!(!MwMessage::Request { leader: 1 }.announces_color(0));
    }
}
