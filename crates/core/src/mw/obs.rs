//! Runtime invariant probes: the paper's claims, checked while a run is
//! in flight.
//!
//! Each probe maps to one statement of the paper and records its findings
//! as first-class metrics — **never panics** — so a violated claim shows up
//! as a nonzero `probe.*.violations` counter (plus a structured
//! [`ObsEvent::Violation`] in the event stream) that CI and the bench
//! reports can diff:
//!
//! | probe | claim | check |
//! |-------|-------|-------|
//! | `thm1_independence` | Theorem 1: every color class is independent at every slot | decided colors of adjacent nodes differ (incremental on decide + full sweep every [`MwProbeConfig::thm1_stride`] slots) |
//! | `lemma4_levels` | Lemma 4: a node enters at most `φ(2R_T) + 1` levels | `levels_entered ≤ spread + 1` per node |
//! | `lemma6_a_residency` | Lemmas 5–6: bounded time in the `A_i` states | per-node `listen + compete` slots against a 4× whp budget |
//! | `lemma7_r_residency` | Lemma 7: bounded time in the request state `R` | per-node `request` slots against a 4× whp budget |
//!
//! The phase tracker additionally streams MW state transitions
//! (`A_i → R → C_j`, with levels) and `χ(P_v)` counter resets as
//! [`ObsEvent::Phase`] / [`ObsEvent::Note`] events, and records one
//! residency span per `(node, phase kind)` stay on the trace timeline
//! (`SpanTrack::Node`, slot-time) — the spanned, phase-aware trace
//! `docs/OBSERVABILITY.md` documents.

use crate::mw::node::{MwNode, MwPhase};
use crate::params::MwParams;
use sinr_model::InterferenceModel;
use sinr_obs::{keys, ObsEvent, Recorder, SpanRecord, SpanTrack, QUARTERS_PER_SLOT};
use sinr_radiosim::{Simulator, StepView};

/// Probe identifier used in `thm1` violation events.
pub const PROBE_THM1: &str = "thm1_independence";
/// Probe identifier used in Lemma-4 violation events.
pub const PROBE_LEMMA4: &str = "lemma4_levels";
/// Probe identifier used in Lemma-6 violation events.
pub const PROBE_LEMMA6: &str = "lemma6_a_residency";
/// Probe identifier used in Lemma-7 violation events.
pub const PROBE_LEMMA7: &str = "lemma7_r_residency";

/// Which probes run, and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MwProbeConfig {
    /// Full Theorem-1 independence sweep every this many slots; `0`
    /// disables the sweep (the cheap incremental check on newly decided
    /// nodes still runs whenever tracking is enabled).
    pub thm1_stride: u64,
    /// Stream `Phase`/`Note` events for MW state transitions and counter
    /// resets (O(n) scan per slot).
    pub track_phases: bool,
    /// Account per-state residency against the Lemma-6/7 budgets at end of
    /// run.
    pub residency: bool,
}

impl Default for MwProbeConfig {
    /// Everything on, independence sweep every slot (stride 1) — the
    /// configuration the e2e tests assert zero violations under.
    fn default() -> Self {
        MwProbeConfig {
            thm1_stride: 1,
            track_phases: true,
            residency: true,
        }
    }
}

impl MwProbeConfig {
    /// All probes off (pure engine-event recording).
    pub fn disabled() -> Self {
        MwProbeConfig {
            thm1_stride: 0,
            track_phases: false,
            residency: false,
        }
    }

    /// Sets the Theorem-1 sweep stride (`0` disables the sweep).
    pub fn with_thm1_stride(mut self, stride: u64) -> Self {
        self.thm1_stride = stride;
        self
    }
}

/// Per-run probe state; drive with [`MwProbes::observe`] every slot and
/// [`MwProbes::finalize`] once after the run (both are cheap no-ops when
/// the recorder is disabled).
#[derive(Debug, Clone)]
pub struct MwProbes {
    cfg: MwProbeConfig,
    spread: usize,
    /// 4× the per-node whp budget for total `A_i` (listen + compete)
    /// residency: Lemma 6's `O(σΔ ln n)` per level, summed over the at
    /// most `spread + 1` levels of Lemma 4.
    lemma6_budget: u64,
    /// 4× the per-node whp budget for `R` residency: Lemma 7's grant-wait
    /// of at most `Δ` grant windows of `⌈μ ln n⌉` slots each.
    lemma7_budget: u64,
    /// Last observed `(phase kind, level, resets)` per node, for
    /// transition diffing.
    prev: Vec<(usize, i64, u32)>,
    /// Slot at which each node entered its current phase kind, for the
    /// per-node residency spans on the trace timeline.
    enter_slot: Vec<u64>,
}

/// The protocol level of a phase, `−1` where levels do not apply (`R`).
fn phase_level(p: &MwPhase) -> i64 {
    match p {
        MwPhase::Listen { level, .. } | MwPhase::Compete { level } | MwPhase::Colored { level } => {
            i64::try_from(*level).unwrap_or(i64::MAX)
        }
        MwPhase::Leader => 0,
        MwPhase::Request { .. } => -1,
    }
}

impl MwProbes {
    /// Probes for a run of `n` nodes under `params`.
    pub fn new(n: usize, params: &MwParams, cfg: MwProbeConfig) -> Self {
        let per_level = params.listen_slots() + 3 * params.counter_threshold().max(1) as u64;
        let request = params.delta as u64 * params.response_slots().max(1);
        MwProbes {
            cfg,
            spread: params.spread,
            lemma6_budget: 4 * (params.spread as u64 + 1) * per_level,
            lemma7_budget: 4 * request,
            prev: vec![(0, 0, 0); n],
            enter_slot: vec![0; n],
        }
    }

    /// The configuration the probes run under.
    pub fn config(&self) -> &MwProbeConfig {
        &self.cfg
    }

    /// Per-slot hook: phase-transition tracing, counter-reset notes, and
    /// the Theorem-1 independence checks.
    pub fn observe<M: InterferenceModel>(
        &mut self,
        sim: &Simulator<MwNode, M>,
        view: &StepView,
        rec: &mut dyn Recorder,
    ) {
        if !rec.enabled() {
            return;
        }
        let slot = view.slot;

        if self.cfg.track_phases {
            for (v, node) in sim.nodes().iter().enumerate() {
                let kind = node.phase().kind_index();
                let level = phase_level(node.phase());
                let resets = node.resets();
                let (pk, pl, pr) = self.prev[v];
                if kind != pk || level != pl {
                    rec.counter_add(keys::MW_PHASE_TRANSITIONS, 1);
                    rec.event(
                        slot,
                        &ObsEvent::Phase {
                            node: v,
                            from: MwPhase::KIND_NAMES[pk],
                            to: MwPhase::KIND_NAMES[kind],
                            level,
                        },
                    );
                    if kind != pk {
                        self.close_residency_span(v, pk, slot, rec);
                    }
                }
                if resets != pr {
                    rec.counter_add(keys::MW_COUNTER_RESETS, u64::from(resets - pr));
                    rec.event(
                        slot,
                        &ObsEvent::Note {
                            name: "counter_reset",
                            node: v,
                            value: node.counter(),
                        },
                    );
                }
                self.prev[v] = (kind, level, resets);
            }
        }

        if self.cfg.thm1_stride > 0 {
            // Colors are final once decided, so independence can only break
            // the slot a node decides: check each newly decided node against
            // its neighbors every slot (O(deg) amortized)…
            for &v in view.newly_done {
                if let Some(c) = sim.nodes()[v].color() {
                    for &w in sim.graph().neighbors(v) {
                        if w != v && sim.nodes()[w].color() == Some(c) {
                            self.thm1_violation(slot, v, c, rec);
                        }
                    }
                }
            }
            // …and corroborate with a full sweep at the configured stride.
            if slot.is_multiple_of(self.cfg.thm1_stride) {
                self.thm1_sweep(sim, slot, rec);
            }
        }
    }

    /// One full Theorem-1 sweep: every decided node against every decided
    /// neighbor (each unordered pair checked once).
    fn thm1_sweep<M: InterferenceModel>(
        &self,
        sim: &Simulator<MwNode, M>,
        slot: u64,
        rec: &mut dyn Recorder,
    ) {
        rec.counter_add(keys::PROBE_THM1_CHECKS, 1);
        let graph = sim.graph();
        for v in 0..graph.len() {
            if let Some(c) = sim.nodes()[v].color() {
                for &w in graph.neighbors(v) {
                    if w > v && sim.nodes()[w].color() == Some(c) {
                        self.thm1_violation(slot, v, c, rec);
                    }
                }
            }
        }
    }

    /// Emits the residency span for the phase `kind` that node `v` is
    /// leaving at `slot`, and marks `slot` as the entry into the next
    /// kind. Zero-length stays (entered and left within the same observed
    /// slot) are elided.
    fn close_residency_span(&mut self, v: usize, kind: usize, slot: u64, rec: &mut dyn Recorder) {
        let entered = self.enter_slot[v];
        if slot > entered {
            rec.span(&SpanRecord::complete(
                SpanTrack::Node(u32::try_from(v).unwrap_or(u32::MAX)),
                MwPhase::KIND_NAMES[kind],
                entered * QUARTERS_PER_SLOT,
                (slot - entered) * QUARTERS_PER_SLOT,
            ));
        }
        self.enter_slot[v] = slot;
    }

    fn thm1_violation(&self, slot: u64, node: usize, color: usize, rec: &mut dyn Recorder) {
        rec.counter_add(keys::PROBE_THM1_VIOLATIONS, 1);
        rec.event(
            slot,
            &ObsEvent::Violation {
                probe: PROBE_THM1,
                node,
                detail: i64::try_from(color).unwrap_or(i64::MAX),
            },
        );
    }

    /// End-of-run hook: Lemma-4 level accounting, Lemma-6/7 residency
    /// accounting, and the `mw.*` aggregates.
    pub fn finalize<M: InterferenceModel>(
        &mut self,
        sim: &Simulator<MwNode, M>,
        rec: &mut dyn Recorder,
    ) {
        if !rec.enabled() {
            return;
        }
        let slot = sim.current_slot();
        if self.cfg.track_phases {
            // Close the still-open residency span of every node so the
            // trace timeline covers the whole run.
            for v in 0..self.prev.len() {
                let kind = self.prev[v].0;
                self.close_residency_span(v, kind, slot, rec);
            }
        }
        let mut residency = [0u64; 5];
        let mut max_a = 0u64;
        let mut max_r = 0u64;
        let mut max_levels = 0u32;

        for (v, node) in sim.nodes().iter().enumerate() {
            let levels = node.levels_entered();
            max_levels = max_levels.max(levels);
            rec.counter_add(keys::PROBE_LEMMA4_CHECKS, 1);
            if levels as u64 > self.spread as u64 + 1 {
                rec.counter_add(keys::PROBE_LEMMA4_VIOLATIONS, 1);
                rec.event(
                    slot,
                    &ObsEvent::Violation {
                        probe: PROBE_LEMMA4,
                        node: v,
                        detail: i64::from(levels),
                    },
                );
            }

            if self.cfg.residency {
                let ps = node.phase_slots();
                for (total, spent) in residency.iter_mut().zip(ps) {
                    *total += spent;
                }
                let a = ps[0] + ps[1];
                let r = ps[2];
                max_a = max_a.max(a);
                max_r = max_r.max(r);
                rec.counter_add(keys::PROBE_LEMMA6_CHECKS, 1);
                if a > self.lemma6_budget {
                    rec.counter_add(keys::PROBE_LEMMA6_VIOLATIONS, 1);
                    rec.event(
                        slot,
                        &ObsEvent::Violation {
                            probe: PROBE_LEMMA6,
                            node: v,
                            detail: i64::try_from(a).unwrap_or(i64::MAX),
                        },
                    );
                }
                rec.counter_add(keys::PROBE_LEMMA7_CHECKS, 1);
                if r > self.lemma7_budget {
                    rec.counter_add(keys::PROBE_LEMMA7_VIOLATIONS, 1);
                    rec.event(
                        slot,
                        &ObsEvent::Violation {
                            probe: PROBE_LEMMA7,
                            node: v,
                            detail: i64::try_from(r).unwrap_or(i64::MAX),
                        },
                    );
                }
            }
        }

        rec.gauge_set(keys::MW_LEVELS_ENTERED_MAX, f64::from(max_levels));
        if self.cfg.residency {
            rec.counter_add(keys::MW_RESIDENCY_LISTEN, residency[0]);
            rec.counter_add(keys::MW_RESIDENCY_COMPETE, residency[1]);
            rec.counter_add(keys::MW_RESIDENCY_REQUEST, residency[2]);
            rec.counter_add(keys::MW_RESIDENCY_LEADER, residency[3]);
            rec.counter_add(keys::MW_RESIDENCY_COLORED, residency[4]);
            rec.gauge_set(keys::PROBE_LEMMA6_MAX_SLOTS, max_a as f64);
            rec.gauge_set(keys::PROBE_LEMMA7_MAX_SLOTS, max_r as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_levels_follow_the_paper_indexing() {
        assert_eq!(
            phase_level(&MwPhase::Listen {
                level: 3,
                remaining: 5
            }),
            3
        );
        assert_eq!(phase_level(&MwPhase::Compete { level: 2 }), 2);
        assert_eq!(phase_level(&MwPhase::Request { leader: 0 }), -1);
        assert_eq!(phase_level(&MwPhase::Leader), 0);
        assert_eq!(phase_level(&MwPhase::Colored { level: 7 }), 7);
    }

    #[test]
    fn residency_spans_partition_each_nodes_timeline() {
        use crate::mw::run::{run_mw_recorded, MwConfig};
        use sinr_geometry::{Point, UnitDiskGraph};
        use sinr_model::{SinrConfig, SinrModel};
        use sinr_obs::FullRecorder;
        use sinr_radiosim::WakeupSchedule;

        let c = SinrConfig::default_unit();
        let graph = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], c.r_t());
        let params = MwParams::practical(&c, 2, 1);
        let mut rec = FullRecorder::new();
        let out = run_mw_recorded(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(1),
            WakeupSchedule::Synchronous,
            MwProbeConfig::default(),
            &mut rec,
        );
        assert!(out.all_done);

        // Every node-track span names a real phase kind, and per node the
        // spans partition [0, slots): the closed stays plus the final
        // residency closed by `finalize` sum to the whole run.
        let mut per_node = [0u64; 2];
        for s in rec.spans() {
            if let SpanTrack::Node(v) = s.track {
                assert!(MwPhase::KIND_NAMES.contains(&s.name), "span {}", s.name);
                per_node[v as usize] += s.dur_q;
            }
        }
        for (v, total) in per_node.iter().enumerate() {
            assert_eq!(*total, out.slots * QUARTERS_PER_SLOT, "node {v}");
        }
        // Both nodes finished colored, so a `colored`-phase span (or the
        // phase they decided in) must close at the end of the run.
        assert!(rec
            .spans()
            .any(|s| matches!(s.track, SpanTrack::Node(_)) && s.name == "colored"));
    }

    #[test]
    fn default_config_sweeps_every_slot() {
        let cfg = MwProbeConfig::default();
        assert_eq!(cfg.thm1_stride, 1);
        assert!(cfg.track_phases);
        assert!(cfg.residency);
        let off = MwProbeConfig::disabled().with_thm1_stride(8);
        assert_eq!(off.thm1_stride, 8);
        assert!(!off.track_phases);
    }
}
