//! The MW coloring automaton (Figs. 1–3 of the paper) and its driver.
//!
//! Each node cycles through three state classes:
//!
//! * **`A_i`** (Fig. 1) — *competing* for color `i`: first listen for
//!   `⌈ηΔ ln n⌉` slots building counter estimates of already-active
//!   competitors, then race a counter to `⌈σΔ ln n⌉`, resetting via
//!   `χ(P_v)` whenever a nearby competitor's counter is too close.
//! * **`C_i`** (Fig. 2) — *colored* with `i`. `C_0` nodes are the cluster
//!   *leaders*: they beacon, queue color requests, and grant cluster colors
//!   `tc = 1, 2, …` to their cluster members. `C_i` for `i > 0` keep
//!   announcing `M_C^i` so that later competitors move on.
//! * **`R`** (Fig. 3) — *requesting* a cluster color from the leader
//!   `L(v)`; on grant `tc`, compete in `A_{tc·(φ(2R_T)+1)}`.
//!
//! The module is split into [`messages`] (the four message types), [`node`]
//! (the per-node automaton implementing
//! [`Protocol`](sinr_radiosim::Protocol)), and [`run`] (a driver executing
//! the automaton in the simulator and packaging the outcome).

pub mod messages;
pub mod node;
pub mod obs;
pub mod run;

pub use messages::MwMessage;
pub use node::{MwCold, MwNode, MwPhase, MwPhaseKind};
pub use obs::{MwProbeConfig, MwProbes};
pub use run::{
    run_mw, run_mw_local_delta, run_mw_observed, run_mw_per_node, run_mw_profiled, run_mw_recorded,
    MwAllocProfile, MwConfig, MwOutcome,
};
