//! The clustering stage of the MW algorithm as a standalone primitive:
//! distributed maximal-independent-set / dominating-set computation under
//! SINR.
//!
//! The `A_0`/`C_0` phase of the coloring algorithm *is* a distributed MIS
//! election (the paper builds on exactly this structure; its reference
//! \[20] studies the dominating-set problem under SINR in isolation).
//! Running only this stage gives an `O(Δ log n)` SINR MIS algorithm —
//! useful on its own for clustering, backbone formation, and as the seed
//! of the full coloring.

use crate::mw::node::{MwNode, MwPhase};
use crate::mw::run::MwConfig;
use sinr_geometry::{NodeId, UnitDiskGraph};
use sinr_model::InterferenceModel;
use sinr_radiosim::{Simulator, WakeupSchedule};

/// Result of running the clustering stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteringOutcome {
    /// Whether every node was clustered before the slot cap.
    pub all_clustered: bool,
    /// Slots executed.
    pub slots: u64,
    /// The elected leaders (`C_0` members), ascending.
    pub leaders: Vec<NodeId>,
    /// For each node: the leader it joined (`None` for leaders
    /// themselves, or for unfinished nodes in a capped run).
    pub assignment: Vec<Option<NodeId>>,
}

impl ClusteringOutcome {
    /// Whether the leader set is independent in `g` and every node is a
    /// leader or adjacent to its leader — the MIS/dominating property.
    pub fn is_maximal_independent(&self, g: &UnitDiskGraph) -> bool {
        if !sinr_geometry::packing::is_independent(g, &self.leaders) {
            return false;
        }
        (0..g.len()).all(|v| {
            self.leaders.binary_search(&v).is_ok()
                || self.assignment[v].is_some_and(|l| g.are_adjacent(v, l))
        })
    }
}

/// Runs only the clustering stage: stops as soon as every node is a
/// leader or has joined one (entered state `R` or beyond), instead of
/// waiting for full color decisions.
///
/// # Panics
///
/// Panics if the parameters fail validation.
pub fn run_clustering<M: InterferenceModel>(
    graph: &UnitDiskGraph,
    model: M,
    config: &MwConfig,
    schedule: WakeupSchedule,
) -> ClusteringOutcome {
    config.params.validate().expect("invalid MW parameters");
    let params = config.params;
    let mut sim = Simulator::new(graph.clone(), model, schedule, config.seed, |id| {
        MwNode::new(id, params)
    });

    let clustered = |node: &MwNode| -> bool {
        // A node is "clustered" once it leads or knows its leader: state
        // R, a granted A_i (i > 0), or any colored state.
        matches!(node.phase(), MwPhase::Leader | MwPhase::Colored { .. }) || node.leader().is_some()
    };

    let cap = config.slot_cap();
    let mut slots = 0;
    while slots < cap && !sim.nodes().iter().all(clustered) {
        let _ = sim.step();
        slots += 1;
    }

    let leaders: Vec<NodeId> = (0..graph.len())
        .filter(|&v| matches!(sim.node(v).phase(), MwPhase::Leader))
        .collect();
    let assignment = (0..graph.len()).map(|v| sim.node(v).leader()).collect();
    ClusteringOutcome {
        all_clustered: sim.nodes().iter().all(clustered),
        slots,
        leaders,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MwParams;
    use sinr_geometry::{placement, Point};
    use sinr_model::{SinrConfig, SinrModel};

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    fn cluster(points: Vec<Point>, seed: u64) -> (UnitDiskGraph, ClusteringOutcome) {
        let c = cfg();
        let graph = UnitDiskGraph::new(points, c.r_t());
        let params = MwParams::practical(&c, graph.len().max(2), graph.max_degree());
        let out = run_clustering(
            &graph,
            SinrModel::new(c),
            &MwConfig::new(params).with_seed(seed),
            WakeupSchedule::Synchronous,
        );
        (graph, out)
    }

    #[test]
    fn produces_a_maximal_independent_set() {
        for seed in 0..4 {
            let (g, out) = cluster(placement::uniform(50, 4.0, 4.0, 20 + seed), seed);
            assert!(out.all_clustered, "seed {seed}");
            assert!(out.is_maximal_independent(&g), "seed {seed}");
            assert!(!out.leaders.is_empty());
        }
    }

    #[test]
    fn clustering_is_faster_than_full_coloring() {
        let c = cfg();
        let graph = UnitDiskGraph::new(placement::uniform(50, 4.0, 4.0, 31), c.r_t());
        let params = MwParams::practical(&c, graph.len(), graph.max_degree());
        let config = MwConfig::new(params).with_seed(7);
        let mis = run_clustering(
            &graph,
            SinrModel::new(c),
            &config,
            WakeupSchedule::Synchronous,
        );
        let full = crate::mw::run_mw(
            &graph,
            SinrModel::new(c),
            &config,
            WakeupSchedule::Synchronous,
        );
        assert!(mis.all_clustered && full.all_done);
        assert!(
            mis.slots < full.slots,
            "clustering ({}) should finish before coloring ({})",
            mis.slots,
            full.slots
        );
    }

    #[test]
    fn isolated_nodes_lead_themselves() {
        let (_, out) = cluster(vec![Point::new(0.0, 0.0), Point::new(9.0, 0.0)], 1);
        assert!(out.all_clustered);
        assert_eq!(out.leaders, vec![0, 1]);
        assert_eq!(out.assignment, vec![None, None]);
    }

    #[test]
    fn leaders_and_assignments_are_consistent() {
        let (g, out) = cluster(placement::uniform(40, 3.5, 3.5, 5), 3);
        for v in 0..g.len() {
            match out.assignment[v] {
                Some(l) => {
                    assert!(out.leaders.binary_search(&l).is_ok(), "L({v}) must lead");
                    assert!(g.are_adjacent(v, l));
                }
                None => assert!(
                    out.leaders.binary_search(&v).is_ok(),
                    "unassigned node {v} must be a leader"
                ),
            }
        }
    }
}
