//! Distance-`d` colorings via the §V power-scaling transformation.
//!
//! The paper (§V, after Theorem 3): "a distance-1 coloring of
//! `G^d = (V, E', d·R_T)` is also a `(d, O(Δ_{G^d}))`-coloring of `G` …
//! A simple idea to compute a coloring of `G^d` is to set the transmission
//! power of every node to `O(d^α·P)` before switching again to `P` once the
//! network is initialized. … all the parameters used by the algorithm have
//! to be tuned for `R_T' = d·R_T` and `Δ' = Δ_{G^d}`."

use crate::mw::{run_mw, MwConfig, MwOutcome};
use crate::params::MwParams;
use sinr_geometry::cast;
use sinr_geometry::{Point, UnitDiskGraph};
use sinr_model::{SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

/// The result of a distance-`d` coloring run.
#[derive(Debug, Clone)]
pub struct DistanceDColoring {
    /// The distance factor `d` (colors differ within `d·R_T`).
    pub d: f64,
    /// The power-scaled physical configuration used for the run
    /// (`R_T' = d·R_T`).
    pub scaled_cfg: SinrConfig,
    /// The scaled communication graph `G^d` the algorithm actually ran on.
    pub graph_d: UnitDiskGraph,
    /// The raw MW outcome on `G^d`.
    pub outcome: MwOutcome,
}

impl DistanceDColoring {
    /// The color assignment, if the run completed.
    pub fn colors(&self) -> Option<&[usize]> {
        self.outcome.coloring.as_ref().map(|c| c.as_slice())
    }
}

/// Computes a `(d, O(d²Δ))`-coloring of the network at `positions` under
/// base configuration `cfg` by running the MW algorithm on `G^d` with
/// power scaled to `d^α·P` (which makes `R_T' = d·R_T`).
///
/// Uses the practical parameter profile tuned for `Δ' = Δ_{G^d}`, exactly
/// as §V prescribes.
///
/// # Panics
///
/// Panics if `d < 1` or the position set has fewer than 2 nodes.
///
/// # Example
///
/// ```
/// use sinr_coloring::distance_d::color_at_distance;
/// use sinr_coloring::verify::is_distance_coloring;
/// use sinr_geometry::placement;
/// use sinr_model::SinrConfig;
/// use sinr_radiosim::WakeupSchedule;
///
/// let cfg = SinrConfig::default_unit();
/// let pts = placement::uniform(25, 4.0, 4.0, 3);
/// let result = color_at_distance(&pts, &cfg, 2.0, 1, WakeupSchedule::Synchronous);
/// let colors = result.colors().expect("run completed");
/// assert!(is_distance_coloring(&pts, colors, 2.0 * cfg.r_t()));
/// ```
pub fn color_at_distance(
    positions: &[Point],
    cfg: &SinrConfig,
    d: f64,
    seed: u64,
    schedule: WakeupSchedule,
) -> DistanceDColoring {
    assert!(d >= 1.0, "distance factor must be at least 1");
    assert!(positions.len() >= 2, "need at least two nodes");
    // §V: power := d^α · P, so every derived radius scales by d.
    let scaled_cfg = cfg.scaled_range(d);
    let graph_d = UnitDiskGraph::new(positions.to_vec(), scaled_cfg.r_t());
    let params = MwParams::practical(&scaled_cfg, graph_d.len(), graph_d.max_degree());
    let outcome = run_mw(
        &graph_d,
        SinrModel::new(scaled_cfg),
        &MwConfig::new(params).with_seed(seed),
        schedule,
    );
    DistanceDColoring {
        d,
        scaled_cfg,
        graph_d,
        outcome,
    }
}

/// The §V bound `Δ_{G^d} ≤ (2d+1)²·Δ` on the maximum degree of the scaled
/// graph (via `φ(d·R_T) ≤ (2d+1)²`).
pub fn scaled_degree_bound(delta: usize, d: f64) -> usize {
    let f = 2.0 * d + 1.0;
    cast::floor_usize((f * f) * delta as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_distance_coloring;
    use sinr_geometry::placement;

    fn cfg() -> SinrConfig {
        SinrConfig::default_unit()
    }

    #[test]
    fn produces_valid_distance_d_coloring() {
        let pts = placement::uniform(30, 4.0, 4.0, 9);
        for &d in &[1.0, 2.0] {
            let result = color_at_distance(&pts, &cfg(), d, 4, WakeupSchedule::Synchronous);
            assert!(result.outcome.all_done, "d = {d}");
            let colors = result.colors().unwrap();
            assert!(
                is_distance_coloring(&pts, colors, d * cfg().r_t()),
                "violations at d = {d}"
            );
        }
    }

    #[test]
    fn scaled_graph_has_scaled_radius() {
        let pts = placement::uniform(10, 3.0, 3.0, 1);
        let result = color_at_distance(&pts, &cfg(), 3.0, 0, WakeupSchedule::Synchronous);
        assert!((result.graph_d.radius() - 3.0 * cfg().r_t()).abs() < 1e-9);
        assert!((result.scaled_cfg.r_t() - 3.0 * cfg().r_t()).abs() < 1e-9);
    }

    #[test]
    fn degree_bound_formula() {
        assert_eq!(scaled_degree_bound(10, 1.0), 90);
        assert_eq!(scaled_degree_bound(10, 2.0), 250);
    }

    #[test]
    fn degree_bound_holds_empirically() {
        let pts = placement::uniform(200, 5.0, 5.0, 21);
        let g1 = UnitDiskGraph::new(pts.clone(), 1.0);
        let d = 2.0;
        let gd = UnitDiskGraph::new(pts, d);
        assert!(gd.max_degree() <= scaled_degree_bound(g1.max_degree().max(1), d));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_d_below_one() {
        let pts = placement::uniform(5, 2.0, 2.0, 0);
        let _ = color_at_distance(&pts, &cfg(), 0.5, 0, WakeupSchedule::Synchronous);
    }
}
