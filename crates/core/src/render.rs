//! SVG rendering of placements, graphs, and colorings.
//!
//! Produces self-contained SVG documents: edges as light segments, nodes
//! as circles filled by color class. Useful for eyeballing experiment
//! instances and for the `sinrcolor render` CLI subcommand.

use sinr_geometry::{Bbox, Point, UnitDiskGraph};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Node radius in pixels.
    pub node_radius_px: f64,
    /// Whether to draw communication edges.
    pub draw_edges: bool,
    /// Whether to label nodes with their ids.
    pub draw_labels: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 800.0,
            node_radius_px: 6.0,
            draw_edges: true,
            draw_labels: false,
        }
    }
}

/// A fixed 12-hue palette cycled by color index (distinct enough for
/// small palettes; classes `i` and `i+12` share a hue).
const PALETTE: [&str; 12] = [
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4", "#46f0f0", "#f032e6", "#bcf60c",
    "#fabebe", "#008080", "#9a6324", "#800000",
];

/// The fill color used for node color-class `c`.
pub fn class_fill(c: usize) -> &'static str {
    PALETTE[c % PALETTE.len()]
}

/// Renders the graph with an optional coloring (`colors[v]` = class of
/// node `v`) as a self-contained SVG document.
///
/// # Panics
///
/// Panics if `colors` is `Some` and does not cover every node.
pub fn render_svg(g: &UnitDiskGraph, colors: Option<&[usize]>, opts: &RenderOptions) -> String {
    if let Some(cs) = colors {
        assert_eq!(cs.len(), g.len(), "one color per node");
    }
    let bbox = Bbox::enclosing(g.positions())
        .unwrap_or_else(|| Bbox::square(1.0))
        .expanded(g.radius().max(0.5) / 2.0);
    let scale = opts.width_px / bbox.width().max(1e-9);
    let height_px = bbox.height().max(1e-9) * scale;
    let tx = |p: Point| -> (f64, f64) {
        (
            (p.x - bbox.min().x) * scale,
            // SVG y grows downward; flip so the plot is upright.
            height_px - (p.y - bbox.min().y) * scale,
        )
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opts.width_px, height_px, opts.width_px, height_px
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    if opts.draw_edges {
        let _ = writeln!(svg, r##"<g stroke="#cccccc" stroke-width="1">"##);
        for (u, v) in g.edges() {
            let (x1, y1) = tx(g.position(u));
            let (x2, y2) = tx(g.position(v));
            let _ = writeln!(
                svg,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}"/>"#
            );
        }
        let _ = writeln!(svg, "</g>");
    }

    let _ = writeln!(svg, r##"<g stroke="#333333" stroke-width="1">"##);
    for v in 0..g.len() {
        let (x, y) = tx(g.position(v));
        let fill = colors.map_or("#888888", |cs| class_fill(cs[v]));
        let _ = writeln!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{:.1}" fill="{fill}"/>"#,
            opts.node_radius_px
        );
        if opts.draw_labels {
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="{:.0}" fill="black">{v}</text>"#,
                x + opts.node_radius_px,
                y - opts.node_radius_px,
                opts.node_radius_px * 2.0
            );
        }
    }
    let _ = writeln!(svg, "</g>");
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::placement;

    fn graph() -> UnitDiskGraph {
        UnitDiskGraph::new(placement::uniform(20, 3.0, 3.0, 1), 1.0)
    }

    #[test]
    fn svg_has_document_structure() {
        let g = graph();
        let svg = render_svg(&g, None, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), g.len());
    }

    #[test]
    fn edges_render_when_enabled() {
        let g = graph();
        let with = render_svg(&g, None, &RenderOptions::default());
        assert_eq!(with.matches("<line").count(), g.edge_count());
        let without = render_svg(
            &g,
            None,
            &RenderOptions {
                draw_edges: false,
                ..RenderOptions::default()
            },
        );
        assert_eq!(without.matches("<line").count(), 0);
    }

    #[test]
    fn colors_map_to_palette_fills() {
        let g = graph();
        let colors: Vec<usize> = (0..g.len()).map(|v| v % 3).collect();
        let svg = render_svg(&g, Some(&colors), &RenderOptions::default());
        for c in 0..3 {
            assert!(svg.contains(class_fill(c)), "palette color {c} missing");
        }
    }

    #[test]
    fn labels_render_when_enabled() {
        let g = graph();
        let svg = render_svg(
            &g,
            None,
            &RenderOptions {
                draw_labels: true,
                ..RenderOptions::default()
            },
        );
        assert_eq!(svg.matches("<text").count(), g.len());
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(class_fill(0), class_fill(12));
        assert_ne!(class_fill(0), class_fill(1));
    }

    #[test]
    #[should_panic(expected = "one color per node")]
    fn mismatched_colors_panic() {
        let g = graph();
        let _ = render_svg(&g, Some(&[0, 1]), &RenderOptions::default());
    }
}
