//! The counter-reset function `χ(P_v)` of Fig. 1 line 6.
//!
//! `χ(P_v)` is "the maximum value such that
//! `χ(P_v) ∉ {d_v(w) − ⌈γζ_i ln n⌉, …, d_v(w) + ⌈γζ_i ln n⌉}` for each
//! `w ∈ P_v`, and `χ(P_v) ≤ 0`" — i.e. the largest non-positive integer
//! outside every known competitor's forbidden window.

/// Computes `χ` for the forbidden windows `[d − window, d + window]`
/// centered at each estimate in `estimates`.
///
/// Returns the largest integer `x ≤ 0` such that `|x − d| > window` for
/// every `d` in `estimates`.
///
/// # Panics
///
/// Panics if `window` is negative.
///
/// # Example
///
/// ```
/// use sinr_coloring::chi::chi;
///
/// // No competitors: take 0.
/// assert_eq!(chi(&[], 5), 0);
/// // A competitor at 3 with window 5 forbids [-2, 8]: take -3.
/// assert_eq!(chi(&[3], 5), -3);
/// ```
pub fn chi(estimates: &[i64], window: i64) -> i64 {
    let mut intervals = Vec::with_capacity(estimates.len());
    chi_scratch(estimates.iter().copied(), window, &mut intervals)
}

/// [`chi`] with a caller-owned interval buffer: `intervals` is cleared,
/// filled, and sorted in place, so a caller that reuses one buffer
/// computes `χ` without allocating once the buffer has grown to its
/// working size (the MW automaton's reset path does this every
/// `counter_threshold` slots).
///
/// # Panics
///
/// Panics if `window` is negative.
pub fn chi_scratch(
    estimates: impl IntoIterator<Item = i64>,
    window: i64,
    intervals: &mut Vec<(i64, i64)>,
) -> i64 {
    assert!(window >= 0, "forbidden window must be non-negative");
    // Sort intervals by upper bound, descending; a single downward sweep
    // then finds the maximum admissible value. (Candidate only decreases;
    // an interval processed earlier can never re-contain it — its lower
    // bound would have pushed the candidate below already.)
    intervals.clear();
    intervals.extend(
        estimates
            .into_iter()
            .map(|d| (d.saturating_sub(window), d.saturating_add(window))),
    );
    intervals.sort_unstable_by_key(|&(_, hi)| std::cmp::Reverse(hi));
    let mut candidate: i64 = 0;
    for &(lo, hi) in intervals.iter() {
        if lo <= candidate && candidate <= hi {
            candidate = lo - 1;
        }
    }
    candidate
}

/// Whether `value` lies outside every forbidden window
/// `[d − window, d + window]` — the admissibility predicate `χ` maximizes
/// over.
pub fn is_admissible(value: i64, estimates: &[i64], window: i64) -> bool {
    value <= 0 && estimates.iter().all(|&d| (value - d).abs() > window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_give_zero() {
        assert_eq!(chi(&[], 0), 0);
        assert_eq!(chi(&[], 100), 0);
    }

    #[test]
    fn positive_estimates_far_away_do_not_matter() {
        assert_eq!(chi(&[100], 5), 0);
    }

    #[test]
    fn window_straddling_zero_pushes_down() {
        assert_eq!(chi(&[0], 2), -3);
        assert_eq!(chi(&[2], 2), -1);
        assert_eq!(chi(&[-1], 2), -4);
    }

    #[test]
    fn stacked_windows_cascade() {
        // Windows [-2,2] and [-7,-3] are contiguous: must go below both.
        assert_eq!(chi(&[0, -5], 2), -8);
        // A gap remains between [-2,2] and [-9,-5]: take -3.
        assert_eq!(chi(&[0, -7], 2), -3);
    }

    #[test]
    fn duplicates_are_harmless() {
        assert_eq!(chi(&[0, 0, 0], 2), -3);
    }

    #[test]
    fn zero_window_forbids_single_points() {
        assert_eq!(chi(&[0], 0), -1);
        assert_eq!(chi(&[0, -1, -2], 0), -3);
        assert_eq!(chi(&[-2], 0), 0);
    }

    #[test]
    fn result_is_admissible_and_maximal() {
        // Exhaustive check against a brute-force maximum on small cases.
        let cases: Vec<(Vec<i64>, i64)> = vec![
            (vec![], 3),
            (vec![0], 3),
            (vec![5, -5], 3),
            (vec![1, -2, -9], 2),
            (vec![-1, -1, -8, 4], 1),
            (vec![0, -4, -8, -12], 1),
            (vec![0, -4, -8, -12], 2),
            (vec![30, -30], 10),
        ];
        for (est, w) in cases {
            let x = chi(&est, w);
            assert!(
                is_admissible(x, &est, w),
                "chi {x} inadmissible for {est:?} w={w}"
            );
            // Maximality: brute force from 0 downward.
            let mut best = None;
            let mut v = 0i64;
            while v > -200 {
                if is_admissible(v, &est, w) {
                    best = Some(v);
                    break;
                }
                v -= 1;
            }
            assert_eq!(Some(x), best, "chi not maximal for {est:?} w={w}");
        }
    }

    #[test]
    fn admissibility_rejects_positive() {
        assert!(!is_admissible(1, &[], 0));
        assert!(is_admissible(0, &[], 0));
    }
}
