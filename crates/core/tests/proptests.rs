//! Property-based tests for the coloring crate's pure components.

use proptest::prelude::*;
use sinr_coloring::chi::{chi, is_admissible};
use sinr_coloring::palette::reduce_palette;
use sinr_coloring::params::MwParams;
use sinr_coloring::render::{render_svg, RenderOptions};
use sinr_coloring::verify::{distance_violations, is_distance_coloring};
use sinr_geometry::greedy::greedy_coloring;
use sinr_geometry::{Point, UnitDiskGraph};
use sinr_model::SinrConfig;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..4.0f64, 0.0..4.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..max_n,
    )
}

proptest! {
    #[test]
    fn chi_is_admissible_and_maximal(
        estimates in prop::collection::vec(-50i64..50, 0..8),
        window in 0i64..10,
    ) {
        let x = chi(&estimates, window);
        prop_assert!(is_admissible(x, &estimates, window));
        // Maximality: nothing admissible strictly above x (down from 0).
        let mut v = 0i64;
        while v > x {
            prop_assert!(!is_admissible(v, &estimates, window), "{v} admissible above {x}");
            v -= 1;
        }
    }

    #[test]
    fn chi_never_falls_too_far(
        estimates in prop::collection::vec(-50i64..50, 0..8),
        window in 0i64..10,
    ) {
        // Each estimate forbids an interval of 2w+1 integers; stacking all
        // of them bounds χ below by -(k(2w+1)).
        let x = chi(&estimates, window);
        let k = estimates.len() as i64;
        prop_assert!(x >= -(k * (2 * window + 1)));
    }

    #[test]
    fn practical_params_always_validate(
        n in 2usize..100_000,
        delta in 1usize..500,
    ) {
        let p = MwParams::practical(&SinrConfig::default_unit(), n, delta);
        prop_assert!(p.validate().is_ok());
        prop_assert!(p.listen_slots() > 0);
        prop_assert!(p.counter_threshold() > 2 * p.reset_window(1));
        prop_assert!(p.reset_window(0) <= p.reset_window(1));
        prop_assert!(p.palette_bound() >= (delta + 1) * 2);
    }

    #[test]
    fn window_monotonicity_in_n_and_delta(
        n1 in 16usize..10_000,
        n2 in 16usize..10_000,
        d1 in 1usize..100,
        d2 in 1usize..100,
    ) {
        let cfg = SinrConfig::default_unit();
        let (nlo, nhi) = (n1.min(n2), n1.max(n2));
        let (dlo, dhi) = (d1.min(d2), d1.max(d2));
        let a = MwParams::practical(&cfg, nlo, dlo);
        let b = MwParams::practical(&cfg, nhi, dhi);
        prop_assert!(a.listen_slots() <= b.listen_slots());
        prop_assert!(a.counter_threshold() <= b.counter_threshold());
        prop_assert!(a.response_slots() <= b.response_slots());
        // q_s shrinks with Δ.
        prop_assert!(a.q_small >= b.q_small);
    }

    #[test]
    fn verifier_matches_brute_force(
        pts in arb_points(30),
        colors_seed in 0usize..7,
        dist in 0.2..3.0f64,
    ) {
        let colors: Vec<usize> = (0..pts.len()).map(|i| (i * 7 + colors_seed) % 4).collect();
        let fast = distance_violations(&pts, &colors, dist);
        let mut brute = Vec::new();
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                if colors[u] == colors[v] && pts[u].distance(pts[v]) <= dist {
                    brute.push((u, v));
                }
            }
        }
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn verifier_soundness_mutation(pts in arb_points(20)) {
        // Take a proper greedy coloring; copying any node's color onto a
        // neighbor must produce a detectable violation.
        let g = UnitDiskGraph::new(pts, 1.0);
        let coloring = greedy_coloring(&g);
        prop_assert!(is_distance_coloring(
            g.positions(),
            coloring.as_slice(),
            g.radius()
        ));
        for v in 0..g.len() {
            if let Some(&u) = g.neighbors(v).first() {
                let mut broken = coloring.as_slice().to_vec();
                broken[v] = broken[u];
                prop_assert!(!is_distance_coloring(g.positions(), &broken, g.radius()));
            }
        }
    }

    #[test]
    fn palette_reduction_idempotent_on_small_palettes(pts in arb_points(25)) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let first = reduce_palette(&g, &greedy_coloring(&g));
        let second = reduce_palette(&g, &first);
        prop_assert!(second.is_proper(&g));
        prop_assert!(second.palette_size() <= first.palette_size());
    }

    #[test]
    fn svg_renders_any_instance(pts in arb_points(25), with_colors in any::<bool>()) {
        let g = UnitDiskGraph::new(pts, 1.0);
        let colors: Vec<usize> = (0..g.len()).map(|v| v % 5).collect();
        let svg = render_svg(
            &g,
            if with_colors { Some(&colors) } else { None },
            &RenderOptions::default(),
        );
        prop_assert!(svg.starts_with("<svg"));
        prop_assert_eq!(svg.matches("<circle").count(), g.len());
        prop_assert_eq!(svg.matches("<line").count(), g.edge_count());
    }
}
