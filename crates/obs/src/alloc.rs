//! Heap-allocation accounting: [`CountingAlloc`], [`AllocSnapshot`],
//! [`AllocStats`] and the [`AllocScope`] guard.
//!
//! The deterministic artifacts measure *time* and *events*; this module
//! measures *bytes*. [`CountingAlloc`] is a transparent wrapper over
//! [`std::alloc::System`] that counts every allocation, deallocation and
//! reallocation. It is installed as the `#[global_allocator]` **only in
//! binary, test and bench crates** (enforced by lint L10) — library
//! crates stay allocator-agnostic, and a build without the wrapper simply
//! reads zeros from every counter.
//!
//! Counting is thread-aware: allocation/free counts and byte totals are
//! kept in thread-local cells, so a [`snapshot`] taken on the driver
//! thread measures exactly that thread's traffic (the fused sequential
//! engine runs entirely on it). The heap high-water mark is global — a
//! pair of process-wide atomics — because liveness is a whole-process
//! property. Reading a counter never allocates and never touches any
//! RNG, ordering, or control flow, so profiling cannot perturb a
//! deterministic run; `tests/thread_determinism.rs` pins this.
//!
//! This module and the `#[global_allocator]` installation sites are the
//! single sanctioned home of `std::alloc` in the workspace (lint L10),
//! and the counter cells are the sanctioned `std::sync::atomic` use
//! outside `crates/pool` (allowlisted for L6). The `unsafe` impl below is
//! the only unsafe code in the workspace: it forwards verbatim to
//! `System` and touches nothing but `Cell`s and atomics, which cannot
//! recurse into the allocator (the thread-locals are const-initialized).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder::Recorder;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static FREES: Cell<u64> = const { Cell::new(0) };
    static BYTES_ALLOCATED: Cell<u64> = const { Cell::new(0) };
    static BYTES_FREED: Cell<u64> = const { Cell::new(0) };
}

/// Live heap bytes across the whole process (allocated − freed).
static HEAP_CURRENT: AtomicU64 = AtomicU64::new(0);
/// Largest value `HEAP_CURRENT` ever reached.
static HEAP_PEAK: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper over the system allocator.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sinr_obs::alloc::CountingAlloc = sinr_obs::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        let size = size as u64;
        ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
        BYTES_ALLOCATED.with(|c| c.set(c.get().wrapping_add(size)));
        let live = HEAP_CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        HEAP_PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_free(size: usize) {
        let size = size as u64;
        FREES.with(|c| c.set(c.get().wrapping_add(1)));
        BYTES_FREED.with(|c| c.set(c.get().wrapping_add(size)));
        HEAP_CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the added bookkeeping touches only const-init
// thread-local `Cell`s and relaxed atomics, neither of which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A grow/shrink is one free of the old block plus one
            // allocation of the new one: realloc'd bytes are real memory
            // traffic even when the block is resized in place.
            Self::on_free(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the calling thread's allocation counters.
///
/// Snapshots are meaningful as *differences*: subtract two to get the
/// traffic between them (see [`AllocStats::add_span`]). All zeros when
/// [`CountingAlloc`] is not installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events observed on this thread so far.
    pub allocs: u64,
    /// Deallocation events observed on this thread so far.
    pub frees: u64,
    /// Bytes allocated on this thread so far.
    pub bytes_allocated: u64,
    /// Bytes freed on this thread so far.
    pub bytes_freed: u64,
}

/// Reads the calling thread's allocation counters. Never allocates.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.with(Cell::get),
        frees: FREES.with(Cell::get),
        bytes_allocated: BYTES_ALLOCATED.with(Cell::get),
        bytes_freed: BYTES_FREED.with(Cell::get),
    }
}

/// Live heap bytes across the whole process (0 without [`CountingAlloc`]).
pub fn heap_current() -> u64 {
    HEAP_CURRENT.load(Ordering::Relaxed)
}

/// Heap high-water mark in bytes across the whole process.
pub fn heap_peak() -> u64 {
    HEAP_PEAK.load(Ordering::Relaxed)
}

/// Whether [`CountingAlloc`] is actually installed as the process's
/// global allocator, detected by performing a probe allocation and
/// checking the counters moved. Profile emitters use this to mark
/// all-zero reports as *uninstrumented* rather than allocation-free.
pub fn is_counting() -> bool {
    let before = snapshot();
    std::hint::black_box(Vec::<u8>::with_capacity(16));
    snapshot().allocs != before.allocs
}

/// Accumulated allocation traffic attributed to one scope (an engine
/// phase, the MW setup, a user-chosen region). Deltas are added with
/// [`AllocStats::add_span`] or via the [`AllocScope`] guard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation events attributed to this scope.
    pub allocs: u64,
    /// Deallocation events attributed to this scope.
    pub frees: u64,
    /// Bytes allocated in this scope.
    pub bytes_allocated: u64,
    /// Bytes freed in this scope.
    pub bytes_freed: u64,
}

impl AllocStats {
    /// An empty accumulator.
    pub const fn new() -> Self {
        AllocStats {
            allocs: 0,
            frees: 0,
            bytes_allocated: 0,
            bytes_freed: 0,
        }
    }

    /// Adds the traffic between two snapshots of the same thread.
    pub fn add_span(&mut self, start: AllocSnapshot, end: AllocSnapshot) {
        self.allocs += end.allocs.wrapping_sub(start.allocs);
        self.frees += end.frees.wrapping_sub(start.frees);
        self.bytes_allocated += end.bytes_allocated.wrapping_sub(start.bytes_allocated);
        self.bytes_freed += end.bytes_freed.wrapping_sub(start.bytes_freed);
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &AllocStats) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.bytes_allocated += other.bytes_allocated;
        self.bytes_freed += other.bytes_freed;
    }

    /// Exports the four counters into a recorder under the given key set
    /// (the `prof.alloc.*` constants in [`crate::keys`]). Feed this only
    /// to profile sinks — never to the recorder of a deterministic run,
    /// whose artifacts must not depend on allocator behavior.
    pub fn export_into(&self, rec: &mut dyn Recorder, keys: &AllocKeySet) {
        rec.counter_add(keys.allocs, self.allocs);
        rec.counter_add(keys.frees, self.frees);
        rec.counter_add(keys.bytes_allocated, self.bytes_allocated);
        rec.counter_add(keys.bytes_freed, self.bytes_freed);
    }
}

/// The four `prof.alloc.<scope>.*` key names one [`AllocStats`] exports
/// under; predefined sets live in [`crate::keys`].
#[derive(Debug, Clone, Copy)]
pub struct AllocKeySet {
    /// Key for the allocation-event count.
    pub allocs: &'static str,
    /// Key for the deallocation-event count.
    pub frees: &'static str,
    /// Key for bytes allocated.
    pub bytes_allocated: &'static str,
    /// Key for bytes freed.
    pub bytes_freed: &'static str,
}

/// RAII guard attributing all allocation traffic on the current thread
/// between construction and drop to one [`AllocStats`] accumulator.
///
/// ```ignore
/// let mut setup = AllocStats::new();
/// {
///     let _scope = AllocScope::new(&mut setup);
///     let nodes: Vec<MwNode> = build_nodes();
/// }
/// // `setup` now holds the construction traffic.
/// ```
pub struct AllocScope<'a> {
    stats: &'a mut AllocStats,
    start: AllocSnapshot,
}

impl<'a> AllocScope<'a> {
    /// Starts attributing this thread's traffic to `stats`.
    pub fn new(stats: &'a mut AllocStats) -> Self {
        AllocScope {
            stats,
            start: snapshot(),
        }
    }
}

impl Drop for AllocScope<'_> {
    fn drop(&mut self) {
        self.stats.add_span(self.start, snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NB: these tests do not install `CountingAlloc` (the obs lib stays
    // allocator-agnostic), so raw counters read zero; the arithmetic
    // around snapshots and accumulators is what is under test here. The
    // end-to-end counting behavior is pinned by `tests/alloc_profile.rs`
    // at workspace level, which does install the wrapper.

    #[test]
    fn snapshot_deltas_accumulate() {
        let mut stats = AllocStats::new();
        let a = AllocSnapshot {
            allocs: 10,
            frees: 4,
            bytes_allocated: 1000,
            bytes_freed: 300,
        };
        let b = AllocSnapshot {
            allocs: 13,
            frees: 9,
            bytes_allocated: 1500,
            bytes_freed: 900,
        };
        stats.add_span(a, b);
        stats.add_span(a, b);
        assert_eq!(
            stats,
            AllocStats {
                allocs: 6,
                frees: 10,
                bytes_allocated: 1000,
                bytes_freed: 1200,
            }
        );
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = AllocStats {
            allocs: 1,
            frees: 2,
            bytes_allocated: 3,
            bytes_freed: 4,
        };
        let b = AllocStats {
            allocs: 10,
            frees: 20,
            bytes_allocated: 30,
            bytes_freed: 40,
        };
        a.merge(&b);
        assert_eq!(a.allocs, 11);
        assert_eq!(a.bytes_freed, 44);
    }

    #[test]
    fn scope_guard_attributes_on_drop() {
        let mut stats = AllocStats::new();
        {
            let _scope = AllocScope::new(&mut stats);
            // Without the wrapper installed the thread counters are
            // frozen, so the attributed delta is exactly zero.
        }
        assert_eq!(stats, AllocStats::new());
    }

    #[test]
    fn export_feeds_the_key_set() {
        let mut rec = crate::recorder::FullRecorder::new();
        let stats = AllocStats {
            allocs: 5,
            frees: 3,
            bytes_allocated: 640,
            bytes_freed: 128,
        };
        stats.export_into(&mut rec, &crate::keys::PROF_ALLOC_MW_SETUP);
        let reg = rec.registry();
        assert_eq!(
            reg.counter(crate::keys::PROF_ALLOC_MW_SETUP.allocs),
            Some(5)
        );
        assert_eq!(
            reg.counter(crate::keys::PROF_ALLOC_MW_SETUP.bytes_allocated),
            Some(640)
        );
    }
}
