//! Wall-clock profiling for bench binaries.
//!
//! This is the single sanctioned use of `std::time` in the observability
//! layer. It exists for *measurement harnesses only* (the resolver bench's
//! recorder-overhead section): nothing in the deterministic simulation path
//! may read it, because run artifacts must be pure functions of the seed.

use crate::recorder::Recorder;
use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed time as the gauge `key` (in seconds) and
    /// returns the reading. Only bench binaries should feed wall-clock
    /// gauges into a recorder; keep such keys out of deterministic dumps.
    pub fn gauge_into(&self, rec: &mut dyn Recorder, key: &'static str) -> f64 {
        let secs = self.elapsed_secs();
        rec.gauge_set(key, secs);
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FullRecorder;

    #[test]
    fn stopwatch_is_monotone_and_gauges() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        let mut rec = FullRecorder::new();
        let secs = sw.gauge_into(&mut rec, "bench.wall_secs");
        assert!(secs >= 0.0);
        assert!(rec.registry().gauge("bench.wall_secs").is_some());
    }
}
