//! Typed spans over engine/resolver/MW phases, exported as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`).
//!
//! Spans live in **slot-time**, like every other deterministic artifact in
//! this crate: positions and durations are quarter-slot ticks
//! ([`QUARTERS_PER_SLOT`] per slot), so one slot maps to one microsecond on
//! the trace timeline and the engine's three phases (`actions`, `resolve`,
//! `delivery`) render as adjacent sub-slot blocks. A slot-time trace is a
//! pure function of (graph, model, schedule, seed) — byte-identical across
//! thread counts (`tests/thread_determinism.rs` pins this).
//!
//! Wall-clock timing must never enter the deterministic path; bench
//! binaries may attach a [`WallSpan`] overlay, which renders as a separate
//! trace process (`pid` 1) so slot-time and wall-time never mix on one
//! timeline.

use crate::json::{push_f64, push_str_escaped};
use std::fmt::Write as _;

/// Quarter-slot ticks per slot: the span timebase subdivides each slot so
/// the engine's phases occupy disjoint intervals within it.
pub const QUARTERS_PER_SLOT: u64 = 4;

/// Well-known span names. Like metric keys these are part of the schema —
/// emitters use the constants, never string literals.
pub mod names {
    /// Engine phase: wake-up + protocol actions (first quarter of a slot).
    pub const ENGINE_ACTIONS: &str = "actions";
    /// Engine phase: SINR resolution (middle half of a slot).
    pub const ENGINE_RESOLVE: &str = "resolve";
    /// Engine phase: message delivery + done detection (last quarter).
    pub const ENGINE_DELIVERY: &str = "delivery";
    /// Resolver internals: incremental delta applied to the persistent grid.
    pub const RESOLVER_DELTA_APPLY: &str = "delta_apply";
    /// Resolver internals: scheduled epoch rebuild of the grid.
    pub const RESOLVER_EPOCH_REBUILD: &str = "epoch_rebuild";
    /// Resolver internals: certified full rebuild after a failed delta.
    pub const RESOLVER_FULL_REBUILD: &str = "full_rebuild";
    /// Resolver internals: certification failed, exact O(k²) fallback ran.
    pub const RESOLVER_EXACT_FALLBACK: &str = "exact_fallback";
}

/// Which trace track (Chrome `tid`) a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanTrack {
    /// The slot engine's phase track.
    Engine,
    /// The SINR resolver's internal track.
    Resolver,
    /// One MW node's phase-residency track.
    Node(u32),
}

impl SpanTrack {
    /// The Chrome trace `tid` for this track (engine 0, resolver 1,
    /// node *i* at `2 + i`).
    pub fn tid(self) -> u64 {
        match self {
            SpanTrack::Engine => 0,
            SpanTrack::Resolver => 1,
            SpanTrack::Node(i) => 2 + u64::from(i),
        }
    }

    /// The Chrome trace category for this track.
    pub fn cat(self) -> &'static str {
        match self {
            SpanTrack::Engine => "engine",
            SpanTrack::Resolver => "resolver",
            SpanTrack::Node(_) => "node",
        }
    }

    fn thread_name_into(self, out: &mut String) {
        match self {
            SpanTrack::Engine => out.push_str("engine"),
            SpanTrack::Resolver => out.push_str("resolver"),
            SpanTrack::Node(i) => {
                let _ = write!(out, "node {i}");
            }
        }
    }
}

/// One recorded span: a named interval (or instant, when `dur_q == 0`) on a
/// track, in quarter-slot ticks, with up to two integer arguments.
///
/// `Copy + Eq` like [`ObsEvent`](crate::ObsEvent), so spans sit in a
/// bounded [`Ring`](crate::Ring) allocation-free and compare exactly in
/// determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The track the span renders on.
    pub track: SpanTrack,
    /// Span name (one of [`names`], or an MW phase name for node tracks).
    pub name: &'static str,
    /// Start position in quarter-slot ticks (`slot * QUARTERS_PER_SLOT + offset`).
    pub start_q: u64,
    /// Duration in quarter-slot ticks; 0 renders as an instant event.
    pub dur_q: u64,
    /// Up to two named integer arguments carried into the trace.
    pub args: [Option<(&'static str, i64)>; 2],
}

impl SpanRecord {
    /// A complete span covering `[start_q, start_q + dur_q)`.
    pub fn complete(track: SpanTrack, name: &'static str, start_q: u64, dur_q: u64) -> Self {
        SpanRecord {
            track,
            name,
            start_q,
            dur_q,
            args: [None, None],
        }
    }

    /// An instant event at `at_q`.
    pub fn instant(track: SpanTrack, name: &'static str, at_q: u64) -> Self {
        Self::complete(track, name, at_q, 0)
    }

    /// Returns the span with one more named argument attached (at most two
    /// are kept; extras are ignored).
    pub fn with_arg(mut self, key: &'static str, value: i64) -> Self {
        for slot in &mut self.args {
            if slot.is_none() {
                *slot = Some((key, value));
                break;
            }
        }
        self
    }

    /// The slot this span starts in.
    pub fn slot(&self) -> u64 {
        self.start_q / QUARTERS_PER_SLOT
    }

    fn event_into(&self, out: &mut String) {
        out.push_str("{\"name\":");
        push_str_escaped(out, self.name);
        let _ = write!(out, ",\"cat\":\"{}\",", self.track.cat());
        if self.dur_q == 0 {
            out.push_str("\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            push_f64(out, ticks_to_us(self.start_q));
        } else {
            out.push_str("\"ph\":\"X\",\"ts\":");
            push_f64(out, ticks_to_us(self.start_q));
            out.push_str(",\"dur\":");
            push_f64(out, ticks_to_us(self.dur_q));
        }
        let _ = write!(
            out,
            ",\"pid\":0,\"tid\":{},\"args\":{{\"slot\":{}",
            self.track.tid(),
            self.slot()
        );
        for arg in self.args.iter().flatten() {
            out.push(',');
            push_str_escaped(out, arg.0);
            let _ = write!(out, ":{}", arg.1);
        }
        out.push_str("}}");
    }
}

/// A wall-clock span for the optional bench overlay (trace process 1).
/// Never recorded in the deterministic path — bench binaries construct
/// these from [`Stopwatch`](crate::Stopwatch) readings.
#[derive(Debug, Clone, PartialEq)]
pub struct WallSpan {
    /// Span label.
    pub name: String,
    /// Start offset in microseconds from the overlay's origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

fn ticks_to_us(q: u64) -> f64 {
    q as f64 / QUARTERS_PER_SLOT as f64
}

/// Renders spans as one Chrome trace-event JSON document (schema kind
/// `trace_events`, see `docs/OBS_SCHEMA.md`).
///
/// The document carries the standard `traceEvents` array (metadata rows
/// naming each process/track, then the span events in recording order)
/// plus a `spans` accounting object mirroring the ring bookkeeping —
/// `recorded` vs `dropped` makes truncation visible in the artifact
/// itself. Perfetto ignores the extra top-level keys.
pub fn chrome_trace_json(
    spans: &[SpanRecord],
    recorded: u64,
    dropped: u64,
    wall: &[WallSpan],
) -> String {
    let mut out = String::from("{\"schema_version\":");
    let _ = write!(out, "{}", crate::OBS_SCHEMA_VERSION);
    let _ = write!(
        out,
        ",\"kind\":\"trace_events\",\"displayTimeUnit\":\"ns\",\
         \"spans\":{{\"recorded\":{recorded},\"dropped\":{dropped}}},\
         \"traceEvents\":["
    );

    let mut first = true;
    let mut meta = |out: &mut String, pid: u64, tid: Option<u64>, what: &str, name: &str| {
        if !core::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid}");
        if let Some(tid) = tid {
            let _ = write!(out, ",\"tid\":{tid}");
        }
        out.push_str(",\"args\":{\"name\":");
        push_str_escaped(out, name);
        out.push_str("}}");
    };

    meta(&mut out, 0, None, "process_name", "slot-time");
    let mut tracks: Vec<SpanTrack> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut name_buf = String::new();
    for track in &tracks {
        name_buf.clear();
        track.thread_name_into(&mut name_buf);
        meta(&mut out, 0, Some(track.tid()), "thread_name", &name_buf);
    }
    if !wall.is_empty() {
        meta(&mut out, 1, None, "process_name", "wall-clock");
        meta(&mut out, 1, Some(0), "thread_name", "bench");
    }

    for span in spans {
        if !core::mem::take(&mut first) {
            out.push(',');
        }
        span.event_into(&mut out);
    }
    for w in wall {
        if !core::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_str_escaped(&mut out, &w.name);
        out.push_str(",\"cat\":\"wall\",\"ph\":\"X\",\"ts\":");
        push_f64(&mut out, w.start_us);
        out.push_str(",\"dur\":");
        push_f64(&mut out, w.dur_us);
        out.push_str(",\"pid\":1,\"tid\":0,\"args\":{}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_value, Json};

    #[test]
    fn track_tids_are_disjoint_and_stable() {
        assert_eq!(SpanTrack::Engine.tid(), 0);
        assert_eq!(SpanTrack::Resolver.tid(), 1);
        assert_eq!(SpanTrack::Node(0).tid(), 2);
        assert_eq!(SpanTrack::Node(7).tid(), 9);
    }

    #[test]
    fn with_arg_keeps_at_most_two() {
        let s = SpanRecord::complete(SpanTrack::Engine, names::ENGINE_ACTIONS, 0, 1)
            .with_arg("a", 1)
            .with_arg("b", 2)
            .with_arg("c", 3);
        assert_eq!(s.args, [Some(("a", 1)), Some(("b", 2))]);
    }

    #[test]
    fn trace_document_is_valid_nested_json_with_metadata_rows() {
        let spans = [
            SpanRecord::complete(SpanTrack::Engine, names::ENGINE_ACTIONS, 0, 1).with_arg("tx", 3),
            SpanRecord::complete(SpanTrack::Engine, names::ENGINE_RESOLVE, 1, 2),
            SpanRecord::instant(SpanTrack::Resolver, names::RESOLVER_EPOCH_REBUILD, 1),
            SpanRecord::complete(SpanTrack::Node(4), "listen", 0, 8),
        ];
        let doc = chrome_trace_json(&spans, 4, 0, &[]);
        let v = parse_value(&doc).expect("trace document parses as JSON");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("trace_events"));
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 1 process_name + 3 distinct tracks + 4 spans.
        assert_eq!(events.len(), 8);
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 4);
        let complete = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("actions"))
            .expect("actions span present");
        assert_eq!(complete.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            complete
                .get("args")
                .and_then(|a| a.get("tx"))
                .and_then(Json::as_i64),
            Some(3)
        );
        let instant = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("epoch_rebuild"))
            .expect("instant span present");
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert!(instant.get("dur").is_none());
    }

    #[test]
    fn quarter_slot_timestamps_render_deterministically() {
        let spans = [SpanRecord::complete(
            SpanTrack::Engine,
            names::ENGINE_RESOLVE,
            5,
            2,
        )];
        let doc = chrome_trace_json(&spans, 1, 0, &[]);
        assert!(doc.contains("\"ts\":1.25,\"dur\":0.5"), "doc: {doc}");
    }

    #[test]
    fn wall_overlay_renders_as_second_process() {
        let wall = [WallSpan {
            name: "run".into(),
            start_us: 0.0,
            dur_us: 1234.5,
        }];
        let doc = chrome_trace_json(&[], 0, 0, &wall);
        assert!(doc.contains("\"name\":\"wall-clock\""));
        assert!(doc.contains("\"pid\":1,\"tid\":0"));
        let v = parse_value(&doc).expect("parses");
        // slot-time process_name + wall process_name + wall thread_name + span.
        assert_eq!(
            v.get("traceEvents")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(4)
        );
    }

    #[test]
    fn truncation_accounting_is_in_the_document() {
        let doc = chrome_trace_json(&[], 100, 37, &[]);
        assert!(doc.contains("\"spans\":{\"recorded\":100,\"dropped\":37}"));
    }
}
