//! Minimal hand-rolled JSON helpers.
//!
//! The workspace has no serde; every machine-readable artifact is emitted
//! through these few functions so escaping and number formatting stay
//! consistent (and deterministic) across the metrics dump, the JSONL event
//! stream, and the run report. Two parsers are included so tests (and
//! downstream tooling) can round-trip artifacts without a JSON dependency:
//! [`parse_flat_object`] for single JSONL lines (scalar fields only), and
//! [`parse_value`] for arbitrarily nested documents (the lint report
//! schema v2 and SARIF logs consumed by `crates/xtask`'s e2e tests).

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats `x` as a JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity). Integral floats keep a trailing `.0` so the value
/// round-trips as a float.
pub fn push_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{:.1}", x);
    } else {
        let _ = write!(out, "{x}");
    }
}

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON integer (no fraction or exponent).
    Int(i64),
    /// A JSON number with a fraction or exponent.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// Renders the value back to JSON source.
    pub fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(x) => push_f64(out, *x),
            JsonValue::Str(s) => push_str_escaped(out, s),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Null => out.push_str("null"),
        }
    }
}

/// Renders a flat object (no nesting) in the given field order.
pub fn render_flat_object(fields: &[(String, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(&mut out, k);
        out.push(':');
        v.render_into(&mut out);
    }
    out.push('}');
    out
}

/// Parses a single flat JSON object — scalar values only, no nesting.
/// Returns `None` on any syntax error or on nested arrays/objects. Field
/// order is preserved, so `render_flat_object(&parse_flat_object(s)?) == s`
/// for lines this crate emits.
pub fn parse_flat_object(s: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut p = Parser {
        bytes: s.trim().as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(fields)
    } else {
        None
    }
}

/// A full JSON value — nesting allowed.
///
/// Objects keep their fields as ordered `(key, value)` pairs: field order
/// is part of what the emitters guarantee, and an ordered Vec keeps this
/// type free of hash-map iteration-order concerns (lint `L7`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A scalar leaf (number, string, bool, null).
    Scalar(JsonValue),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, if this is an integer scalar.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Scalar(JsonValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value (integer or float), if this is a number scalar.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Scalar(JsonValue::Int(i)) => Some(*i as f64),
            Json::Scalar(JsonValue::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Scalar(JsonValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool scalar.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Scalar(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (nested objects and arrays allowed).
/// Returns `None` on any syntax error or trailing garbage.
pub fn parse_value(s: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: s.trim().as_bytes(),
        pos: 0,
    };
    let v = p.json_value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bump()? == b {
            Some(())
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Vec<(String, JsonValue)>> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(fields),
                _ => return None,
            }
        }
    }

    fn json_value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let value = self.json_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Some(Json::Obj(fields)),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.json_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Some(Json::Arr(items)),
                        _ => return None,
                    }
                }
            }
            _ => self.value().map(Json::Scalar),
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b'"' => Some(JsonValue::Str(self.string()?)),
            b't' => self.literal(b"true", JsonValue::Bool(true)),
            b'f' => self.literal(b"false", JsonValue::Bool(false)),
            b'n' => self.literal(b"null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None, // nested arrays/objects are out of scope
        }
    }

    fn literal(&mut self, lit: &[u8], v: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if is_float {
            text.parse().ok().map(JsonValue::Float)
        } else {
            text.parse().ok().map(JsonValue::Int)
        }
    }

    fn string(&mut self) -> Option<String> {
        self.skip_ws();
        if self.bump()? != b'"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let end = self.pos.checked_add(4)?;
                        let hex = self.bytes.get(self.pos..end)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        self.pos = end;
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences starting here.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start.checked_add(width)?;
                        let chunk = self.bytes.get(start..end)?;
                        out.push_str(std::str::from_utf8(chunk).ok()?);
                        self.pos = end;
                    }
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn f64_formatting_is_json_safe() {
        let mut out = String::new();
        push_f64(&mut out, 2.0);
        out.push(' ');
        push_f64(&mut out, 0.25);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.0 0.25 null");
    }

    #[test]
    fn flat_object_round_trips() {
        let line = r#"{"slot":3,"type":"receive","receiver":2,"sender":1}"#;
        let fields = parse_flat_object(line).expect("parses");
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0], ("slot".into(), JsonValue::Int(3)));
        assert_eq!(render_flat_object(&fields), line);
    }

    #[test]
    fn parser_handles_strings_bools_floats_and_unicode() {
        let line = r#"{"name":"a\"béé","ok":true,"x":-1.5,"none":null}"#;
        let fields = parse_flat_object(line).expect("parses");
        assert_eq!(fields[0].1, JsonValue::Str("a\"béé".into()));
        assert_eq!(fields[1].1, JsonValue::Bool(true));
        assert_eq!(fields[2].1, JsonValue::Float(-1.5));
        assert_eq!(fields[3].1, JsonValue::Null);
    }

    #[test]
    fn parser_rejects_nesting_and_trailing_garbage() {
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_none());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_none());
        assert!(parse_flat_object(r#"{"a":1} extra"#).is_none());
        assert!(parse_flat_object(r#"{"a":1"#).is_none());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat_object("{}"), Some(vec![]));
    }

    #[test]
    fn nested_parser_walks_objects_and_arrays() {
        let doc = r#"{"version":2,"summary":{"reported":1},
                      "violations":[{"lint":"L8","line":7,"col":13}],
                      "ratchet":{"checked":true,"regressions":[]}}"#;
        let v = parse_value(doc).expect("parses");
        assert_eq!(v.get("version").and_then(Json::as_i64), Some(2));
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("reported"))
                .and_then(Json::as_i64),
            Some(1)
        );
        let viol = &v.get("violations").and_then(Json::as_array).expect("array")[0];
        assert_eq!(viol.get("lint").and_then(Json::as_str), Some("L8"));
        assert_eq!(viol.get("col").and_then(Json::as_i64), Some(13));
        let ratchet = v.get("ratchet").expect("ratchet");
        assert_eq!(ratchet.get("checked").and_then(Json::as_bool), Some(true));
        assert_eq!(
            ratchet
                .get("regressions")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn nested_parser_rejects_malformed_documents() {
        assert!(parse_value(r#"{"a":[1,2}"#).is_none());
        assert!(parse_value(r#"[1,2],"#).is_none());
        assert!(parse_value(r#"{"a":}"#).is_none());
        assert_eq!(parse_value("[]"), Some(Json::Arr(vec![])));
        assert_eq!(
            parse_value("[[]]"),
            Some(Json::Arr(vec![Json::Arr(vec![])]))
        );
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = parse_value(r#"{"a":1}"#).expect("parses");
        assert!(v.get("missing").is_none());
        assert!(v.as_array().is_none());
        assert!(v.get("a").expect("field").as_str().is_none());
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
    }
}
