//! Console sinks.
//!
//! This module is the **only** place in the workspace's library crates
//! allowed to print to the console (enforced by `cargo xtask lint` rule L5;
//! see `docs/LINTING.md`): every other crate records through a
//! [`Recorder`] and lets the binary decide where output goes.

use crate::event::ObsEvent;
use crate::metrics::Histogram;
use crate::recorder::{FullRecorder, Recorder};
use crate::series::SeriesConfig;
use crate::span::SpanRecord;

/// A recorder that streams every event to stderr as JSONL while also
/// accumulating it (and all metrics) in an inner [`FullRecorder`].
///
/// Intended for interactive debugging (`sim color --obs stderr,...`):
/// stderr keeps the live stream even if the process aborts, the inner
/// recorder still produces the end-of-run report.
#[derive(Debug, Clone, Default)]
pub struct StderrSink {
    inner: FullRecorder,
}

impl StderrSink {
    /// A sink with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink whose inner event ring holds at most `capacity` events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        StderrSink {
            inner: FullRecorder::with_ring_capacity(capacity),
        }
    }

    /// The accumulated recorder (metrics + retained events).
    pub fn recorder(&self) -> &FullRecorder {
        &self.inner
    }

    /// Enables periodic time-series sampling on the inner recorder (see
    /// [`FullRecorder::enable_series`]).
    pub fn enable_series(&mut self, cfg: SeriesConfig) {
        self.inner.enable_series(cfg);
    }

    /// Consumes the sink, returning the accumulated recorder.
    pub fn into_recorder(self) -> FullRecorder {
        self.inner
    }
}

impl Recorder for StderrSink {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, slot: u64, event: &ObsEvent) {
        eprintln!("{}", event.jsonl(slot));
        self.inner.event(slot, event);
    }

    fn counter_add(&mut self, key: &'static str, delta: u64) {
        self.inner.counter_add(key, delta);
    }

    fn gauge_set(&mut self, key: &'static str, value: f64) {
        self.inner.gauge_set(key, value);
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        self.inner.observe(key, value);
    }

    fn histogram_merge(&mut self, key: &'static str, hist: &Histogram) {
        self.inner.histogram_merge(key, hist);
    }

    fn span(&mut self, span: &SpanRecord) {
        self.inner.span(span);
    }

    fn series_tick(&mut self, slot: u64) {
        self.inner.series_tick(slot);
    }
}
