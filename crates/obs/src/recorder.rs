//! The `Recorder` trait and its in-memory implementations.

use crate::event::ObsEvent;
use crate::keys;
use crate::metrics::{Histogram, Registry};
use crate::ring::Ring;
use crate::series::{SeriesConfig, TimeSeries};
use crate::span::{chrome_trace_json, SpanRecord, WallSpan};
use crate::OBS_SCHEMA_VERSION;
use std::io::{self, Write};

/// Default event-ring capacity of [`FullRecorder::new`] (events, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The single sink everything records through.
///
/// Instrumented code takes `&mut dyn Recorder` and must guard *per-slot*
/// work behind one [`Recorder::enabled`] check so the disabled path costs a
/// single virtual call per slot (see the overhead measurement in
/// `BENCH_resolver.json`). End-of-run exports (counter totals, histogram
/// merges) may skip the check — they run once.
///
/// Every method has a no-op default, so [`NoopRecorder`] is just
/// `impl Recorder for NoopRecorder {}` and custom sinks override only what
/// they store.
pub trait Recorder {
    /// Whether per-slot instrumentation should bother constructing events.
    fn enabled(&self) -> bool {
        false
    }

    /// Records a structured event at `slot`.
    fn event(&mut self, _slot: u64, _event: &ObsEvent) {}

    /// Adds `delta` to the counter `key`.
    fn counter_add(&mut self, _key: &'static str, _delta: u64) {}

    /// Sets the gauge `key`.
    fn gauge_set(&mut self, _key: &'static str, _value: f64) {}

    /// Records one sample into the histogram `key` (default power-of-two
    /// buckets unless the sink chooses otherwise).
    fn observe(&mut self, _key: &'static str, _value: u64) {}

    /// Merges a pre-aggregated histogram into the histogram `key`.
    fn histogram_merge(&mut self, _key: &'static str, _hist: &Histogram) {}

    /// Records a completed slot-time span (see `crate::span`).
    fn span(&mut self, _span: &SpanRecord) {}

    /// Offers slot `slot` for time-series sampling; the engine calls this
    /// once per slot after all of the slot's metrics have been recorded.
    fn series_tick(&mut self, _slot: u64) {}
}

/// The zero-cost disabled recorder: every hook is a no-op and
/// [`Recorder::enabled`] is `false`, so instrumented hot loops skip event
/// construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// An in-memory recorder: metrics in a [`Registry`], events and spans in
/// bounded [`Ring`]s (oldest evicted first), an optional [`TimeSeries`],
/// with JSON/JSONL export.
#[derive(Debug, Clone)]
pub struct FullRecorder {
    registry: Registry,
    ring: Ring<(u64, ObsEvent)>,
    spans: Ring<SpanRecord>,
    series: Option<TimeSeries>,
}

impl FullRecorder {
    /// A recorder with the default event-ring capacity
    /// ([`DEFAULT_RING_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose event ring and span ring each hold at most
    /// `capacity` entries (metrics are unaffected by the bound).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        FullRecorder {
            registry: Registry::new(),
            ring: Ring::with_capacity(capacity),
            spans: Ring::with_capacity(capacity),
            series: None,
        }
    }

    /// Enables time-series sampling with the given configuration
    /// (subsequent [`Recorder::series_tick`] calls take snapshots).
    pub fn enable_series(&mut self, cfg: SeriesConfig) {
        self.series = Some(TimeSeries::new(cfg));
    }

    /// The accumulated time series, if sampling was enabled.
    pub fn series(&self) -> Option<&TimeSeries> {
        self.series.as_ref()
    }

    /// The metrics collected so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the metrics (for sinks layered on top).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The retained events, oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &(u64, ObsEvent)> {
        self.ring.iter()
    }

    /// Number of events currently retained.
    pub fn events_len(&self) -> usize {
        self.ring.len()
    }

    /// Events evicted from the ring (recorded but no longer retained).
    pub fn events_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Total events ever recorded (retained + evicted).
    pub fn events_recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// The event-ring capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// The retained spans, oldest → newest.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of spans currently retained.
    pub fn spans_len(&self) -> usize {
        self.spans.len()
    }

    /// Spans evicted from the span ring.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Total spans ever recorded (retained + evicted).
    pub fn spans_recorded(&self) -> u64 {
        self.spans.pushed()
    }

    /// The collected metrics plus the recorder's own `obs.*` retention
    /// bookkeeping (event/span ring accounting), as one registry. This is
    /// what the exported documents embed, so truncation is visible inside
    /// the artifact itself.
    pub fn export_registry(&self) -> Registry {
        let mut reg = self.registry.clone();
        reg.counter_add(keys::OBS_EVENTS_RECORDED, self.ring.pushed());
        reg.counter_add(keys::OBS_EVENTS_DROPPED, self.ring.dropped());
        reg.counter_add(keys::OBS_SPANS_RECORDED, self.spans.pushed());
        reg.counter_add(keys::OBS_SPANS_DROPPED, self.spans.dropped());
        reg
    }

    /// The metrics dump as a standalone JSON document (schema:
    /// `docs/OBS_SCHEMA.md`, kind `metrics`), including the `obs.*`
    /// retention counters from [`FullRecorder::export_registry`].
    pub fn metrics_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"kind\":\"metrics\",\"metrics\":{}}}",
            OBS_SCHEMA_VERSION,
            self.export_registry().to_json()
        )
    }

    /// The retained spans as one Chrome trace-event JSON document
    /// (schema kind `trace_events`; loadable in Perfetto).
    pub fn trace_json(&self) -> String {
        self.trace_json_with_wall(&[])
    }

    /// [`FullRecorder::trace_json`] with a wall-clock overlay attached as
    /// trace process 1 — for bench binaries only; the deterministic path
    /// never constructs [`WallSpan`]s.
    pub fn trace_json_with_wall(&self, wall: &[WallSpan]) -> String {
        let spans: Vec<SpanRecord> = self.spans.iter().copied().collect();
        chrome_trace_json(&spans, self.spans.pushed(), self.spans.dropped(), wall)
    }

    /// The time series as a standalone JSON document (schema kind
    /// `timeseries`), if sampling was enabled.
    pub fn timeseries_json(&self) -> Option<String> {
        self.series.as_ref().map(TimeSeries::to_json)
    }

    /// Writes the retained events as JSONL, one event per line,
    /// oldest → newest.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut line = String::new();
        for (slot, event) in self.ring.iter() {
            line.clear();
            event.jsonl_into(*slot, &mut line);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// The retained events as one JSONL string.
    pub fn jsonl_string(&self) -> String {
        let mut out = String::new();
        for (slot, event) in self.ring.iter() {
            event.jsonl_into(*slot, &mut out);
            out.push('\n');
        }
        out
    }
}

impl Default for FullRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for FullRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&mut self, slot: u64, event: &ObsEvent) {
        self.ring.push((slot, *event));
    }

    fn counter_add(&mut self, key: &'static str, delta: u64) {
        self.registry.counter_add(key, delta);
    }

    fn gauge_set(&mut self, key: &'static str, value: f64) {
        self.registry.gauge_set(key, value);
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        self.registry
            .observe_with(key, value, || Histogram::exponential(16));
    }

    fn histogram_merge(&mut self, key: &'static str, hist: &Histogram) {
        self.registry.histogram_merge(key, hist);
    }

    fn span(&mut self, span: &SpanRecord) {
        self.spans.push(*span);
    }

    fn series_tick(&mut self, slot: u64) {
        if let Some(series) = self.series.as_mut() {
            series.tick(slot, &self.registry, self.ring.dropped());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_flat_object, parse_value};
    use crate::span::SpanTrack;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.event(0, &ObsEvent::Wake { node: 0 });
        r.counter_add("k", 1);
        r.gauge_set("g", 1.0);
        r.observe("h", 1);
        r.histogram_merge("m", &Histogram::default());
        r.span(&SpanRecord::instant(SpanTrack::Engine, "noop", 0));
        r.series_tick(0);
    }

    #[test]
    fn full_recorder_stores_events_and_metrics() {
        let mut r = FullRecorder::with_ring_capacity(2);
        assert!(r.enabled());
        r.event(0, &ObsEvent::Wake { node: 0 });
        r.event(1, &ObsEvent::Transmit { node: 0 });
        r.event(2, &ObsEvent::Done { node: 0 });
        assert_eq!(r.events_len(), 2, "ring bound holds");
        assert_eq!(r.events_dropped(), 1);
        assert_eq!(r.events_recorded(), 3);
        let newest: Vec<u64> = r.events().map(|(s, _)| *s).collect();
        assert_eq!(newest, vec![1, 2], "oldest event evicted first");

        r.counter_add("sim.slots", 3);
        r.observe("lat", 4);
        assert_eq!(r.registry().counter("sim.slots"), Some(3));
        assert_eq!(r.registry().histogram("lat").map(|h| h.count()), Some(1));
    }

    #[test]
    fn jsonl_export_is_one_parseable_line_per_event() {
        let mut r = FullRecorder::new();
        r.event(0, &ObsEvent::Wake { node: 3 });
        r.event(
            4,
            &ObsEvent::Phase {
                node: 3,
                from: "listen",
                to: "compete",
                level: 0,
            },
        );
        let mut buf = Vec::new();
        r.write_jsonl(&mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text, r.jsonl_string());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(parse_flat_object(line).is_some(), "line parses: {line}");
        }
    }

    #[test]
    fn metrics_json_has_schema_envelope() {
        let mut r = FullRecorder::new();
        r.counter_add("sim.slots", 7);
        let json = r.metrics_json();
        assert!(json.starts_with("{\"schema_version\":2,\"kind\":\"metrics\","));
        assert!(json.contains("\"sim.slots\":{\"type\":\"counter\",\"value\":7}"));
    }

    #[test]
    fn export_registry_carries_retention_bookkeeping() {
        let mut r = FullRecorder::with_ring_capacity(1);
        r.event(0, &ObsEvent::Wake { node: 0 });
        r.event(1, &ObsEvent::Done { node: 0 });
        r.span(&SpanRecord::instant(SpanTrack::Engine, "a", 0));
        let reg = r.export_registry();
        assert_eq!(reg.counter(crate::keys::OBS_EVENTS_RECORDED), Some(2));
        assert_eq!(reg.counter(crate::keys::OBS_EVENTS_DROPPED), Some(1));
        assert_eq!(reg.counter(crate::keys::OBS_SPANS_RECORDED), Some(1));
        assert_eq!(reg.counter(crate::keys::OBS_SPANS_DROPPED), Some(0));
        assert!(r.registry().get(crate::keys::OBS_EVENTS_DROPPED).is_none());
    }

    #[test]
    fn span_ring_bounds_and_trace_export() {
        let mut r = FullRecorder::with_ring_capacity(2);
        for i in 0..3u64 {
            r.span(&SpanRecord::complete(
                SpanTrack::Engine,
                "actions",
                i * 4,
                1,
            ));
        }
        assert_eq!(r.spans_len(), 2);
        assert_eq!(r.spans_dropped(), 1);
        assert_eq!(r.spans_recorded(), 3);
        let trace = r.trace_json();
        assert!(trace.contains("\"kind\":\"trace_events\""));
        assert!(trace.contains("\"spans\":{\"recorded\":3,\"dropped\":1}"));
        assert!(parse_value(&trace).is_some(), "trace parses as JSON");
    }

    #[test]
    fn series_tick_samples_through_the_recorder() {
        let mut r = FullRecorder::new();
        r.series_tick(0); // disabled: no-op
        assert!(r.series().is_none());
        r.enable_series(SeriesConfig::new(1).with_keys(vec!["sim.slots"]));
        for slot in 0..3u64 {
            r.counter_add("sim.slots", 1);
            r.series_tick(slot);
        }
        let series = r.series().expect("enabled");
        assert_eq!(series.slots(), &[0, 1, 2]);
        assert_eq!(series.column("sim.slots"), Some(&[1.0, 2.0, 3.0][..]));
        let doc = r.timeseries_json().expect("document");
        assert!(doc.starts_with("{\"schema_version\":2,\"kind\":\"timeseries\","));
    }
}
