//! Typed metrics: counters, gauges, and fixed-bucket integer histograms.
//!
//! All metrics are *slot-time* quantities — there is deliberately no
//! `Instant` or wall-clock anywhere in this module, so a metrics dump from a
//! recorded run is a pure function of (graph, model, schedule, seed). Keys
//! are `&'static str` in the dotted scheme documented in
//! `docs/OBSERVABILITY.md` (e.g. `sim.slots`, `resolver.fast_path_hits`,
//! `probe.thm1.violations`); the registry iterates and serializes them in
//! lexicographic order so dumps are diffable.

use crate::json::{push_f64, push_str_escaped};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `bounds[i-1] < v ≤ bounds[i]`
/// (inclusive upper bounds); one extra overflow bucket at the end absorbs
/// everything above the last bound, so observations can never be lost and
/// `counts().len() == bounds().len() + 1`. Counts are integers, which keeps
/// the type `Eq` — it can sit inside run statistics that are compared
/// exactly in determinism tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with unit-width buckets: bucket `k` counts samples equal
    /// to `k` for `k < buckets − 1`, and the final bucket aggregates every
    /// sample `≥ buckets − 1`. (`linear(33)` reproduces the engine's
    /// historical channel-load histogram shape.)
    pub fn linear(buckets: usize) -> Self {
        Self::with_bounds((0..buckets.saturating_sub(1) as u64).collect())
    }

    /// A histogram with power-of-two bounds `1, 2, 4, …, 2^(levels−1)` plus
    /// the overflow bucket — the default shape for ad-hoc observations.
    pub fn exponential(levels: u32) -> Self {
        Self::with_bounds((0..levels).map(|i| 1u64 << i).collect())
    }

    /// A histogram with explicit inclusive upper bounds. Bounds are sorted
    /// and deduplicated, so any input yields a well-formed histogram.
    pub fn with_bounds(mut bounds: Vec<u64>) -> Self {
        bounds.sort_unstable();
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|b| *b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds another histogram's samples into this one. Returns `false`
    /// (and leaves `self` unchanged) if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        true
    }

    /// The inclusive upper bounds (the overflow bucket has no bound).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `pct`-th percentile (`0 < pct ≤ 100`) at bucket resolution:
    /// the inclusive upper bound of the first bucket whose cumulative
    /// count reaches `⌈count · pct / 100⌉` samples. Samples landing in
    /// the overflow bucket report the last finite bound — a *lower*
    /// bound on the true quantile. Returns `None` for an empty
    /// histogram. Integer arithmetic throughout, so the value is exact
    /// and deterministic.
    pub fn percentile(&self, pct: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (u128::from(self.count) * u128::from(pct)).div_ceil(100);
        let mut cumulative: u128 = 0;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += u128::from(*c);
            if cumulative >= target {
                return match self.bounds.get(i) {
                    Some(b) => Some(*b),
                    // Overflow bucket: report the last finite bound.
                    None => self.bounds.last().copied().or(Some(0)),
                };
            }
        }
        self.bounds.last().copied().or(Some(0))
    }

    fn json_into(&self, out: &mut String) {
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"count\":{},\"sum\":{}", self.count, self.sum);
        if self.count > 0 {
            for (label, pct) in [("p50", 50), ("p95", 95), ("p99", 99)] {
                if let Some(v) = self.percentile(pct) {
                    let _ = write!(out, ",\"{label}\":{v}");
                }
            }
        }
        out.push('}');
    }
}

impl Default for Histogram {
    /// A single-bucket (overflow-only) histogram; it still counts and sums
    /// every observation.
    fn default() -> Self {
        Self::with_bounds(Vec::new())
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone non-negative total.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Distribution of integer samples.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A typed metric store keyed by `&'static str`, with deterministic
/// (lexicographic) iteration and a stable JSON dump.
///
/// A key's type is fixed by its first write; a later write of a different
/// kind is *dropped and counted* in [`Registry::kind_conflicts`] — never a
/// panic, so a misbehaving caller degrades observability instead of
/// crashing a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: BTreeMap<&'static str, MetricValue>,
    kind_conflicts: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `key` (creating it at 0).
    pub fn counter_add(&mut self, key: &'static str, delta: u64) {
        match self.entries.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c = c.saturating_add(delta),
            _ => self.kind_conflicts += 1,
        }
    }

    /// Sets the gauge `key` to `value`.
    pub fn gauge_set(&mut self, key: &'static str, value: f64) {
        match self.entries.entry(key).or_insert(MetricValue::Gauge(value)) {
            MetricValue::Gauge(g) => *g = value,
            _ => self.kind_conflicts += 1,
        }
    }

    /// Records `value` into the histogram `key`, creating it with
    /// `make_histogram()` on first touch.
    pub fn observe_with(
        &mut self,
        key: &'static str,
        value: u64,
        make_histogram: impl FnOnce() -> Histogram,
    ) {
        match self
            .entries
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(make_histogram()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => self.kind_conflicts += 1,
        }
    }

    /// Merges `hist` into the histogram `key` (cloning it on first touch).
    /// Bound mismatches count as kind conflicts.
    pub fn histogram_merge(&mut self, key: &'static str, hist: &Histogram) {
        match self.entries.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(MetricValue::Histogram(hist.clone()));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                MetricValue::Histogram(h) => {
                    if !h.merge(hist) {
                        self.kind_conflicts += 1;
                    }
                }
                _ => self.kind_conflicts += 1,
            },
        }
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.get(key)
    }

    /// The counter `key`, if it exists and is a counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.entries.get(key) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The gauge `key`, if it exists and is a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.entries.get(key) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The histogram `key`, if it exists and is a histogram.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.entries.get(key) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(key, value)` in lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Number of metrics stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes that were dropped because they targeted an existing key of a
    /// different metric kind (or a histogram with different bounds).
    pub fn kind_conflicts(&self) -> u64 {
        self.kind_conflicts
    }

    /// The metrics as one JSON object: `{"<key>":{"type":…,…},…}` in
    /// lexicographic key order (see `docs/OBS_SCHEMA.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_escaped(&mut out, key);
            let _ = write!(out, ":{{\"type\":\"{}\",", value.kind());
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "\"value\":{c}");
                }
                MetricValue::Gauge(g) => {
                    out.push_str("\"value\":");
                    push_f64(&mut out, *g);
                }
                MetricValue::Histogram(h) => {
                    out.push_str("\"value\":");
                    h.json_into(&mut out);
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_buckets_exact_values_and_saturates() {
        // Mirrors the engine's channel-load histogram: 33 buckets, last one
        // aggregates everything ≥ 32.
        let mut h = Histogram::linear(33);
        assert_eq!(h.counts().len(), 33);
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(31);
        h.observe(32);
        h.observe(1000);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
        assert_eq!(h.counts()[31], 1);
        assert_eq!(h.counts()[32], 2, "32 and 1000 both overflow");
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1069);
    }

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_bounds(vec![10, 100]);
        h.observe(0); // ≤ 10
        h.observe(10); // ≤ 10 (inclusive edge)
        h.observe(11); // ≤ 100
        h.observe(100); // ≤ 100 (inclusive edge)
        h.observe(101); // overflow
        assert_eq!(h.counts(), &[2, 2, 1]);
    }

    #[test]
    fn exponential_bounds_are_powers_of_two() {
        let h = Histogram::exponential(4);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    fn degenerate_histograms_never_lose_samples() {
        let mut h = Histogram::default();
        h.observe(7);
        h.observe(0);
        assert_eq!(h.counts(), &[2]);
        assert_eq!(h.sum(), 7);
        let mut l = Histogram::linear(0);
        l.observe(5);
        assert_eq!(l.count(), 1);
    }

    #[test]
    fn with_bounds_sorts_and_dedups() {
        let h = Histogram::with_bounds(vec![5, 1, 5, 3]);
        assert_eq!(h.bounds(), &[1, 3, 5]);
    }

    #[test]
    fn merge_requires_identical_bounds() {
        let mut a = Histogram::linear(4);
        let mut b = Histogram::linear(4);
        a.observe(1);
        b.observe(1);
        b.observe(9);
        assert!(a.merge(&b));
        assert_eq!(a.counts()[1], 2);
        assert_eq!(a.count(), 3);
        let other = Histogram::linear(5);
        assert!(!a.merge(&other));
    }

    #[test]
    fn mean_handles_empty() {
        let mut h = Histogram::linear(4);
        assert_eq!(h.mean(), 0.0);
        h.observe(2);
        h.observe(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::with_bounds(vec![1, 2, 4, 8]);
        assert_eq!(h.percentile(50), None, "empty histogram has no quantiles");
        for v in [1, 1, 2, 2, 3, 3, 8, 9, 20, 100] {
            h.observe(v);
        }
        // 10 samples; p50 target = 5th sample → bucket ≤ 4 (cum 2,4,6).
        assert_eq!(h.percentile(50), Some(4));
        // p95 target = ⌈9.5⌉ = 10th sample → overflow bucket → last bound.
        assert_eq!(h.percentile(95), Some(8));
        assert_eq!(h.percentile(99), Some(8));
        assert_eq!(h.percentile(100), Some(8));
        // Degenerate overflow-only histogram still answers.
        let mut d = Histogram::default();
        d.observe(3);
        assert_eq!(d.percentile(50), Some(0));
    }

    #[test]
    fn registry_counter_gauge_histogram_basics() {
        let mut r = Registry::new();
        r.counter_add("a.count", 2);
        r.counter_add("a.count", 3);
        r.gauge_set("a.rate", 0.5);
        r.observe_with("a.dist", 3, || Histogram::linear(4));
        r.observe_with("a.dist", 100, || Histogram::linear(4));
        assert_eq!(r.counter("a.count"), Some(5));
        assert_eq!(r.gauge("a.rate"), Some(0.5));
        let h = r.histogram("a.dist").expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn kind_conflicts_drop_instead_of_panicking() {
        let mut r = Registry::new();
        r.counter_add("x", 1);
        r.gauge_set("x", 2.0);
        r.observe_with("x", 3, Histogram::default);
        assert_eq!(r.counter("x"), Some(1), "original survives");
        assert_eq!(r.kind_conflicts(), 2);
        // Histogram bound mismatch also counts.
        r.histogram_merge("h", &Histogram::linear(4));
        r.histogram_merge("h", &Histogram::linear(9));
        assert_eq!(r.kind_conflicts(), 3);
    }

    #[test]
    fn json_dump_is_lexicographic_and_typed() {
        let mut r = Registry::new();
        r.gauge_set("b.gauge", 1.5);
        r.counter_add("a.count", 7);
        r.histogram_merge("c.hist", &{
            let mut h = Histogram::with_bounds(vec![1]);
            h.observe(0);
            h.observe(9);
            h
        });
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"a.count\":{\"type\":\"counter\",\"value\":7},\
             \"b.gauge\":{\"type\":\"gauge\",\"value\":1.5},\
             \"c.hist\":{\"type\":\"histogram\",\"value\":\
             {\"bounds\":[1],\"counts\":[1,1],\"count\":2,\"sum\":9,\
             \"p50\":1,\"p95\":1,\"p99\":1}}}"
        );
        let parsed_ok = json.starts_with('{') && json.ends_with('}');
        assert!(parsed_ok);
    }
}
